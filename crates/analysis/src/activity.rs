//! Per-cache-block activity decomposition (the §7 cache-activity graphs).

use cachegc_sim::CacheStats;

/// One cache block's row in the activity graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityEntry {
    /// The cache block index.
    pub cache_block: u32,
    /// References this cache block saw.
    pub refs: u64,
    /// All misses in this cache block.
    pub misses: u64,
    /// Misses excluding allocation misses (what the paper's cumulative
    /// miss curve accumulates).
    pub non_alloc_misses: u64,
    /// Local miss ratio (all misses / refs).
    pub local_miss_ratio: f64,
    /// Cumulative fraction of non-allocation misses in blocks up to and
    /// including this one (ascending reference order).
    pub cum_miss_fraction: f64,
    /// Cumulative fraction of references up to and including this block.
    pub cum_ref_fraction: f64,
    /// Miss ratio of the cache if only blocks up to this one existed —
    /// the solid cumulative miss-ratio curve.
    pub cum_miss_ratio: f64,
}

/// The full activity graph: one entry per cache block, in ascending
/// reference-count order (least-referenced block first, as in the paper's
/// figures).
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    /// Entries in ascending reference order.
    pub entries: Vec<ActivityEntry>,
    /// The cache's global miss ratio over non-allocation misses (the
    /// endpoint of the cumulative curve).
    pub global_miss_ratio: f64,
}

impl Activity {
    /// Number of thrash-grade cache blocks: heavily referenced blocks
    /// (top decile) whose local miss ratio exceeds `threshold`.
    pub fn worst_case_blocks(&self, threshold: f64) -> usize {
        let cut = self.entries.len().saturating_sub(self.entries.len() / 10);
        self.entries[cut..]
            .iter()
            .filter(|e| e.local_miss_ratio > threshold)
            .count()
    }

    /// Number of best-case cache blocks: heavily referenced blocks (top
    /// decile) whose local miss ratio is below `threshold`.
    pub fn best_case_blocks(&self, threshold: f64) -> usize {
        let cut = self.entries.len().saturating_sub(self.entries.len() / 10);
        self.entries[cut..]
            .iter()
            .filter(|e| e.local_miss_ratio < threshold)
            .count()
    }

    /// The largest single-step jump in the cumulative miss-ratio curve;
    /// a large jump is the paper's signature of a thrashing cache block
    /// (the imps figure).
    pub fn max_cum_jump(&self) -> f64 {
        self.entries
            .windows(2)
            .map(|w| w[1].cum_miss_ratio - w[0].cum_miss_ratio)
            .fold(0.0, f64::max)
    }
}

/// Decompose a finished cache simulation into the paper's cache-activity
/// form: sort cache blocks by reference count and accumulate misses,
/// references, and the running miss ratio.
pub fn activity(stats: &CacheStats) -> Activity {
    let mut order: Vec<u32> = (0..stats.blocks().len() as u32).collect();
    order.sort_by_key(|&b| stats.blocks()[b as usize].refs);

    let total_refs: u64 = stats.blocks().iter().map(|b| b.refs).sum();
    let total_nam: u64 = stats.blocks().iter().map(|b| b.non_alloc_misses()).sum();

    let mut entries = Vec::with_capacity(order.len());
    let mut cum_refs = 0u64;
    let mut cum_misses = 0u64;
    for &cb in &order {
        let b = stats.blocks()[cb as usize];
        cum_refs += b.refs;
        cum_misses += b.non_alloc_misses();
        entries.push(ActivityEntry {
            cache_block: cb,
            refs: b.refs,
            misses: b.misses,
            non_alloc_misses: b.non_alloc_misses(),
            local_miss_ratio: b.local_miss_ratio(),
            cum_miss_fraction: if total_nam == 0 {
                0.0
            } else {
                cum_misses as f64 / total_nam as f64
            },
            cum_ref_fraction: if total_refs == 0 {
                0.0
            } else {
                cum_refs as f64 / total_refs as f64
            },
            cum_miss_ratio: if cum_refs == 0 {
                0.0
            } else {
                cum_misses as f64 / cum_refs as f64
            },
        });
    }
    Activity {
        entries,
        global_miss_ratio: if total_refs == 0 {
            0.0
        } else {
            total_nam as f64 / total_refs as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_sim::{Cache, CacheConfig};
    use cachegc_trace::{Access, Context, TraceSink, DYNAMIC_BASE, STATIC_BASE};

    const M: Context = Context::Mutator;

    fn small_cache() -> Cache {
        Cache::new(CacheConfig::direct_mapped(1024, 64)) // 16 blocks
    }

    #[test]
    fn entries_are_in_ascending_ref_order() {
        let mut c = small_cache();
        // Block 0 gets many refs, block 1 a few.
        for _ in 0..100 {
            c.access(Access::read(DYNAMIC_BASE, M));
        }
        for _ in 0..3 {
            c.access(Access::read(DYNAMIC_BASE + 64, M));
        }
        let a = activity(c.stats());
        assert_eq!(a.entries.len(), 16);
        for w in a.entries.windows(2) {
            assert!(w[0].refs <= w[1].refs);
        }
        assert_eq!(a.entries.last().unwrap().refs, 100);
    }

    #[test]
    fn cumulative_curves_end_at_totals() {
        let mut c = small_cache();
        for i in 0..64u32 {
            c.access(Access::read(DYNAMIC_BASE + i * 4, M));
        }
        let a = activity(c.stats());
        let last = a.entries.last().unwrap();
        assert!((last.cum_ref_fraction - 1.0).abs() < 1e-12);
        assert!((last.cum_miss_ratio - a.global_miss_ratio).abs() < 1e-12);
    }

    #[test]
    fn thrashing_appears_as_a_jump() {
        let mut quiet = small_cache();
        let mut thrash = small_cache();
        // Warm background traffic in both: one miss then many hits per block.
        for rep in 0..10u32 {
            for i in 0..16u32 {
                quiet.access(Access::read(DYNAMIC_BASE + i * 64, M));
                thrash.access(Access::read(DYNAMIC_BASE + i * 64, M));
            }
            let _ = rep;
        }
        // Alternating conflict in one cache block of `thrash`.
        for _ in 0..200 {
            thrash.access(Access::read(STATIC_BASE, M));
            thrash.access(Access::read(STATIC_BASE + 1024, M));
        }
        let qa = activity(quiet.stats());
        let ta = activity(thrash.stats());
        assert!(
            ta.max_cum_jump() > qa.max_cum_jump() + 0.1,
            "thrash jump visible"
        );
        assert!(ta.worst_case_blocks(0.5) >= 1);
    }

    #[test]
    fn alloc_misses_excluded_from_cumulative_misses() {
        let mut c = small_cache();
        for i in 0..16u32 {
            c.access(Access::alloc_write(DYNAMIC_BASE + i * 64, M));
        }
        let a = activity(c.stats());
        assert_eq!(
            a.global_miss_ratio, 0.0,
            "pure allocation: no non-alloc misses"
        );
        assert!(a.entries.iter().all(|e| e.misses == 1));
    }
}
