//! Memory-block behavior tracking (§7).

use std::collections::HashMap;

use cachegc_trace::{Access, Region, TraceSink};

/// Per-memory-block record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockInfo {
    first: u64,
    last: u64,
    refs: u64,
    last_cycle: u64,
    cycles_active: u32,
    region: Region,
}

/// An online tracker of memory-block behavior.
///
/// Blocks are `block_bytes`-aligned memory regions. Allocation cycles are
/// defined against a reference direct-mapped cache geometry (`cache_bytes`
/// capacity, same block size): each initializing store that reaches a new
/// dynamic memory block is an *allocation miss* and begins a new cycle in
/// the cache block it maps to. A dynamic block whose whole lifetime falls
/// inside its initial cycle is a *one-cycle block* — it is allocated,
/// lives, and dies entirely in the cache (§7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockTracker {
    shift: u32,
    cache_blocks: u64,
    cycles: Vec<u64>,
    blocks: HashMap<u32, BlockInfo>,
    time: u64,
}

impl BlockTracker {
    /// Track blocks of `block_bytes` against a `cache_bytes` reference
    /// cache (the paper's running example is 64 KB with 64-byte blocks).
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two with
    /// `block_bytes <= cache_bytes`.
    pub fn new(cache_bytes: u32, block_bytes: u32) -> Self {
        assert!(block_bytes.is_power_of_two() && cache_bytes.is_power_of_two());
        assert!(block_bytes <= cache_bytes);
        let cache_blocks = (cache_bytes / block_bytes) as u64;
        BlockTracker {
            shift: block_bytes.trailing_zeros(),
            cache_blocks,
            cycles: vec![0; cache_blocks as usize],
            blocks: HashMap::new(),
            time: 0,
        }
    }

    /// References seen so far (the analysis' fundamental time unit).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Finish tracking and compute the report.
    pub fn finish(self) -> BlockReport {
        BlockReport::compute(self)
    }
}

impl TraceSink for BlockTracker {
    fn access(&mut self, a: Access) {
        self.time += 1;
        let mb = a.addr >> self.shift;
        let cb = (mb as u64 % self.cache_blocks) as usize;
        match self.blocks.get_mut(&mb) {
            None => {
                // First touch. An initializing store to a new dynamic
                // block is an allocation miss: the sweep enters this cache
                // block and a new cycle begins there.
                if a.alloc_init {
                    self.cycles[cb] += 1;
                }
                let cycle = self.cycles[cb];
                self.blocks.insert(
                    mb,
                    BlockInfo {
                        first: self.time,
                        last: self.time,
                        refs: 1,
                        last_cycle: cycle,
                        cycles_active: 1,
                        region: Region::of(a.addr),
                    },
                );
            }
            Some(info) => {
                info.last = self.time;
                info.refs += 1;
                let cycle = self.cycles[cb];
                if cycle != info.last_cycle {
                    info.last_cycle = cycle;
                    info.cycles_active += 1;
                }
            }
        }
    }
}

/// A block that accounts for at least one thousandth of all references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyBlock {
    /// Block base address.
    pub addr: u32,
    /// References it received.
    pub refs: u64,
    /// Which population it belongs to.
    pub region: Region,
}

/// The finished §7 behavioral report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockReport {
    /// Total references.
    pub total_refs: u64,
    /// Number of dynamic memory blocks touched.
    pub dynamic_blocks: u64,
    /// Number of static memory blocks touched.
    pub static_blocks: u64,
    /// Number of stack memory blocks touched.
    pub stack_blocks: u64,
    /// Dynamic blocks whose lifetime fits in their initial allocation cycle.
    pub one_cycle_dynamic: u64,
    /// Lifetimes (in references) of every dynamic block, sorted ascending.
    pub dynamic_lifetimes: Vec<u64>,
    /// References per dynamic block, sorted ascending.
    pub dynamic_refs: Vec<u64>,
    /// Distinct-active-cycle counts of multi-cycle dynamic blocks.
    pub multi_cycle_activity: Vec<u32>,
    /// Busy blocks (≥ 1/1000 of references), most-referenced first.
    pub busy: Vec<BusyBlock>,
}

impl BlockReport {
    fn compute(tracker: BlockTracker) -> BlockReport {
        let total_refs = tracker.time;
        let threshold = total_refs.div_ceil(1000).max(1);
        let mut report = BlockReport {
            total_refs,
            dynamic_blocks: 0,
            static_blocks: 0,
            stack_blocks: 0,
            one_cycle_dynamic: 0,
            dynamic_lifetimes: Vec::new(),
            dynamic_refs: Vec::new(),
            multi_cycle_activity: Vec::new(),
            busy: Vec::new(),
        };
        for (mb, info) in &tracker.blocks {
            match info.region {
                Region::Dynamic => {
                    report.dynamic_blocks += 1;
                    report.dynamic_lifetimes.push(info.last - info.first);
                    report.dynamic_refs.push(info.refs);
                    if info.cycles_active == 1 {
                        report.one_cycle_dynamic += 1;
                    } else {
                        report.multi_cycle_activity.push(info.cycles_active);
                    }
                }
                Region::Static => report.static_blocks += 1,
                Region::Stack => report.stack_blocks += 1,
            }
            if info.refs >= threshold {
                report.busy.push(BusyBlock {
                    addr: mb << tracker.shift,
                    refs: info.refs,
                    region: info.region,
                });
            }
        }
        report.dynamic_lifetimes.sort_unstable();
        report.dynamic_refs.sort_unstable();
        report.busy.sort_by_key(|b| std::cmp::Reverse(b.refs));
        report
    }

    /// Fraction of dynamic blocks with lifetime ≤ `refs` (a point on the
    /// paper's cumulative lifetime distribution).
    pub fn lifetime_cdf(&self, refs: u64) -> f64 {
        if self.dynamic_lifetimes.is_empty() {
            return 0.0;
        }
        let n = self.dynamic_lifetimes.partition_point(|&l| l <= refs);
        n as f64 / self.dynamic_lifetimes.len() as f64
    }

    /// Fraction of dynamic blocks that are one-cycle blocks (the marker on
    /// each curve of the paper's lifetime figure).
    pub fn one_cycle_fraction(&self) -> f64 {
        if self.dynamic_blocks == 0 {
            return 0.0;
        }
        self.one_cycle_dynamic as f64 / self.dynamic_blocks as f64
    }

    /// Fraction of multi-cycle dynamic blocks active in at most `n`
    /// distinct allocation cycles (the paper reports ≥ 0.9 at n = 4).
    pub fn multi_cycle_active_le(&self, n: u32) -> f64 {
        if self.multi_cycle_activity.is_empty() {
            return 1.0;
        }
        let c = self
            .multi_cycle_activity
            .iter()
            .filter(|&&a| a <= n)
            .count();
        c as f64 / self.multi_cycle_activity.len() as f64
    }

    /// Median references per dynamic block (the paper: most dynamic blocks
    /// are referenced between 32 and 63 times with 64-byte blocks).
    pub fn median_dynamic_refs(&self) -> u64 {
        if self.dynamic_refs.is_empty() {
            0
        } else {
            self.dynamic_refs[self.dynamic_refs.len() / 2]
        }
    }

    /// Busy blocks from the static and stack populations.
    pub fn busy_static(&self) -> impl Iterator<Item = &BusyBlock> {
        self.busy.iter().filter(|b| b.region != Region::Dynamic)
    }

    /// Fraction of all references that go to busy blocks (the paper: ~75 %
    /// on average).
    pub fn busy_refs_fraction(&self) -> f64 {
        if self.total_refs == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy.iter().map(|b| b.refs).sum();
        busy as f64 / self.total_refs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::{Context, DYNAMIC_BASE, STACK_BASE, STATIC_BASE};

    const M: Context = Context::Mutator;

    #[test]
    fn one_cycle_blocks_are_recognized() {
        // 64-byte blocks, 1 KB cache => 16 cache blocks. Allocate two full
        // sweeps; blocks touched only in their birth cycle are one-cycle.
        let mut t = BlockTracker::new(1024, 64);
        for i in 0..32u32 {
            let base = DYNAMIC_BASE + i * 64;
            t.access(Access::alloc_write(base, M));
            t.access(Access::read(base + 4, M));
        }
        let r = t.finish();
        assert_eq!(r.dynamic_blocks, 32);
        assert_eq!(r.one_cycle_dynamic, 32);
        assert_eq!(r.one_cycle_fraction(), 1.0);
    }

    #[test]
    fn survivors_into_the_next_cycle_are_multi_cycle() {
        let mut t = BlockTracker::new(1024, 64);
        let survivor = DYNAMIC_BASE;
        t.access(Access::alloc_write(survivor, M));
        // Sweep a full cache worth of later allocations (16 blocks), so the
        // allocation pointer revisits survivor's cache block.
        for i in 1..=16u32 {
            t.access(Access::alloc_write(DYNAMIC_BASE + i * 64, M));
        }
        // Touch the survivor again: it is now active in a second cycle.
        t.access(Access::read(survivor + 4, M));
        let r = t.finish();
        assert_eq!(r.dynamic_blocks, 17);
        assert_eq!(r.one_cycle_dynamic, 16);
        assert_eq!(r.multi_cycle_activity, vec![2]);
        assert_eq!(r.multi_cycle_active_le(4), 1.0);
    }

    #[test]
    fn populations_are_classified() {
        let mut t = BlockTracker::new(1024, 64);
        t.access(Access::read(STATIC_BASE, M));
        t.access(Access::write(STACK_BASE, M));
        t.access(Access::alloc_write(DYNAMIC_BASE, M));
        let r = t.finish();
        assert_eq!(
            (r.static_blocks, r.stack_blocks, r.dynamic_blocks),
            (1, 1, 1)
        );
    }

    #[test]
    fn busy_blocks_identified_by_the_millage_rule() {
        let mut t = BlockTracker::new(1024, 64);
        // 2000 refs to one hot static block, 1 ref each to 1000 others.
        for _ in 0..2000 {
            t.access(Access::read(STATIC_BASE, M));
        }
        for i in 0..1000u32 {
            t.access(Access::alloc_write(DYNAMIC_BASE + 64 * i, M));
        }
        let r = t.finish();
        assert_eq!(r.busy.len(), 1);
        assert_eq!(r.busy[0].addr, STATIC_BASE);
        assert_eq!(r.busy[0].region, Region::Static);
        assert!(r.busy_refs_fraction() > 0.6);
        assert_eq!(r.busy_static().count(), 1);
    }

    #[test]
    fn lifetime_cdf_is_monotone() {
        let mut t = BlockTracker::new(1024, 64);
        for i in 0..10u32 {
            t.access(Access::alloc_write(DYNAMIC_BASE + 64 * i, M));
        }
        // Re-read the first block at the end: long lifetime.
        t.access(Access::read(DYNAMIC_BASE, M));
        let r = t.finish();
        assert!(r.lifetime_cdf(0) >= 0.9, "nine blocks die at birth");
        assert_eq!(r.lifetime_cdf(u64::MAX), 1.0);
        assert!(r.lifetime_cdf(5) <= r.lifetime_cdf(50));
    }

    #[test]
    fn median_refs() {
        let mut t = BlockTracker::new(1024, 64);
        for i in 0..4u32 {
            let b = DYNAMIC_BASE + 64 * i;
            t.access(Access::alloc_write(b, M));
            for _ in 0..i {
                t.access(Access::read(b, M));
            }
        }
        let r = t.finish();
        assert_eq!(r.median_dynamic_refs(), 3); // refs: 1,2,3,4 -> index 2
    }
}
