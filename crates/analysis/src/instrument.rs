//! Heterogeneous instruments for the parallel experiment engine.
//!
//! A trace pass gets its leverage from replaying one reference stream into
//! many consumers at once (Hill & Smith's multi-configuration simulation;
//! the paper's 40-cell grid). [`Instrument`] makes that set *heterogeneous*:
//! one `Vec<Instrument>` can mix cache simulators of different geometries
//! and organizations with the §7 behavioral analyzers, and the whole set
//! rides through the packet-scheduled fanout under either bucket policy —
//! every instrument is independent, so per-instrument results stay
//! bit-identical to a sequential pass.

use cachegc_sim::{Cache, CacheConfig, GridCache, SetAssocCache};
use cachegc_trace::{Access, TraceSink};

use crate::activity::{activity, Activity};
use crate::blocks::{BlockReport, BlockTracker};
use crate::sweep::SweepPlot;
use crate::timeline::{Timeline, TimelineReport};

/// A cache-activity instrument: a direct-mapped cache whose finished
/// statistics are decomposed into the §7 cache-activity graph.
///
/// [`crate::activity`] is a post-hoc analysis of any [`Cache`]; this
/// wrapper makes it a first-class [`TraceSink`] so an activity panel can
/// ride a shared trace pass next to other instruments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityTracker {
    cache: Cache,
}

impl ActivityTracker {
    /// Track activity of a fresh cache with configuration `cfg`.
    pub fn new(cfg: CacheConfig) -> Self {
        ActivityTracker {
            cache: Cache::new(cfg),
        }
    }

    /// The wrapped cache (e.g. for its raw statistics).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Finish tracking and compute the activity decomposition.
    pub fn finish(self) -> Activity {
        activity(self.cache.stats())
    }
}

impl TraceSink for ActivityTracker {
    #[inline]
    fn access(&mut self, a: Access) {
        self.cache.access(a);
    }
}

/// Any of the repo's trace instruments, as one sink type.
///
/// This is the closed set the experiment engine drives: direct-mapped and
/// set-associative cache simulators plus the §7 analyzers. The packet
/// fanout broadcasts one trace into a mixed `Vec<Instrument>` with
/// bit-identical per-instrument results (property-tested in the workspace
/// root); the work-stealing policy is the natural fit since these
/// instruments have very different per-event costs.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Instrument {
    /// A direct-mapped cache simulation.
    Cache(Cache),
    /// A set-associative cache simulation.
    Assoc(SetAssocCache),
    /// The §7 memory-block behavior tracker.
    Blocks(BlockTracker),
    /// The §7 time × cache-block miss plot.
    Sweep(SweepPlot),
    /// The §7 cache-activity decomposition.
    Activity(ActivityTracker),
    /// A whole direct-mapped configuration grid simulated in lockstep
    /// (the batch replay kernel's sink).
    Grid(GridCache),
    /// The windowed §6 cache/GC timeline sampler.
    Timeline(Timeline),
}

impl Instrument {
    /// Short kind name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Instrument::Cache(_) => "cache",
            Instrument::Assoc(_) => "assoc",
            Instrument::Blocks(_) => "blocks",
            Instrument::Sweep(_) => "sweep",
            Instrument::Activity(_) => "activity",
            Instrument::Grid(_) => "grid",
            Instrument::Timeline(_) => "timeline",
        }
    }

    /// The wrapped [`Cache`], if this is a direct-mapped cache instrument.
    pub fn into_cache(self) -> Option<Cache> {
        match self {
            Instrument::Cache(c) => Some(c),
            _ => None,
        }
    }

    /// The wrapped [`SetAssocCache`], if any.
    pub fn into_assoc(self) -> Option<SetAssocCache> {
        match self {
            Instrument::Assoc(c) => Some(c),
            _ => None,
        }
    }

    /// Finish a block tracker into its report, if this is one.
    pub fn into_block_report(self) -> Option<BlockReport> {
        match self {
            Instrument::Blocks(t) => Some(t.finish()),
            _ => None,
        }
    }

    /// The wrapped [`SweepPlot`], if any.
    pub fn into_sweep(self) -> Option<SweepPlot> {
        match self {
            Instrument::Sweep(p) => Some(p),
            _ => None,
        }
    }

    /// Finish an activity tracker into its decomposition, if this is one.
    pub fn into_activity(self) -> Option<Activity> {
        match self {
            Instrument::Activity(t) => Some(t.finish()),
            _ => None,
        }
    }

    /// The wrapped [`GridCache`], if this is a grid instrument.
    pub fn into_grid(self) -> Option<GridCache> {
        match self {
            Instrument::Grid(g) => Some(g),
            _ => None,
        }
    }

    /// Finish a timeline sampler into its report, if this is one.
    pub fn into_timeline(self) -> Option<TimelineReport> {
        match self {
            Instrument::Timeline(t) => Some(t.finish()),
            _ => None,
        }
    }
}

impl From<Cache> for Instrument {
    fn from(c: Cache) -> Self {
        Instrument::Cache(c)
    }
}

impl From<SetAssocCache> for Instrument {
    fn from(c: SetAssocCache) -> Self {
        Instrument::Assoc(c)
    }
}

impl From<BlockTracker> for Instrument {
    fn from(t: BlockTracker) -> Self {
        Instrument::Blocks(t)
    }
}

impl From<SweepPlot> for Instrument {
    fn from(p: SweepPlot) -> Self {
        Instrument::Sweep(p)
    }
}

impl From<ActivityTracker> for Instrument {
    fn from(t: ActivityTracker) -> Self {
        Instrument::Activity(t)
    }
}

impl From<GridCache> for Instrument {
    fn from(g: GridCache) -> Self {
        Instrument::Grid(g)
    }
}

impl From<Timeline> for Instrument {
    fn from(t: Timeline) -> Self {
        Instrument::Timeline(t)
    }
}

impl TraceSink for Instrument {
    #[inline]
    fn access(&mut self, a: Access) {
        match self {
            Instrument::Cache(c) => c.access(a),
            Instrument::Assoc(c) => c.access(a),
            Instrument::Blocks(t) => t.access(a),
            Instrument::Sweep(p) => p.access(a),
            Instrument::Activity(t) => t.access(a),
            Instrument::Grid(g) => g.access(a),
            Instrument::Timeline(t) => t.access(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::{Context, Fanout, DYNAMIC_BASE};

    const M: Context = Context::Mutator;

    fn mixed_set() -> Vec<Instrument> {
        vec![
            Cache::new(CacheConfig::direct_mapped(1 << 15, 64)).into(),
            SetAssocCache::new(CacheConfig::direct_mapped(1 << 15, 64).with_assoc(2)).into(),
            BlockTracker::new(1 << 15, 64).into(),
            SweepPlot::new(CacheConfig::direct_mapped(1 << 15, 64), 256).into(),
            ActivityTracker::new(CacheConfig::direct_mapped(1 << 15, 64)).into(),
            GridCache::new(vec![
                CacheConfig::direct_mapped(1 << 15, 32),
                CacheConfig::direct_mapped(1 << 16, 64),
            ])
            .into(),
            Timeline::new(CacheConfig::direct_mapped(1 << 15, 64), 1000).into(),
        ]
    }

    #[test]
    fn every_instrument_consumes_the_stream() {
        let mut fan = Fanout::new(mixed_set());
        for i in 0..4096u32 {
            let addr = DYNAMIC_BASE + (i % 900) * 52;
            fan.access(if i % 4 == 0 {
                Access::alloc_write(addr, M)
            } else {
                Access::read(addr, M)
            });
        }
        let out = fan.into_sinks();
        assert_eq!(
            out.iter().map(Instrument::kind).collect::<Vec<_>>(),
            ["cache", "assoc", "blocks", "sweep", "activity", "grid", "timeline"]
        );
        let mut out = out.into_iter();
        let cache = out.next().unwrap().into_cache().unwrap();
        assert!(cache.stats().misses() > 0);
        let assoc = out.next().unwrap().into_assoc().unwrap();
        assert!(assoc.stats().misses() > 0);
        let blocks = out.next().unwrap().into_block_report().unwrap();
        assert_eq!(blocks.total_refs, 4096);
        let sweep = out.next().unwrap().into_sweep().unwrap();
        assert!(sweep.width() > 0);
        let act = out.next().unwrap().into_activity().unwrap();
        assert!(!act.entries.is_empty());
        let grid = out.next().unwrap().into_grid().unwrap();
        assert_eq!(grid.events(), 4096);
        assert!(grid.stats(0).misses() > 0 && grid.stats(1).misses() > 0);
        let timeline = out.next().unwrap().into_timeline().unwrap();
        assert_eq!(timeline.events, 4096);
        assert_eq!(timeline.windows_sum(), timeline.totals);
    }

    #[test]
    fn activity_tracker_matches_post_hoc_analysis() {
        let cfg = CacheConfig::direct_mapped(1 << 14, 64);
        let mut tracker = ActivityTracker::new(cfg);
        let mut cache = Cache::new(cfg);
        for i in 0..2000u32 {
            let a = Access::read(DYNAMIC_BASE + (i % 333) * 68, M);
            tracker.access(a);
            cache.access(a);
        }
        assert_eq!(tracker.finish(), activity(cache.stats()));
    }

    #[test]
    fn conversions_are_kind_checked() {
        let i: Instrument = BlockTracker::new(1 << 12, 64).into();
        assert!(i.clone().into_cache().is_none());
        assert!(i.into_block_report().is_some());
    }
}
