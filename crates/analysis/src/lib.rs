//! The behavioral analyses of the paper's §7.
//!
//! Three instruments:
//!
//! * [`BlockTracker`] — an online tracker of *memory block* behavior:
//!   lifetimes (first to last reference), reference counts, allocation
//!   cycles, one-cycle blocks, busy blocks, and per-population (static /
//!   stack / dynamic) statistics. Its [`BlockReport`] reproduces the §7
//!   lifetime CDF (with one-cycle markers), the multi-cycle activity
//!   claim (≥90 % of multi-cycle blocks active in ≤4 cycles), the
//!   references-per-block distribution, and the busy-block census
//!   (59–155 busy static blocks ≈ 75 % of references).
//! * [`Activity`] — per-*cache-block* decomposition of a finished cache
//!   simulation: local miss ratios with cache blocks in ascending
//!   reference-count order, plus cumulative miss / reference / miss-ratio
//!   curves — the paper's cache-activity graphs.
//! * [`SweepPlot`] — the time × cache-block miss dot plot showing the
//!   allocation pointer sweeping the cache diagonally.
//! * [`Timeline`] — windowed cache/GC timeline sampler: fixed event
//!   windows split at GC epoch boundaries, reproducing the paper's §6
//!   miss-rate-versus-time story with exact aggregate reconstruction.
//!
//! [`ActivityTracker`] packages the activity decomposition as an online
//! [`cachegc_trace::TraceSink`], and [`Instrument`] closes all of the
//! above (plus the cache simulators) into one sink type so a heterogeneous
//! instrument set can share a single — optionally parallel — trace pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod blocks;
mod instrument;
mod sweep;
mod timeline;

pub use activity::{activity, Activity, ActivityEntry};
pub use blocks::{BlockReport, BlockTracker, BusyBlock};
pub use instrument::{ActivityTracker, Instrument};
pub use sweep::SweepPlot;
pub use timeline::{
    CollectionMarker, Timeline, TimelineReport, TimelineWindow, DEFAULT_WINDOW_EVENTS,
};
