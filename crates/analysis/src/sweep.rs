//! The cache-miss sweep plot (§7's first figure).

use cachegc_sim::{Cache, CacheConfig};
use cachegc_trace::{Access, TraceSink};

/// Records a dot matrix of cache misses over time: a dot at `(x, y)` when
/// at least one miss occurred in cache block `y` during the `x`-th
/// `refs_per_column`-reference interval. Linear allocation shows up as
/// broken diagonal lines — the allocation pointer sweeping the cache —
/// and thrashing blocks as horizontal stripes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPlot {
    cache: Cache,
    refs_per_column: u64,
    time: u64,
    columns: Vec<Vec<u64>>,
    words_per_row: usize,
}

impl SweepPlot {
    /// Plot misses of a fresh cache with config `cfg`, one column per
    /// `refs_per_column` references (the paper uses 1024).
    pub fn new(cfg: CacheConfig, refs_per_column: u64) -> Self {
        assert!(refs_per_column > 0);
        let rows = cfg.num_blocks() as usize;
        SweepPlot {
            cache: Cache::new(cfg),
            refs_per_column,
            time: 0,
            columns: Vec::new(),
            words_per_row: rows.div_ceil(64),
        }
    }

    /// The wrapped cache (e.g. for its statistics).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Number of time columns recorded so far.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of cache blocks (plot rows).
    pub fn height(&self) -> usize {
        self.cache.config().num_blocks() as usize
    }

    /// Is there a dot (≥1 miss) at column `x`, cache block `y`?
    pub fn dot(&self, x: usize, y: usize) -> bool {
        self.columns
            .get(x)
            .is_some_and(|col| col[y / 64] & (1u64 << (y % 64)) != 0)
    }

    /// Render as text, one character per cell (`*` = miss), cache block 0
    /// at the bottom as in the paper's figure. `max_cols` bounds the
    /// width; later columns are dropped.
    pub fn render_ascii(&self, max_cols: usize) -> String {
        let w = self.width().min(max_cols);
        let h = self.height();
        let mut out = String::with_capacity((w + 1) * h);
        for y in (0..h).rev() {
            for x in 0..w {
                out.push(if self.dot(x, y) { '*' } else { ' ' });
            }
            out.push('\n');
        }
        out
    }

    /// The mean slope (cache blocks per column) of allocation-miss dots —
    /// a crude measure of the allocation wave's speed. Returns `None` if
    /// no allocation misses were recorded.
    pub fn fraction_of_cells_with_dots(&self) -> f64 {
        if self.columns.is_empty() {
            return 0.0;
        }
        let dots: u64 = self
            .columns
            .iter()
            .map(|c| c.iter().map(|w| w.count_ones() as u64).sum::<u64>())
            .sum();
        dots as f64 / (self.width() * self.height()) as f64
    }
}

impl TraceSink for SweepPlot {
    fn access(&mut self, a: Access) {
        let col = (self.time / self.refs_per_column) as usize;
        self.time += 1;
        let out = self.cache.access_classified(a);
        if !out.hit {
            if self.columns.len() <= col {
                self.columns.resize(col + 1, vec![0u64; self.words_per_row]);
            }
            let y = out.cache_block as usize;
            self.columns[col][y / 64] |= 1u64 << (y % 64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::{Context, DYNAMIC_BASE};

    const M: Context = Context::Mutator;

    #[test]
    fn linear_allocation_draws_a_diagonal() {
        // 16-block cache; 1 column per 4 refs; allocate 2 blocks per column.
        let mut p = SweepPlot::new(CacheConfig::direct_mapped(1024, 64), 4);
        let mut addr = DYNAMIC_BASE;
        for _ in 0..32 {
            // Two allocation misses plus two filler hits per column.
            p.access(Access::alloc_write(addr, M));
            p.access(Access::alloc_write(addr + 64, M));
            p.access(Access::read(addr, M));
            p.access(Access::read(addr + 64, M));
            addr += 128;
        }
        // Column x should have dots at the two blocks the wave covered.
        let b0 = ((DYNAMIC_BASE / 64) % 16) as usize;
        for x in 0..p.width() {
            let y = (b0 + 2 * x) % 16;
            assert!(p.dot(x, y), "dot at ({x},{y})");
            assert!(p.dot(x, (y + 1) % 16));
        }
        // The wave is sparse: 2 of 16 blocks per column.
        let f = p.fraction_of_cells_with_dots();
        assert!((f - 2.0 / 16.0).abs() < 0.02, "{f}");
    }

    #[test]
    fn thrashing_draws_a_horizontal_stripe() {
        let mut p = SweepPlot::new(CacheConfig::direct_mapped(1024, 64), 8);
        for _ in 0..64 {
            p.access(Access::read(DYNAMIC_BASE, M));
            p.access(Access::read(DYNAMIC_BASE + 1024, M));
        }
        // Every column has a dot in the conflicting row; no other rows.
        let row = ((DYNAMIC_BASE / 64) % 16) as usize;
        for x in 0..p.width() {
            assert!(p.dot(x, row));
            for y in 0..16 {
                if y != row {
                    assert!(!p.dot(x, y));
                }
            }
        }
    }

    #[test]
    fn ascii_rendering_shape() {
        let mut p = SweepPlot::new(CacheConfig::direct_mapped(1024, 64), 4);
        p.access(Access::read(DYNAMIC_BASE, M));
        let s = p.render_ascii(10);
        assert_eq!(s.lines().count(), 16);
        assert!(s.contains('*'));
    }
}
