//! Time-resolved cache/GC timelines (the paper's §6 "miss rate vs time").
//!
//! The aggregate `CacheStats` of a finished run hides the mechanism the
//! paper describes: allocation sweeping linearly through the cache,
//! collections flushing it, miss rates oscillating with GC epochs. The
//! [`Timeline`] instrument samples a run in fixed event windows and splits
//! every window at GC epoch boundaries, so each sample attributes its
//! traffic purely to the mutator or purely to the collector. Window deltas
//! are taken by subtracting [`CacheTotals`] snapshots of one wrapped cache,
//! so they sum back to the aggregate statistics *exactly* — an invariant
//! the workspace property tests assert across every driver path.

use cachegc_sim::{Cache, CacheConfig, CacheTotals};
use cachegc_trace::{Access, Context, TraceSink};

/// Default window length: one million trace events.
pub const DEFAULT_WINDOW_EVENTS: u64 = 1_000_000;

/// One timeline sample: a run of consecutive events in a single context.
///
/// Windows never span a GC epoch boundary; a context flip closes the
/// current window early, so `events` may be anywhere in
/// `1..=window_events`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineWindow {
    /// Index of the first event in this window (0-based).
    pub start_event: u64,
    /// Number of events in this window.
    pub events: u64,
    /// The single context that produced every event in this window.
    pub ctx: Context,
    /// Cache counter deltas attributed to this window.
    pub delta: CacheTotals,
    /// Address of the most recent initializing allocation store seen by
    /// the end of this window — the paper's allocation-pointer position.
    pub alloc_ptr: u32,
}

impl TimelineWindow {
    /// Miss ratio within this window.
    pub fn miss_ratio(&self) -> f64 {
        if self.delta.refs() == 0 {
            0.0
        } else {
            self.delta.misses() as f64 / self.delta.refs() as f64
        }
    }
}

/// One garbage collection, marked from the first collector event of an
/// epoch to the last before the mutator resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectionMarker {
    /// Index of the first collector event of this collection.
    pub start_event: u64,
    /// Number of collector events in this collection.
    pub events: u64,
    /// Collector loads during the collection.
    pub reads: u64,
    /// Collector stores during the collection.
    pub writes: u64,
    /// `"copying"` if the collector wrote (evacuation / pointer fixup),
    /// `"mark"` for a read-only marking pass.
    pub kind: &'static str,
    /// Bytes the collector stored — copied survivors plus bookkeeping.
    pub bytes_copied: u64,
    /// `floor(log2(events))`: a coarse pause-length bucket for histograms.
    pub pause_bucket: u32,
}

/// Finished timeline: the windows, the collections, and the aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineReport {
    /// Geometry of the sampled cache.
    pub cache: CacheConfig,
    /// Configured maximum window length in events.
    pub window_events: u64,
    /// Total events consumed.
    pub events: u64,
    /// The epoch-split sample windows, in trace order.
    pub windows: Vec<TimelineWindow>,
    /// Per-collection markers, in trace order.
    pub collections: Vec<CollectionMarker>,
    /// Aggregate counters of the wrapped cache (equals the window sum).
    pub totals: CacheTotals,
}

impl TimelineReport {
    /// Element-wise sum of all window deltas. Equals [`Self::totals`] by
    /// construction; exposed so tests can assert the reconstruction.
    pub fn windows_sum(&self) -> CacheTotals {
        self.windows
            .iter()
            .fold(CacheTotals::default(), |acc, w| acc.add(&w.delta))
    }

    /// Bytes moved between cache and memory for the given counter delta:
    /// block fetches and writebacks at block granularity plus
    /// write-through words.
    pub fn transfer_bytes(&self, t: &CacheTotals) -> u64 {
        let block = self.cache.block as u64;
        t.fetches() * block + t.writebacks * block + t.write_through_words * 4
    }
}

/// Epoch state of a collection in progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenCollection {
    start_event: u64,
    start_totals: CacheTotals,
}

/// Windowed cache/GC timeline sampler over one direct-mapped cache.
///
/// A [`TraceSink`] that feeds every event to a wrapped [`Cache`] and closes
/// a sample window whenever the window fills or the event context flips
/// (a GC epoch boundary). Joins [`crate::Instrument`] so it runs under
/// every driver — sequential, packet crew, record/replay, grid kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    cache: Cache,
    window_events: u64,
    events_seen: u64,
    window_start: u64,
    cur_ctx: Option<Context>,
    prev_totals: CacheTotals,
    alloc_ptr: u32,
    windows: Vec<TimelineWindow>,
    collections: Vec<CollectionMarker>,
    open_collection: Option<OpenCollection>,
}

impl Timeline {
    /// Sample a fresh cache of geometry `cfg` in windows of at most
    /// `window_events` events.
    ///
    /// # Panics
    ///
    /// Panics if `window_events` is zero.
    pub fn new(cfg: CacheConfig, window_events: u64) -> Self {
        assert!(window_events > 0, "timeline window must be non-empty");
        Timeline {
            cache: Cache::new(cfg),
            window_events,
            events_seen: 0,
            window_start: 0,
            cur_ctx: None,
            prev_totals: CacheTotals::default(),
            alloc_ptr: 0,
            windows: Vec::new(),
            collections: Vec::new(),
            open_collection: None,
        }
    }

    /// The wrapped cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Events consumed so far.
    pub fn events(&self) -> u64 {
        self.events_seen
    }

    fn close_window(&mut self) {
        let events = self.events_seen - self.window_start;
        if events > 0 {
            let totals = self.cache.stats().totals();
            self.windows.push(TimelineWindow {
                start_event: self.window_start,
                events,
                ctx: self.cur_ctx.expect("closing a window that never opened"),
                delta: totals.delta(&self.prev_totals),
                alloc_ptr: self.alloc_ptr,
            });
            self.prev_totals = totals;
        }
        self.window_start = self.events_seen;
    }

    fn close_collection(&mut self) {
        if let Some(open) = self.open_collection.take() {
            let delta = self.cache.stats().totals().delta(&open.start_totals);
            let events = self.events_seen - open.start_event;
            let writes = delta.collector_writes;
            self.collections.push(CollectionMarker {
                start_event: open.start_event,
                events,
                reads: delta.collector_reads,
                writes,
                kind: if writes > 0 { "copying" } else { "mark" },
                bytes_copied: writes * 4,
                pause_bucket: if events == 0 { 0 } else { events.ilog2() },
            });
        }
    }

    /// Finish sampling: close the trailing partial window (and collection,
    /// if the trace ended mid-GC) and return the report.
    pub fn finish(mut self) -> TimelineReport {
        self.close_window();
        self.close_collection();
        TimelineReport {
            cache: *self.cache.config(),
            window_events: self.window_events,
            events: self.events_seen,
            windows: self.windows,
            collections: self.collections,
            totals: self.cache.stats().totals(),
        }
    }
}

impl TraceSink for Timeline {
    #[inline]
    fn access(&mut self, a: Access) {
        if self.cur_ctx != Some(a.ctx) {
            // GC epoch boundary: split the window so samples stay pure.
            self.close_window();
            match a.ctx {
                Context::Collector => {
                    self.open_collection = Some(OpenCollection {
                        start_event: self.events_seen,
                        start_totals: self.cache.stats().totals(),
                    });
                }
                Context::Mutator => self.close_collection(),
            }
            self.cur_ctx = Some(a.ctx);
        } else if self.events_seen - self.window_start >= self.window_events {
            self.close_window();
        }
        self.cache.access(a);
        self.events_seen += 1;
        if a.alloc_init {
            self.alloc_ptr = a.addr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::DYNAMIC_BASE;

    const M: Context = Context::Mutator;
    const C: Context = Context::Collector;

    fn cfg() -> CacheConfig {
        CacheConfig::direct_mapped(1 << 14, 32)
    }

    #[test]
    fn windows_split_at_window_size_and_epoch_boundaries() {
        let mut t = Timeline::new(cfg(), 100);
        for i in 0..250u32 {
            t.access(Access::read(DYNAMIC_BASE + i * 4, M));
        }
        for i in 0..30u32 {
            t.access(Access::read(DYNAMIC_BASE + i * 4, C));
        }
        for i in 0..10u32 {
            t.access(Access::alloc_write(DYNAMIC_BASE + 4096 + i * 4, M));
        }
        let r = t.finish();
        assert_eq!(r.events, 290);
        // 100 + 100 + 50 mutator, 30 collector, 10 mutator.
        let shape: Vec<(u64, Context)> = r.windows.iter().map(|w| (w.events, w.ctx)).collect();
        assert_eq!(shape, [(100, M), (100, M), (50, M), (30, C), (10, M)]);
        assert_eq!(r.windows[3].start_event, 250);
        // Every window is context-pure: only one side of the ref counters moves.
        for w in &r.windows {
            match w.ctx {
                M => assert_eq!(w.delta.collector_reads + w.delta.collector_writes, 0),
                C => assert_eq!(w.delta.mutator_reads + w.delta.mutator_writes, 0),
            }
        }
        assert_eq!(r.windows_sum(), r.totals);
        assert_eq!(
            r.windows.last().unwrap().alloc_ptr,
            DYNAMIC_BASE + 4096 + 36
        );
    }

    #[test]
    fn collection_markers_classify_kind_and_bucket() {
        let mut t = Timeline::new(cfg(), 1 << 20);
        t.access(Access::read(DYNAMIC_BASE, M));
        // A read-only collection of 8 events.
        for i in 0..8u32 {
            t.access(Access::read(DYNAMIC_BASE + i * 64, C));
        }
        t.access(Access::read(DYNAMIC_BASE, M));
        // A copying collection that ends the trace (closed by finish()).
        t.access(Access::read(DYNAMIC_BASE, C));
        t.access(Access::write(DYNAMIC_BASE + 128, C));
        let r = t.finish();
        assert_eq!(r.collections.len(), 2);
        let mark = &r.collections[0];
        assert_eq!((mark.kind, mark.events, mark.pause_bucket), ("mark", 8, 3));
        assert_eq!(mark.writes, 0);
        let copy = &r.collections[1];
        assert_eq!((copy.kind, copy.events), ("copying", 2));
        assert_eq!(copy.bytes_copied, 4);
        assert_eq!(r.windows_sum(), r.totals);
    }

    #[test]
    fn empty_timeline_finishes_clean() {
        let r = Timeline::new(cfg(), 10).finish();
        assert!(r.windows.is_empty() && r.collections.is_empty());
        assert_eq!(r.totals, CacheTotals::default());
    }

    #[test]
    fn window_deltas_match_standalone_cache() {
        let mut t = Timeline::new(cfg(), 37);
        let mut oracle = Cache::new(cfg());
        for i in 0..5000u32 {
            let ctx = if i % 700 < 80 { C } else { M };
            let a = if i % 5 == 0 {
                Access::alloc_write(DYNAMIC_BASE + (i % 1200) * 16, ctx)
            } else {
                Access::read(DYNAMIC_BASE + (i % 900) * 52, ctx)
            };
            t.access(a);
            oracle.access(a);
        }
        let r = t.finish();
        assert_eq!(r.totals, oracle.stats().totals());
        assert_eq!(r.windows_sum(), oracle.stats().totals());
        assert!(r.windows.iter().all(|w| w.events <= 37));
    }
}
