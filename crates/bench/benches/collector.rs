//! Benchmarks of the collectors: bytes copied per second and collection
//! latency for live graphs of different shapes.

use std::hint::black_box;

use cachegc_bench::harness::bench_with_setup;
use cachegc_gc::{CheneyCollector, Collector, GenerationalCollector, Roots};
use cachegc_heap::{Heap, HeapConfig, ObjKind, Value};
use cachegc_trace::{Context, Counters, NullSink};

const LIST_LEN: u32 = 10_000;
const LIST_BYTES: u64 = LIST_LEN as u64 * 12;

fn heap_with_list(semispace: u32) -> (Heap, Value) {
    let mut heap = Heap::new(HeapConfig::semispaces(semispace));
    let mut sink = NullSink;
    let mut head = Value::nil();
    for i in 0..LIST_LEN {
        head = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(i as i32), head],
                Context::Mutator,
                &mut sink,
            )
            .expect("fits");
    }
    (heap, head)
}

fn bench_cheney_copy() {
    bench_with_setup(
        "cheney/copy_10k_pair_list",
        Some(LIST_BYTES),
        || {
            let (mut heap, head) = heap_with_list(4 << 20);
            let mut gc = CheneyCollector::new(4 << 20);
            gc.install(&mut heap);
            // Reinstall loses the bump pointer; restore it past the list.
            heap.set_alloc_region(
                cachegc_trace::DYNAMIC_BASE,
                cachegc_trace::DYNAMIC_BASE + LIST_LEN * 12,
                cachegc_trace::DYNAMIC_BASE + (4 << 20),
            );
            (heap, gc, head)
        },
        |(mut heap, mut gc, head)| {
            let mut regs = [head];
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
            black_box(regs[0]);
        },
    );
}

fn bench_generational_minor() {
    bench_with_setup(
        "generational/minor_with_10k_survivors",
        Some(LIST_BYTES),
        || {
            let mut heap = Heap::new(HeapConfig::unbounded());
            let mut gc = GenerationalCollector::new(1 << 20, 16 << 20);
            gc.install(&mut heap);
            let mut sink = NullSink;
            let mut head = Value::nil();
            for i in 0..LIST_LEN {
                head = heap
                    .alloc(
                        ObjKind::Pair,
                        &[Value::fixnum(i as i32), head],
                        Context::Mutator,
                        &mut sink,
                    )
                    .expect("fits in nursery");
            }
            (heap, gc, head)
        },
        |(mut heap, mut gc, head)| {
            let mut regs = [head];
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
            black_box(regs[0]);
        },
    );
    bench_with_setup(
        "generational/minor_all_dead",
        Some(LIST_BYTES),
        || {
            let mut heap = Heap::new(HeapConfig::unbounded());
            let mut gc = GenerationalCollector::new(1 << 20, 16 << 20);
            gc.install(&mut heap);
            let mut sink = NullSink;
            for i in 0..LIST_LEN {
                heap.alloc(
                    ObjKind::Pair,
                    &[Value::fixnum(i as i32), Value::nil()],
                    Context::Mutator,
                    &mut sink,
                )
                .expect("fits");
            }
            (heap, gc)
        },
        |(mut heap, mut gc)| {
            let mut regs = [];
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut NullSink);
            black_box(gc.old_used());
        },
    );
}

fn main() {
    bench_cheney_copy();
    bench_generational_minor();
}
