//! Criterion benchmarks of the Scheme machine: simulated references per
//! second with and without cache simulation attached — the cost of the
//! measurement apparatus itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cachegc_gc::NoCollector;
use cachegc_sim::{Cache, CacheConfig};
use cachegc_trace::{NullSink, RefCounter};
use cachegc_vm::Machine;

const FIB: &str = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 17)";

/// References the FIB program makes (measured once, used as throughput).
fn fib_refs() -> u64 {
    let mut m = Machine::new(NoCollector::new(), RefCounter::new());
    m.run_program(FIB).unwrap();
    m.sink().total()
}

fn bench_machine(c: &mut Criterion) {
    let refs = fib_refs();
    let mut g = c.benchmark_group("machine");
    g.throughput(Throughput::Elements(refs));
    g.bench_function("fib17_null_sink", |b| {
        b.iter(|| {
            let mut m = Machine::new(NoCollector::new(), NullSink);
            black_box(m.run_program(FIB).unwrap())
        })
    });
    g.bench_function("fib17_one_cache", |b| {
        b.iter(|| {
            let mut m = Machine::new(
                NoCollector::new(),
                Cache::new(CacheConfig::direct_mapped(64 << 10, 64)),
            );
            black_box(m.run_program(FIB).unwrap())
        })
    });
    g.finish();
}

fn bench_boot(c: &mut Criterion) {
    let mut g = c.benchmark_group("boot");
    g.bench_function("machine_new_with_prelude", |b| {
        b.iter(|| {
            let m = Machine::new(NoCollector::new(), NullSink);
            black_box(m.counters().program())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_machine, bench_boot);
criterion_main!(benches);
