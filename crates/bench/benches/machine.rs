//! Benchmarks of the Scheme machine: simulated references per second with
//! and without cache simulation attached — the cost of the measurement
//! apparatus itself.

use std::hint::black_box;

use cachegc_bench::harness::bench;
use cachegc_gc::NoCollector;
use cachegc_sim::{Cache, CacheConfig};
use cachegc_trace::{NullSink, RefCounter};
use cachegc_vm::Machine;

const FIB: &str = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 17)";

/// References the FIB program makes (measured once, used as throughput).
fn fib_refs() -> u64 {
    let mut m = Machine::new(NoCollector::new(), RefCounter::new());
    m.run_program(FIB).unwrap();
    m.sink().total()
}

fn bench_machine() {
    let refs = fib_refs();
    bench("machine/fib17_null_sink", Some(refs), || {
        let mut m = Machine::new(NoCollector::new(), NullSink);
        black_box(m.run_program(FIB).unwrap());
    });
    bench("machine/fib17_one_cache", Some(refs), || {
        let mut m = Machine::new(
            NoCollector::new(),
            Cache::new(CacheConfig::direct_mapped(64 << 10, 64)),
        );
        black_box(m.run_program(FIB).unwrap());
    });
}

fn bench_boot() {
    bench("boot/machine_new_with_prelude", None, || {
        let m = Machine::new(NoCollector::new(), NullSink);
        black_box(m.counters().program());
    });
}

fn main() {
    bench_machine();
    bench_boot();
}
