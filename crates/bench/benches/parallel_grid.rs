//! The tentpole benchmark: sequential `Fanout` vs `ParallelFanout` on the
//! paper's full 40-cell cache grid (8 sizes × 5 block sizes), both over a
//! raw synthetic reference stream (isolates the sink) and over a real VM
//! trace pass (`run_control` end to end).
//!
//! The acceptance bar for the parallel experiment engine is a ≥ 2× wall
//! clock speedup at `jobs >= 4`; this prints the measured speedups.

use std::hint::black_box;

use cachegc_bench::harness::bench_with_setup;
use cachegc_core::{run_control, run_control_jobs, Cache, ExperimentConfig};
use cachegc_trace::{Fanout, ParallelFanout};
use cachegc_workloads::{synthetic, Workload};

const STREAM_OBJECTS: u32 = 50_000;
const STREAM_EVENTS: u64 = STREAM_OBJECTS as u64 * 7;

fn grid() -> Vec<Cache> {
    ExperimentConfig::paper()
        .configs()
        .into_iter()
        .map(Cache::new)
        .collect()
}

fn bench_synthetic() {
    let cells = grid().len() as u64;
    let seq = bench_with_setup(
        "paper_grid/synthetic/sequential",
        Some(STREAM_EVENTS * cells),
        || Fanout::new(grid()),
        |mut fan| {
            synthetic::one_cycle_sweep(&mut fan, STREAM_OBJECTS, 2);
            black_box(fan.sinks().len());
        },
    );
    for jobs in [2usize, 4, 8] {
        let par = bench_with_setup(
            &format!("paper_grid/synthetic/jobs={jobs}"),
            Some(STREAM_EVENTS * cells),
            move || ParallelFanout::new(grid(), jobs),
            |mut fan| {
                synthetic::one_cycle_sweep(&mut fan, STREAM_OBJECTS, 2);
                black_box(fan.into_sinks().len());
            },
        );
        println!(
            "  -> speedup vs sequential: {:.2}x",
            seq.median.as_secs_f64() / par.median.as_secs_f64()
        );
    }
}

fn bench_vm_pass() {
    let cfg = ExperimentConfig::paper();
    let w = Workload::Rewrite.scaled(1);
    let seq = bench_with_setup(
        "paper_grid/run_control/sequential",
        None,
        || (),
        |()| {
            black_box(run_control(w, &cfg).unwrap().refs);
        },
    );
    for jobs in [4usize, 8] {
        let par = bench_with_setup(
            &format!("paper_grid/run_control/jobs={jobs}"),
            None,
            || (),
            |()| {
                black_box(run_control_jobs(w, &cfg, jobs).unwrap().refs);
            },
        );
        println!(
            "  -> speedup vs sequential: {:.2}x",
            seq.median.as_secs_f64() / par.median.as_secs_f64()
        );
    }
}

fn main() {
    bench_synthetic();
    bench_vm_pass();
}
