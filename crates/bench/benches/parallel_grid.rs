//! The tentpole benchmark: sequential `Fanout` vs the packet-scheduled
//! crew on the paper's full 40-cell cache grid (8 sizes × 5 block sizes),
//! both over a raw synthetic reference stream (isolates the sink) and
//! over a real VM trace pass (a full control sweep end to end).
//!
//! The packet scheduler is measured at 2 and 4 workers against the
//! sequential oracle; this prints the measured speedups. (On a one-core
//! container the interesting number is the overhead, not the speedup —
//! bit-identity of the results is enforced by the property tests.)
//!
//! Every measured configuration is also recorded as one [`GridRun`]
//! (labelled `<stream>/sequential` or `<stream>/jobs=N`) and the whole
//! run is written to `BENCH_grid.json` (override with
//! `CACHEGC_BENCH_JSON`), so the performance trajectory of the engine is
//! machine-readable across PRs.

use std::hint::black_box;
use std::time::Instant;

use cachegc_bench::harness::{bench_with_setup, Summary};
use cachegc_bench::{GridReport, GridRun};
use cachegc_core::{
    run_control, Cache, EngineConfig, ExperimentConfig, PacketKind, Runner, Schedule,
};
use cachegc_trace::Fanout;
use cachegc_workloads::{synthetic, Workload};

const STREAM_OBJECTS: u32 = 50_000;
const STREAM_EVENTS: u64 = STREAM_OBJECTS as u64 * 7;
/// Packet-crew widths measured (1 is the sequential oracle).
const JOBS: [usize; 2] = [2, 4];

fn grid() -> Vec<Cache> {
    ExperimentConfig::paper()
        .configs()
        .into_iter()
        .map(Cache::new)
        .collect()
}

/// The engine a `jobs=N` configuration runs under: the work-stealing
/// bucket policy, the same one the goldens are pinned to.
fn engine(jobs: usize) -> EngineConfig {
    EngineConfig::jobs(jobs).with_schedule(Schedule::WorkStealing)
}

/// One measured configuration, as a trajectory record: `events` is the
/// per-pass stream length, `cells` the grid width it fanned out over.
fn run(label: String, scale: u32, events: u64, s: &Summary) -> GridRun {
    GridRun {
        workload: label,
        scale,
        events,
        cells: grid().len(),
        wall: s.median,
    }
}

fn bench_synthetic(runs: &mut Vec<GridRun>) {
    let cells = grid().len() as u64;
    let seq = bench_with_setup(
        "paper_grid/synthetic/sequential",
        Some(STREAM_EVENTS * cells),
        || Fanout::new(grid()),
        |mut fan| {
            synthetic::one_cycle_sweep(&mut fan, STREAM_OBJECTS, 2);
            black_box(fan.sinks().len());
        },
    );
    runs.push(run("synthetic/sequential".into(), 1, STREAM_EVENTS, &seq));
    for jobs in JOBS {
        let par = bench_with_setup(
            &format!("paper_grid/synthetic/jobs={jobs}"),
            Some(STREAM_EVENTS * cells),
            move || Runner::new(engine(jobs)),
            |runner| {
                let ((), caches) = runner.drive(PacketKind::SinkDrain, grid(), |mut fan| {
                    synthetic::one_cycle_sweep(&mut fan, STREAM_OBJECTS, 2);
                });
                black_box(caches.len());
            },
        );
        println!(
            "  -> speedup vs sequential: {:.2}x",
            seq.median.as_secs_f64() / par.median.as_secs_f64()
        );
        runs.push(run(
            format!("synthetic/jobs={jobs}"),
            1,
            STREAM_EVENTS,
            &par,
        ));
    }
}

fn bench_vm_pass(runs: &mut Vec<GridRun>) {
    let cfg = ExperimentConfig::paper();
    let w = Workload::Rewrite.scaled(1);
    let events = run_control(w, &cfg).expect("control pass").refs;
    let seq = bench_with_setup(
        "paper_grid/run_control/sequential",
        None,
        || (),
        |()| {
            black_box(run_control(w, &cfg).unwrap().refs);
        },
    );
    runs.push(run("rewrite/sequential".into(), 1, events, &seq));
    for jobs in JOBS {
        let par = bench_with_setup(
            &format!("paper_grid/run_control/jobs={jobs}"),
            None,
            move || Runner::new(engine(jobs)),
            |runner| {
                black_box(runner.control(w, &cfg).unwrap().refs);
            },
        );
        println!(
            "  -> speedup vs sequential: {:.2}x",
            seq.median.as_secs_f64() / par.median.as_secs_f64()
        );
        runs.push(run(format!("rewrite/jobs={jobs}"), 1, events, &par));
    }
}

fn main() {
    let t0 = Instant::now();
    let mut runs = Vec::new();
    bench_synthetic(&mut runs);
    bench_vm_pass(&mut runs);
    GridReport {
        binary: "parallel_grid".into(),
        jobs: *JOBS.iter().max().expect("nonempty"),
        runs,
        total_wall: t0.elapsed(),
    }
    .write();
}
