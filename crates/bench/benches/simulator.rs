//! Benchmarks of the cache simulator itself: accesses per second for the
//! paper's cache geometries over characteristic reference streams.

use std::hint::black_box;

use cachegc_bench::harness::bench_with_setup;
use cachegc_sim::{Cache, CacheConfig, SetAssocCache, WriteMissPolicy};
use cachegc_workloads::synthetic;

const STREAM_OBJECTS: u32 = 20_000;
/// 20k objects * (3 writes + 4 reads) references.
const STREAM_EVENTS: u64 = STREAM_OBJECTS as u64 * 7;

fn bench_direct_mapped() {
    for (size, block) in [(32 << 10, 16u32), (64 << 10, 64), (4 << 20, 256)] {
        let cfg = CacheConfig::direct_mapped(size, block);
        bench_with_setup(
            &format!("direct_mapped_sweep/{cfg}"),
            Some(STREAM_EVENTS),
            move || Cache::new(cfg),
            |mut cache| {
                synthetic::one_cycle_sweep(&mut cache, STREAM_OBJECTS, 2);
                black_box(cache.stats().fetches());
            },
        );
    }
}

fn bench_write_policies() {
    for policy in [
        WriteMissPolicy::WriteValidate,
        WriteMissPolicy::FetchOnWrite,
    ] {
        bench_with_setup(
            &format!("write_policy/{policy:?}"),
            Some(STREAM_EVENTS),
            move || Cache::new(CacheConfig::direct_mapped(64 << 10, 64).with_write_miss(policy)),
            |mut cache| {
                synthetic::one_cycle_sweep(&mut cache, STREAM_OBJECTS, 2);
                black_box(cache.stats().fetches());
            },
        );
    }
}

fn bench_associative() {
    for ways in [1u32, 2, 4] {
        bench_with_setup(
            &format!("set_associative/{ways}-way"),
            Some(STREAM_EVENTS),
            move || SetAssocCache::new(CacheConfig::direct_mapped(64 << 10, 64).with_assoc(ways)),
            |mut cache| {
                synthetic::one_cycle_sweep(&mut cache, STREAM_OBJECTS, 2);
                black_box(cache.stats().fetches());
            },
        );
    }
}

fn bench_thrash() {
    bench_with_setup(
        "thrash_worst_case/alternating_conflict",
        Some(100_000 * 2),
        || Cache::new(CacheConfig::direct_mapped(64 << 10, 64)),
        |mut cache| {
            synthetic::thrash_pair(&mut cache, 64 << 10, 100_000);
            black_box(cache.stats().fetches());
        },
    );
}

fn bench_fanout_grid() {
    use cachegc_trace::Fanout;
    bench_with_setup(
        "full_grid_fanout/40_caches_one_pass",
        Some(STREAM_EVENTS),
        || {
            let mut caches = Vec::new();
            for size in [
                32 << 10,
                64 << 10,
                128 << 10,
                256 << 10,
                512 << 10,
                1 << 20,
                2 << 20,
                4 << 20,
            ] {
                for block in [16, 32, 64, 128, 256] {
                    caches.push(Cache::new(CacheConfig::direct_mapped(size, block)));
                }
            }
            Fanout::new(caches)
        },
        |mut fan| {
            synthetic::one_cycle_sweep(&mut fan, STREAM_OBJECTS, 2);
            black_box(fan.sinks().len());
        },
    );
}

fn main() {
    bench_direct_mapped();
    bench_write_policies();
    bench_associative();
    bench_thrash();
    bench_fanout_grid();
}
