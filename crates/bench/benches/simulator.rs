//! Criterion benchmarks of the cache simulator itself: accesses per second
//! for the paper's cache geometries over characteristic reference streams.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use cachegc_sim::{Cache, CacheConfig, SetAssocCache, WriteMissPolicy};
use cachegc_workloads::synthetic;

const STREAM_OBJECTS: u32 = 20_000;

fn bench_direct_mapped(c: &mut Criterion) {
    let mut g = c.benchmark_group("direct_mapped_sweep");
    // 20k objects * (3 writes + 4 reads) references.
    g.throughput(Throughput::Elements(STREAM_OBJECTS as u64 * 7));
    for (size, block) in [(32 << 10, 16u32), (64 << 10, 64), (4 << 20, 256)] {
        g.bench_function(format!("{}", CacheConfig::direct_mapped(size, block)), |b| {
            b.iter_batched(
                || Cache::new(CacheConfig::direct_mapped(size, block)),
                |mut cache| {
                    synthetic::one_cycle_sweep(&mut cache, STREAM_OBJECTS, 2);
                    black_box(cache.stats().fetches())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_write_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_policy");
    g.throughput(Throughput::Elements(STREAM_OBJECTS as u64 * 7));
    for policy in [WriteMissPolicy::WriteValidate, WriteMissPolicy::FetchOnWrite] {
        g.bench_function(format!("{policy:?}"), |b| {
            b.iter_batched(
                || Cache::new(CacheConfig::direct_mapped(64 << 10, 64).with_write_miss(policy)),
                |mut cache| {
                    synthetic::one_cycle_sweep(&mut cache, STREAM_OBJECTS, 2);
                    black_box(cache.stats().fetches())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_associative(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_associative");
    g.throughput(Throughput::Elements(STREAM_OBJECTS as u64 * 7));
    for ways in [1u32, 2, 4] {
        g.bench_function(format!("{ways}-way"), |b| {
            b.iter_batched(
                || SetAssocCache::new(CacheConfig::direct_mapped(64 << 10, 64).with_assoc(ways)),
                |mut cache| {
                    synthetic::one_cycle_sweep(&mut cache, STREAM_OBJECTS, 2);
                    black_box(cache.stats().fetches())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_thrash(c: &mut Criterion) {
    let mut g = c.benchmark_group("thrash_worst_case");
    g.throughput(Throughput::Elements(100_000 * 2));
    g.bench_function("alternating_conflict", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::direct_mapped(64 << 10, 64)),
            |mut cache| {
                synthetic::thrash_pair(&mut cache, 64 << 10, 100_000);
                black_box(cache.stats().fetches())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fanout_grid(c: &mut Criterion) {
    use cachegc_trace::Fanout;
    let mut g = c.benchmark_group("full_grid_fanout");
    g.sample_size(10);
    g.throughput(Throughput::Elements(STREAM_OBJECTS as u64 * 7));
    g.bench_function("40_caches_one_pass", |b| {
        b.iter_batched(
            || {
                let mut caches = Vec::new();
                for size in [32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20] {
                    for block in [16, 32, 64, 128, 256] {
                        caches.push(Cache::new(CacheConfig::direct_mapped(size, block)));
                    }
                }
                Fanout::new(caches)
            },
            |mut fan| {
                synthetic::one_cycle_sweep(&mut fan, STREAM_OBJECTS, 2);
                black_box(fan.sinks().len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_direct_mapped,
    bench_write_policies,
    bench_associative,
    bench_thrash,
    bench_fanout_grid
);
criterion_main!(benches);
