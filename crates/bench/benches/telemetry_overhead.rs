//! Telemetry enabled-overhead benchmark: the full `e4_write_policy`
//! sweep at the golden configuration, timed with telemetry off and with
//! telemetry gathered (probe shard attached, counters and phases live,
//! manifest assembled at the end). Each sample gets a fresh
//! [`TraceStore`], so every sample does the same work: record every
//! scenario once, then replay.
//!
//! Unlike the other benches this one interleaves its samples —
//! (baseline, instrumented) pairs, alternating — instead of running one
//! variant to completion first: a sweep sample is ~20 s, so back-to-back
//! blocks would let slow drift on a shared host (other tenants, thermal)
//! masquerade as overhead. Pairing cancels drift; the medians of each
//! column are what [`TelemetryReport`] records.
//!
//! The probes' budget is <2 % enabled overhead (DESIGN.md §6c); the
//! measured fraction lands in `BENCH_telemetry.json`
//! (`cachegc-bench-telemetry-v1`). On a noisy machine the difference can
//! still drown in run-to-run variance — the bench reports what it saw
//! either way and only flags a budget miss, it does not fail.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cachegc_bench::experiments;
use cachegc_bench::golden::{golden_engine, GOLDEN_SCALE};
use cachegc_bench::TelemetryReport;
use cachegc_core::{Manifest, ManifestConfig, Runner, Telemetry, TraceStore};

const SAMPLES: usize = 5;

fn main() {
    let e4 = experiments::find("e4_write_policy").expect("e4 is registered");
    let engine = golden_engine();

    let baseline_once = || {
        let store = TraceStore::unbounded();
        let runner = Runner::new(engine).with_store(&store);
        let start = Instant::now();
        std::hint::black_box((e4.sweep)(GOLDEN_SCALE, &runner));
        start.elapsed()
    };
    let instrumented_once = || {
        let store = TraceStore::unbounded();
        let telemetry = Arc::new(Telemetry::new());
        let start = Instant::now();
        {
            let runner = Runner::new(engine)
                .with_store(&store)
                .with_telemetry(&telemetry);
            let _shard = telemetry.attach();
            std::hint::black_box((e4.sweep)(GOLDEN_SCALE, &runner));
        }
        let manifest = Manifest::gather(
            ManifestConfig {
                experiment: e4.name.to_string(),
                scale: GOLDEN_SCALE,
                jobs: engine.jobs,
                jobs_requested: engine.jobs,
                schedule: engine.schedule.name().to_string(),
                trace_cache: "unbounded".into(),
            },
            &telemetry.snapshot(),
            Some(&store),
        );
        std::hint::black_box(manifest.to_json());
        start.elapsed()
    };

    // Untimed warm-up of each variant, then alternating timed pairs.
    baseline_once();
    instrumented_once();
    let mut baseline = Vec::with_capacity(SAMPLES);
    let mut instrumented = Vec::with_capacity(SAMPLES);
    for i in 0..SAMPLES {
        let b = baseline_once();
        let t = instrumented_once();
        eprintln!(
            "pair {}/{SAMPLES}: baseline {b:.3?}, telemetry {t:.3?} ({:+.2}%)",
            i + 1,
            100.0 * (t.as_secs_f64() / b.as_secs_f64() - 1.0),
        );
        baseline.push(b);
        instrumented.push(t);
    }

    let report = TelemetryReport {
        experiment: e4.name.to_string(),
        scale: GOLDEN_SCALE,
        jobs: engine.jobs,
        samples: SAMPLES,
        baseline: median(&mut baseline),
        telemetry: median(&mut instrumented),
    };
    println!(
        "{:40} median {:>10.3?}  ({} samples)",
        "e4 sweep, telemetry off", report.baseline, report.samples
    );
    println!(
        "{:40} median {:>10.3?}  ({} samples)",
        "e4 sweep, telemetry on + manifest", report.telemetry, report.samples
    );
    let overhead = report.overhead_fraction();
    println!(
        "telemetry enabled overhead: {:+.2}% (budget <2%){}",
        100.0 * overhead,
        if overhead < 0.02 {
            ""
        } else {
            "  ** OVER BUDGET **"
        }
    );
    report.write();
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}
