//! Live-VM trace generation vs recorded-trace replay, per workload.
//!
//! The scenario-keyed trace store only pays off if replaying the compact
//! codec is much faster than re-running the VM. This measures both sides
//! of that trade at golden scale: the live pass is timed once (it *is*
//! the recording pass — the recorder rides the same run), everything
//! else is sampled through the harness, and the encoded bytes/event
//! lands next to the throughputs in `BENCH_replay.json` (schema v2, the
//! prior v1 trajectory carried forward in `baseline_v1`).
//!
//! Four replay variants are measured per workload:
//!
//! * `replay` — scalar decode into one `RefCounter` (the v1 metric).
//! * `decode-scalar` / `decode-batch` — decode-only into a null
//!   consumer, so codec cost is separable from sink cost.
//! * `grid-scalar` / `grid-batch` — end-to-end over the paper's 40-cell
//!   configuration grid: one decode pass driving a `Vec<Cache>` fanout
//!   vs the SoA `GridCache` kernel fed whole `EventBatch`es. Reported
//!   in cell-events/s (trace events × grid cells / wall).
//!
//! Acceptance bars: replay delivers events at least 3× faster than the
//! live VM on at least one workload, and the batch grid kernel delivers
//! at least 2× the v1 single-sink replay throughput in cell-events/s.

use std::hint::black_box;
use std::time::Instant;

use cachegc_bench::harness::bench;
use cachegc_bench::{ReplayReport, ReplayRun};
use cachegc_core::ExperimentConfig;
use cachegc_gc::NoCollector;
use cachegc_sim::{grid_oracle, GridCache};
use cachegc_trace::{Fanout, NullSink, Recorder, RefCounter};
use cachegc_workloads::Workload;

const SCALE: u32 = 1;

fn main() {
    let configs = ExperimentConfig::paper().configs();
    let cells = configs.len();
    // `cargo bench` runs with the package as cwd, so anchor the report at
    // the workspace root unless the env override says otherwise.
    let path = std::env::var("CACHEGC_BENCH_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json").into());
    let baseline_v1 = std::fs::read_to_string(&path)
        .map(|text| ReplayReport::baseline_from(&text))
        .unwrap_or_default();

    let mut runs = Vec::new();
    for w in Workload::ALL {
        // The live side is timed directly, not sampled: one VM pass is
        // seconds long, and it doubles as the recording pass.
        let start = Instant::now();
        let out = w
            .scaled(SCALE)
            .run(NoCollector::new(), (Recorder::new(), RefCounter::new()))
            .expect("workload runs");
        let live_wall = start.elapsed();
        let (recorder, live_counter) = out.sink;
        let trace = recorder.finish().expect("unbounded recorder");
        let events = trace.events();
        assert_eq!(events, live_counter.total(), "recorder saw every event");
        let live_eps = events as f64 / live_wall.as_secs_f64().max(1e-9);
        println!(
            "trace_replay/{}/live: {} events in {:.3}s ({:.1}M ev/s, {:.2} bytes/event)",
            w.name(),
            events,
            live_wall.as_secs_f64(),
            live_eps / 1e6,
            trace.bytes_per_event(),
        );

        let summary = bench(
            &format!("trace_replay/{}/replay", w.name()),
            Some(events),
            || {
                let mut counter = RefCounter::new();
                trace.replay(&mut counter);
                assert_eq!(counter, live_counter);
                black_box(counter.total());
            },
        );
        let replay_eps = events as f64 / summary.median.as_secs_f64().max(1e-9);
        println!(
            "  -> replay speedup vs live VM: {:.2}x",
            replay_eps / live_eps
        );

        // Decode-only: the codec with the sink cost removed.
        let summary = bench(
            &format!("trace_replay/{}/decode-scalar", w.name()),
            Some(events),
            || {
                let mut sink = NullSink;
                trace.replay(&mut sink);
                black_box(&sink);
            },
        );
        let decode_scalar_eps = events as f64 / summary.median.as_secs_f64().max(1e-9);
        let summary = bench(
            &format!("trace_replay/{}/decode-batch", w.name()),
            Some(events),
            || {
                let mut seen = 0u64;
                let stats = trace.replay_batched(|b| seen += b.len() as u64);
                assert_eq!(stats.events(), events);
                assert_eq!(seen, events);
                black_box(seen);
            },
        );
        let decode_batch_eps = events as f64 / summary.median.as_secs_f64().max(1e-9);

        // End-to-end grid: one decode pass driving every cell of the
        // paper's configuration grid. Check the two kernels agree on
        // this trace before timing either.
        let mut oracle = Fanout::new(grid_oracle(&configs));
        trace.replay(&mut oracle);
        let mut grid = GridCache::new(configs.clone());
        trace.replay_batched(|b| grid.consume(b));
        for (cache, (cfg, stats)) in oracle.sinks().iter().zip(grid.into_cells()) {
            assert_eq!(*cache.config(), cfg, "grid preserves config order");
            assert_eq!(*cache.stats(), stats, "grid kernel matches oracle");
        }

        let cell_events = events * cells as u64;
        let summary = bench(
            &format!("trace_replay/{}/grid-scalar", w.name()),
            Some(cell_events),
            || {
                let mut fan = Fanout::new(grid_oracle(&configs));
                trace.replay(&mut fan);
                black_box(fan.sinks().len());
            },
        );
        let grid_scalar_ceps = cell_events as f64 / summary.median.as_secs_f64().max(1e-9);
        let summary = bench(
            &format!("trace_replay/{}/grid-batch", w.name()),
            Some(cell_events),
            || {
                let mut grid = GridCache::new(configs.clone());
                trace.replay_batched(|b| grid.consume(b));
                black_box(grid.events());
            },
        );
        let grid_batch_ceps = cell_events as f64 / summary.median.as_secs_f64().max(1e-9);
        println!(
            "  -> grid batch vs scalar: {:.2}x; vs v1 replay metric: {:.2}x",
            grid_batch_ceps / grid_scalar_ceps,
            grid_batch_ceps / replay_eps,
        );

        runs.push(ReplayRun {
            workload: w.name().to_string(),
            scale: SCALE,
            events,
            trace_bytes: trace.bytes(),
            live_events_per_sec: live_eps,
            replay_events_per_sec: replay_eps,
            decode_scalar_events_per_sec: decode_scalar_eps,
            decode_batch_events_per_sec: decode_batch_eps,
            grid_cells: cells,
            grid_scalar_cell_events_per_sec: grid_scalar_ceps,
            grid_batch_cell_events_per_sec: grid_batch_ceps,
        });
    }
    ReplayReport { runs, baseline_v1 }.write_to(&path);
}
