//! Live-VM trace generation vs recorded-trace replay, per workload.
//!
//! The scenario-keyed trace store only pays off if replaying the compact
//! codec is much faster than re-running the VM. This measures both sides
//! of that trade at golden scale: the live pass is timed once (it *is*
//! the recording pass — the recorder rides the same run), replay is
//! sampled through the harness, and the encoded bytes/event lands next
//! to the throughputs in `BENCH_replay.json`.
//!
//! Acceptance bar: replay delivers events at least 3× faster than the
//! live VM on at least one workload.

use std::hint::black_box;
use std::time::Instant;

use cachegc_bench::harness::bench;
use cachegc_bench::{ReplayReport, ReplayRun};
use cachegc_gc::NoCollector;
use cachegc_trace::{Recorder, RefCounter};
use cachegc_workloads::Workload;

const SCALE: u32 = 1;

fn main() {
    let mut runs = Vec::new();
    for w in Workload::ALL {
        // The live side is timed directly, not sampled: one VM pass is
        // seconds long, and it doubles as the recording pass.
        let start = Instant::now();
        let out = w
            .scaled(SCALE)
            .run(NoCollector::new(), (Recorder::new(), RefCounter::new()))
            .expect("workload runs");
        let live_wall = start.elapsed();
        let (recorder, live_counter) = out.sink;
        let trace = recorder.finish().expect("unbounded recorder");
        let events = trace.events();
        assert_eq!(events, live_counter.total(), "recorder saw every event");
        let live_eps = events as f64 / live_wall.as_secs_f64().max(1e-9);
        println!(
            "trace_replay/{}/live: {} events in {:.3}s ({:.1}M ev/s, {:.2} bytes/event)",
            w.name(),
            events,
            live_wall.as_secs_f64(),
            live_eps / 1e6,
            trace.bytes_per_event(),
        );

        let summary = bench(
            &format!("trace_replay/{}/replay", w.name()),
            Some(events),
            || {
                let mut counter = RefCounter::new();
                trace.replay(&mut counter);
                assert_eq!(counter, live_counter);
                black_box(counter.total());
            },
        );
        let replay_eps = events as f64 / summary.median.as_secs_f64().max(1e-9);
        println!(
            "  -> replay speedup vs live VM: {:.2}x",
            replay_eps / live_eps
        );

        runs.push(ReplayRun {
            workload: w.name().to_string(),
            scale: SCALE,
            events,
            trace_bytes: trace.bytes(),
            live_events_per_sec: live_eps,
            replay_events_per_sec: replay_eps,
        });
    }
    ReplayReport { runs }.write();
}
