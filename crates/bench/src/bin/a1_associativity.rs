//! A1 (ablation) — direct-mapped vs set-associative caches. §4 restricts
//! the study to direct-mapped caches because that is what fast machines
//! ship; this ablation measures how much associativity would change the
//! picture for these workloads.

use cachegc_bench::{header, human_bytes, scale_arg};
use cachegc_core::{CacheConfig, SetAssocCache};
use cachegc_gc::NoCollector;
use cachegc_trace::Fanout;
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(2);
    header(&format!(
        "A1: associativity ablation (64b blocks), scale {scale}"
    ));
    let sizes = [32 << 10, 64 << 10, 256 << 10u32];
    let ways = [1u32, 2, 4];

    println!(
        "{:10} {:>8} {:>6} {:>14} {:>10}",
        "program", "cache", "ways", "fetches", "miss ratio"
    );
    for w in [Workload::Compile, Workload::Nbody] {
        eprintln!("running {} ...", w.name());
        let mut caches = Vec::new();
        for &size in &sizes {
            for &a in &ways {
                caches.push(SetAssocCache::new(
                    CacheConfig::direct_mapped(size, 64).with_assoc(a),
                ));
            }
        }
        let out = w
            .scaled(scale)
            .run(NoCollector::new(), Fanout::new(caches))
            .unwrap();
        for c in out.sink.sinks() {
            println!(
                "{:10} {:>8} {:>6} {:>14} {:>10.4}",
                w.name(),
                human_bytes(c.config().size),
                c.config().assoc,
                c.stats().fetches(),
                c.stats().miss_ratio()
            );
        }
    }
    println!();
    println!("expectation: associativity helps modestly (conflict misses among busy blocks),");
    println!("but linear allocation leaves little for LRU to exploit — supporting the");
    println!("paper's focus on direct-mapped caches.");
}
