//! A1 (ablation) — direct-mapped vs set-associative caches. §4 restricts
//! the study to direct-mapped caches because that is what fast machines
//! ship; this ablation measures how much associativity would change the
//! picture for these workloads.
//!
//! The nine set-associative simulators ride one engine-driven pass per
//! workload (`--jobs`/`--schedule`); the two workloads run concurrently.

use cachegc_bench::{header, ExperimentArgs};
use cachegc_core::report::{Cell, Table};
use cachegc_core::{par_map, run_sinks, CacheConfig, SetAssocCache};
use cachegc_workloads::Workload;

fn main() {
    let args = ExperimentArgs::parse("a1_associativity", "associativity ablation (64b blocks)", 2);
    let scale = args.scale;
    header(&format!(
        "A1: associativity ablation (64b blocks), scale {scale}, jobs {}",
        args.jobs
    ));
    let sizes = [32 << 10, 64 << 10, 256 << 10u32];
    let ways = [1u32, 2, 4];

    let workloads = [Workload::Compile, Workload::Nbody];
    let outer = args.jobs.min(workloads.len());
    let mut inner = args.engine();
    inner.jobs = (args.jobs / outer).max(1);
    let passes = par_map(&workloads, outer, |w| {
        eprintln!("running {} ...", w.name());
        let mut caches = Vec::new();
        for &size in &sizes {
            for &a in &ways {
                caches.push(SetAssocCache::new(
                    CacheConfig::direct_mapped(size, 64).with_assoc(a),
                ));
            }
        }
        let (_, out) = run_sinks(w.scaled(scale), None, caches, &inner).unwrap();
        out
    });

    let mut table = Table::new(
        "assoc",
        &["program", "cache", "ways", "fetches", "miss_ratio"],
    );
    for (w, caches) in workloads.iter().zip(&passes) {
        for c in caches {
            table.row(vec![
                w.name().into(),
                Cell::Bytes(c.config().size.into()),
                c.config().assoc.into(),
                c.stats().fetches().into(),
                Cell::Float(c.stats().miss_ratio(), 4),
            ]);
        }
    }
    print!("{}", table.render());
    println!();
    println!("expectation: associativity helps modestly (conflict misses among busy blocks),");
    println!("but linear allocation leaves little for LRU to exploit — supporting the");
    println!("paper's focus on direct-mapped caches.");
    args.write_csv(&[&table]);
}
