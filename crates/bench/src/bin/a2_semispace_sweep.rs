//! A2 (ablation) — collection frequency: Cheney semispace size vs `O_gc`.
//! §6 argues the collector should run *infrequently*; this sweep makes the
//! trade explicit by shrinking the semispaces.
//!
//! `--jobs N` runs the semispace sizes concurrently (each is an
//! independent control + collected pair on the engine).

use cachegc_bench::{header, human_bytes, ExperimentArgs};
use cachegc_core::report::{Cell, Table};
use cachegc_core::{par_map, CollectorSpec, ExperimentConfig, GcComparison, FAST, SLOW};
use cachegc_workloads::Workload;

fn main() {
    let args = ExperimentArgs::parse(
        "a2_semispace_sweep",
        "Cheney semispace-size sweep (compile workload)",
        4,
    );
    let scale = args.scale;
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    cfg.cache_sizes = vec![64 << 10, 1 << 20];
    header(&format!(
        "A2: Cheney semispace-size sweep, compile workload, scale {scale}, jobs {}",
        args.jobs
    ));

    let semispaces: Vec<u32> = vec![512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20];
    let outer = args.jobs.min(semispaces.len());
    let mut inner = args.engine();
    inner.jobs = (args.jobs / outer).max(1);
    let results = par_map(&semispaces, outer, |&semi| {
        let spec = CollectorSpec::Cheney {
            semispace_bytes: semi,
        };
        eprintln!("running with {} semispaces ...", human_bytes(semi));
        GcComparison::run_engine(Workload::Compile.scaled(scale), &cfg, spec, &inner)
    });

    let mut table = Table::new(
        "semispace",
        &[
            "semispace",
            "collections",
            "copied_bytes",
            "slow_64k",
            "fast_64k",
            "slow_1m",
            "fast_1m",
        ],
    );
    for (&semi, result) in semispaces.iter().zip(&results) {
        let cmp = match result {
            Ok(c) => c,
            Err(e) => {
                println!("{:>10}  failed: {e}", human_bytes(semi));
                continue;
            }
        };
        table.row(vec![
            Cell::Bytes(semi.into()),
            cmp.collected.gc.collections.into(),
            cmp.collected.gc.bytes_copied.into(),
            Cell::Pct(cmp.gc_overhead(64 << 10, 64, &SLOW)),
            Cell::Pct(cmp.gc_overhead(64 << 10, 64, &FAST)),
            Cell::Pct(cmp.gc_overhead(1 << 20, 64, &SLOW)),
            Cell::Pct(cmp.gc_overhead(1 << 20, 64, &FAST)),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("expectation: larger semispaces => fewer collections => lower O_gc,");
    println!("approaching the no-collection control; §6's 'collect rarely' advice.");
    args.write_csv(&[&table]);
}
