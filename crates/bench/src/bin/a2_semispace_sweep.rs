//! A2 (ablation) — collection frequency: Cheney semispace size vs `O_gc`.
//! §6 argues the collector should run *infrequently*; this sweep makes the
//! trade explicit by shrinking the semispaces.

use cachegc_bench::{header, human_bytes, scale_arg};
use cachegc_core::{CollectorSpec, ExperimentConfig, GcComparison, FAST, SLOW};
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(4);
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    cfg.cache_sizes = vec![64 << 10, 1 << 20];
    header(&format!(
        "A2: Cheney semispace-size sweep, compile workload, scale {scale}"
    ));

    println!(
        "{:>10} {:>6} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "semispace", "GCs", "copied (b)", "64k slow", "64k fast", "1m slow", "1m fast"
    );
    for semi in [512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20] {
        let spec = CollectorSpec::Cheney {
            semispace_bytes: semi,
        };
        eprintln!("running with {} semispaces ...", human_bytes(semi));
        let cmp = match GcComparison::run(Workload::Compile.scaled(scale), &cfg, spec) {
            Ok(c) => c,
            Err(e) => {
                println!("{:>10}  failed: {e}", human_bytes(semi));
                continue;
            }
        };
        println!(
            "{:>10} {:>6} {:>14} {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}%",
            human_bytes(semi),
            cmp.collected.gc.collections,
            cmp.collected.gc.bytes_copied,
            100.0 * cmp.gc_overhead(64 << 10, 64, &SLOW),
            100.0 * cmp.gc_overhead(64 << 10, 64, &FAST),
            100.0 * cmp.gc_overhead(1 << 20, 64, &SLOW),
            100.0 * cmp.gc_overhead(1 << 20, 64, &FAST),
        );
    }
    println!();
    println!("expectation: larger semispaces => fewer collections => lower O_gc,");
    println!("approaching the no-collection control; §6's 'collect rarely' advice.");
}
