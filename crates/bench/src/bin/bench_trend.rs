//! Trajectory guard for the checked-in `BENCH_*.json` records: assert
//! their schemas and report latest-vs-previous throughput deltas.
//!
//! Exit status: 0 all present files valid, 1 schema/parse violation,
//! 2 usage.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cachegc_bench::trend::{trend, BenchKind};

const USAGE: &str = "\
bench_trend: validate BENCH_grid/replay/telemetry.json and report deltas

usage: bench_trend [--dir PATH] [--baseline PATH] [FILE ...]

  --dir PATH       where the current trajectory files live (default .)
  --baseline PATH  directory holding the previous revision of the same
                   files (CI extracts them from the parent commit);
                   rows are reported without deltas when absent
  FILE ...         check only these files (default: all three)

Each present file must declare its exact schema
(cachegc-bench-grid-v1, cachegc-bench-replay-v2,
cachegc-bench-telemetry-v1); a missing file is skipped with a note so
the guard works before a bench has ever run. Deltas are reported, never
gated: review judges them, not a threshold.";

struct Opts {
    dir: PathBuf,
    baseline: Option<PathBuf>,
    files: Vec<String>,
}

fn parse_opts(argv: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        dir: PathBuf::from("."),
        baseline: None,
        files: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown argument: {other}")),
            file => opts.files.push(file.to_string()),
        }
    }
    for f in &opts.files {
        if BenchKind::of(f).is_none() {
            return Err(format!(
                "unknown trajectory file '{f}' (known: {})",
                BenchKind::ALL.map(|(_, n)| n).join(", ")
            ));
        }
    }
    if opts.files.is_empty() {
        opts.files = BenchKind::ALL.iter().map(|(_, n)| n.to_string()).collect();
    }
    Ok(opts)
}

fn read_opt(path: &Path) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&argv) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("bench_trend: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut invalid = 0usize;
    let mut checked = 0usize;
    for name in &opts.files {
        let kind = BenchKind::of(name).expect("validated in parse_opts");
        let Some(text) = read_opt(&opts.dir.join(name)) else {
            println!("{name}: absent, skipped");
            continue;
        };
        let prev = opts
            .baseline
            .as_ref()
            .and_then(|dir| read_opt(&dir.join(name)));
        checked += 1;
        match trend(kind, &text, prev.as_deref()) {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
            }
            Err(msg) => {
                invalid += 1;
                println!("INVALID {name}: {msg}");
            }
        }
    }
    if invalid == 0 {
        println!("ok: {checked} trajectory files valid");
        ExitCode::SUCCESS
    } else {
        println!("{invalid} of {checked} trajectory files invalid");
        ExitCode::from(1)
    }
}
