//! E10 — the §7 block-behavior census:
//!
//! * multi-cycle dynamic blocks: ≥90 % active in ≤4 allocation cycles;
//! * most dynamic blocks referenced 32–63 times (64-byte blocks);
//! * 59–155 busy static blocks (<0.02 % of active blocks) taking ~75 % of
//!   all references, including the stack and the runtime's hot vector.

use cachegc_analysis::BlockTracker;
use cachegc_bench::{header, scale_arg};
use cachegc_gc::NoCollector;
use cachegc_trace::Region;
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(2);
    header(&format!(
        "E10: block behavior census, 64k cache / 64b blocks (§7), scale {scale}"
    ));
    println!(
        "{:10} {:>10} {:>12} {:>12} {:>11} {:>11} {:>12}",
        "program", "med refs", "mc<=4cyc", "busy blocks", "busy stack", "busy stat", "busy refs"
    );
    for w in Workload::ALL {
        eprintln!("running {} ...", w.name());
        let tracker = BlockTracker::new(64 << 10, 64);
        let out = w.scaled(scale).run(NoCollector::new(), tracker).unwrap();
        let r = out.sink.finish();
        let busy_stack = r.busy.iter().filter(|b| b.region == Region::Stack).count();
        let busy_static = r.busy.iter().filter(|b| b.region == Region::Static).count();
        println!(
            "{:10} {:>10} {:>11.1}% {:>12} {:>11} {:>11} {:>11.1}%",
            w.name(),
            r.median_dynamic_refs(),
            100.0 * r.multi_cycle_active_le(4),
            r.busy.len(),
            busy_stack,
            busy_static,
            100.0 * r.busy_refs_fraction(),
        );
    }
    println!();
    println!("paper shape: >=90% of multi-cycle blocks active in <=4 cycles; dynamic blocks");
    println!("mostly referenced 32-63 times; 59-155 busy (mostly static/stack) blocks take ~75% of refs.");
}
