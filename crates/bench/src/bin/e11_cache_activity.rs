//! E11 — the §7 cache-activity graphs: cache blocks in ascending
//! reference-count order, each with its local miss ratio, plus the
//! cumulative miss / reference / miss-ratio curves. Four panels as in the
//! paper: compile at 64 KB, prove at 64 KB (the thrash-prone program),
//! rewrite at 64 KB (misses spread wide), and compile at 128 KB (the
//! larger cache tightens everything).

use cachegc_analysis::activity;
use cachegc_bench::{header, human_bytes, scale_arg};
use cachegc_core::{Cache, CacheConfig};
use cachegc_gc::NoCollector;
use cachegc_workloads::Workload;

fn panel(w: Workload, scale: u32, cache_bytes: u32) {
    let cfg = CacheConfig::direct_mapped(cache_bytes, 64);
    eprintln!("running {} at {} ...", w.name(), human_bytes(cache_bytes));
    let out = w
        .scaled(scale)
        .run(NoCollector::new(), Cache::new(cfg))
        .unwrap();
    let act = activity(out.sink.stats());
    println!(
        "\n{} @ {} / 64b: global miss ratio (excl. alloc) {:.4}, max cum jump {:.4}",
        w.name(),
        human_bytes(cache_bytes),
        act.global_miss_ratio,
        act.max_cum_jump()
    );
    println!(
        "  most-referenced decile: {} worst-case (local ratio > 0.25), {} best-case (< 0.01)",
        act.worst_case_blocks(0.25),
        act.best_case_blocks(0.01)
    );
    // Sample the cumulative curves at deciles of the block ordering.
    println!(
        "  {:>6} {:>12} {:>10} {:>10} {:>10}",
        "pct", "refs", "cum refs", "cum miss", "cum ratio"
    );
    let n = act.entries.len();
    for decile in [50, 80, 90, 95, 99, 100] {
        let i = (n * decile / 100).saturating_sub(1);
        let e = &act.entries[i];
        println!(
            "  {:>5}% {:>12} {:>9.1}% {:>9.1}% {:>10.4}",
            decile,
            e.refs,
            100.0 * e.cum_ref_fraction,
            100.0 * e.cum_miss_fraction,
            e.cum_miss_ratio
        );
    }
}

fn main() {
    let scale = scale_arg(2);
    header(&format!(
        "E11: cache-activity decomposition (§7 figures), scale {scale}"
    ));
    panel(Workload::Compile, scale, 64 << 10);
    panel(Workload::Prove, scale, 64 << 10);
    panel(Workload::Rewrite, scale, 64 << 10);
    panel(Workload::Compile, scale, 128 << 10);
    println!();
    println!("paper shape: most refs and misses concentrate in the most-referenced blocks;");
    println!("best-case blocks pull the final cumulative miss ratio down (orbit: 0.027->0.017);");
    println!("thrashing appears as a jump in the cumulative curve; 128k beats 64k everywhere.");
}
