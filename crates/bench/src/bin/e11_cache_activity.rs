//! E11 — the §7 cache-activity graphs: cache blocks in ascending
//! reference-count order, each with its local miss ratio, plus the
//! cumulative miss / reference / miss-ratio curves. Four panels as in the
//! paper: compile at 64 KB, prove at 64 KB (the thrash-prone program),
//! rewrite at 64 KB (misses spread wide), and compile at 128 KB (the
//! larger cache tightens everything).
//!
//! Both compile panels ride *one* trace pass as a heterogeneous
//! [`Instrument`] set; `--jobs`/`--schedule` drive the engine and the
//! three workloads run concurrently.

use cachegc_analysis::{Activity, ActivityTracker, Instrument};
use cachegc_bench::{header, human_bytes, ExperimentArgs};
use cachegc_core::report::{Cell, Table};
use cachegc_core::{par_map, run_instruments, CacheConfig};
use cachegc_workloads::Workload;

/// One workload's panels: the cache sizes it is decomposed at.
const GROUPS: [(Workload, &[u32]); 3] = [
    (Workload::Compile, &[64 << 10, 128 << 10]),
    (Workload::Prove, &[64 << 10]),
    (Workload::Rewrite, &[64 << 10]),
];

fn panel(w: Workload, cache_bytes: u32, act: &Activity, summary: &mut Table, deciles: &mut Table) {
    let name = format!("{}@{}", w.name(), human_bytes(cache_bytes));
    println!(
        "\n{} / 64b: global miss ratio (excl. alloc) {:.4}, max cum jump {:.4}",
        name,
        act.global_miss_ratio,
        act.max_cum_jump()
    );
    println!(
        "  most-referenced decile: {} worst-case (local ratio > 0.25), {} best-case (< 0.01)",
        act.worst_case_blocks(0.25),
        act.best_case_blocks(0.01)
    );
    summary.row(vec![
        Cell::text(name.clone()),
        Cell::Float(act.global_miss_ratio, 4),
        Cell::Float(act.max_cum_jump(), 4),
        act.worst_case_blocks(0.25).into(),
        act.best_case_blocks(0.01).into(),
    ]);
    // Sample the cumulative curves at deciles of the block ordering.
    println!(
        "  {:>6} {:>12} {:>10} {:>10} {:>10}",
        "pct", "refs", "cum refs", "cum miss", "cum ratio"
    );
    let n = act.entries.len();
    for decile in [50, 80, 90, 95, 99, 100] {
        let i = (n * decile / 100).saturating_sub(1);
        let e = &act.entries[i];
        println!(
            "  {:>5}% {:>12} {:>9.1}% {:>9.1}% {:>10.4}",
            decile,
            e.refs,
            100.0 * e.cum_ref_fraction,
            100.0 * e.cum_miss_fraction,
            e.cum_miss_ratio
        );
        deciles.row(vec![
            Cell::text(name.clone()),
            decile.into(),
            e.refs.into(),
            Cell::Pct(e.cum_ref_fraction),
            Cell::Pct(e.cum_miss_fraction),
            Cell::Float(e.cum_miss_ratio, 4),
        ]);
    }
}

fn main() {
    let args = ExperimentArgs::parse(
        "e11_cache_activity",
        "the §7 cache-activity decomposition (four panels)",
        2,
    );
    let scale = args.scale;
    header(&format!(
        "E11: cache-activity decomposition (§7 figures), scale {scale}, jobs {}",
        args.jobs
    ));
    let outer = args.jobs.min(GROUPS.len());
    let mut inner = args.engine();
    inner.jobs = (args.jobs / outer).max(1);
    let activities: Vec<Vec<Activity>> = par_map(&GROUPS, outer, |&(w, sizes)| {
        eprintln!(
            "running {} ({} panels in one pass) ...",
            w.name(),
            sizes.len()
        );
        let instruments: Vec<Instrument> = sizes
            .iter()
            .map(|&s| ActivityTracker::new(CacheConfig::direct_mapped(s, 64)).into())
            .collect();
        let (_, out) = run_instruments(w.scaled(scale), None, instruments, &inner).unwrap();
        out.into_iter()
            .map(|i| i.into_activity().expect("activity instrument"))
            .collect()
    });

    let mut summary = Table::new(
        "activity",
        &[
            "panel",
            "global_miss_ratio",
            "max_cum_jump",
            "worst_case",
            "best_case",
        ],
    );
    let mut deciles = Table::new(
        "deciles",
        &["panel", "pct", "refs", "cum_refs", "cum_miss", "cum_ratio"],
    );
    for (&(w, sizes), acts) in GROUPS.iter().zip(&activities) {
        for (&size, act) in sizes.iter().zip(acts) {
            panel(w, size, act, &mut summary, &mut deciles);
        }
    }
    println!();
    print!("{}", summary.render());
    println!();
    println!("paper shape: most refs and misses concentrate in the most-referenced blocks;");
    println!("best-case blocks pull the final cumulative miss ratio down (orbit: 0.027->0.017);");
    println!("thrashing appears as a jump in the cumulative curve; 128k beats 64k everywhere.");
    args.write_csv(&[&summary, &deciles]);
}
