//! E12 — the §5 write-overhead check: the cost of writing dirty blocks
//! back to memory in a write-back cache, as a fraction of idealized run
//! time. The paper's preliminary measurements: slow processor almost
//! always < 1 %, fast processor < 3 % for caches of 1 MB or more.

use cachegc_bench::{header, human_bytes, scale_arg};
use cachegc_core::{
    run_control, write_back_overhead, writeback_cycles, ExperimentConfig, FAST, SLOW,
};
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(4);
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    header(&format!(
        "E12: write-back write overheads (§5), 64b blocks, scale {scale}"
    ));

    print!("{:10} {:>6}", "program", "cpu");
    for &size in &cfg.cache_sizes {
        print!("{:>9}", human_bytes(size));
    }
    println!();
    for w in Workload::ALL {
        eprintln!("running {} ...", w.name());
        let r = run_control(w.scaled(scale), &cfg).unwrap();
        for cpu in [&SLOW, &FAST] {
            let wb = writeback_cycles(&r.memory, cpu, 64);
            print!("{:10} {:>6}", w.name(), cpu.name);
            for &size in &cfg.cache_sizes {
                let cell = r.cell(size, 64).unwrap();
                let o = write_back_overhead(cell.stats.writebacks(), wb, r.i_prog);
                print!("{:>8.2}%", 100.0 * o);
            }
            println!();
        }
    }
    println!();
    println!("paper shape: slow <1% almost always; fast <3% for caches >=1m.");
}
