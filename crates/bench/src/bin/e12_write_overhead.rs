//! E12 — the §5 write-overhead check: the cost of writing dirty blocks
//! back to memory in a write-back cache, as a fraction of idealized run
//! time. The paper's preliminary measurements: slow processor almost
//! always < 1 %, fast processor < 3 % for caches of 1 MB or more.
//!
//! `--jobs N` runs the five programs concurrently and shards each grid
//! across worker threads.

use cachegc_bench::{header, human_bytes, ExperimentArgs};
use cachegc_core::report::{Cell, Table};
use cachegc_core::{
    par_map, run_control_engine, write_back_overhead, writeback_cycles, ExperimentConfig, FAST,
    SLOW,
};
use cachegc_workloads::Workload;

fn main() {
    let args = ExperimentArgs::parse(
        "e12_write_overhead",
        "write-back write overheads (§5), 64b blocks",
        4,
    );
    let scale = args.scale;
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    header(&format!(
        "E12: write-back write overheads (§5), 64b blocks, scale {scale}, jobs {}",
        args.jobs
    ));

    let outer = args.jobs.min(Workload::ALL.len());
    let mut inner = args.engine();
    inner.jobs = (args.jobs / outer).max(1);
    let reports = par_map(&Workload::ALL, outer, |w| {
        eprintln!("running {} ...", w.name());
        run_control_engine(w.scaled(scale), &cfg, &inner).unwrap()
    });

    let mut cols = vec!["program".to_string(), "cpu".to_string()];
    cols.extend(cfg.cache_sizes.iter().map(|&s| human_bytes(s)));
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = Table::new("writeback", &cols);
    for (w, r) in Workload::ALL.iter().zip(&reports) {
        for cpu in [&SLOW, &FAST] {
            let wb = writeback_cycles(&r.memory, cpu, 64);
            let mut row = vec![Cell::text(w.name()), Cell::text(cpu.name)];
            row.extend(cfg.cache_sizes.iter().map(|&size| {
                let cell = r.cell(size, 64).unwrap();
                Cell::Pct(write_back_overhead(cell.stats.writebacks(), wb, r.i_prog))
            }));
            table.row(row);
        }
    }
    print!("{}", table.render());
    println!();
    println!("paper shape: slow <1% almost always; fast <3% for caches >=1m.");
    args.write_csv(&[&table]);
}
