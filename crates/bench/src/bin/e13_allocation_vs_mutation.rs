//! E13 — the §8 conjecture: *allocation can be faster than mutation*.
//!
//! The paper closes by conjecturing that a mostly-functional program that
//! "rides the allocation wave" — loading from just-allocated data in front
//! of the crest and storing fresh results just behind it — can out-perform
//! an imperative program whose objects are updated in place, because the
//! functional program's references are concentrated where the cache is
//! already warm, while the imperative program's locality is a matter of
//! chance.
//!
//! We measure the same computation on the *same data structure*: a
//! 4,096-pair list transformed over many generations — functional:
//! rebuild the list each generation (pure allocation, the old generation
//! becomes garbage); imperative: `set-car!` every pair of one long-lived
//! list in place. Both walk 48 KB of pairs per generation; the functional
//! version also allocates 48 KB per generation, which write-validate
//! makes free at the cache level.

use cachegc_bench::{header, human_bytes, scale_arg};
use cachegc_core::{run_control, ExperimentConfig, FAST, SLOW};
use cachegc_gc::NoCollector;
use cachegc_trace::RefCounter;
use cachegc_vm::Machine;

fn functional(gens: u32) -> String {
    format!(
        "
(define (build n)
  (let loop ((i 0) (acc '()))
    (if (= i n) acc (loop (+ i 1) (cons i acc)))))
(define (evolve l)
  (if (null? l) '() (cons (+ (car l) 1) (evolve (cdr l)))))
(let loop ((g 0) (l (build 4096)) (sum 0))
  (if (= g {gens})
      sum
      (loop (+ g 1) (evolve l) (+ sum (car l)))))
"
    )
}

fn imperative(gens: u32) -> String {
    format!(
        "
(define (build n)
  (let loop ((i 0) (acc '()))
    (if (= i n) acc (loop (+ i 1) (cons i acc)))))
(define l (build 4096))
(define (evolve! l)
  (if (null? l) 'done
      (begin (set-car! l (+ (car l) 1)) (evolve! (cdr l)))))
(let loop ((g 0) (sum 0))
  (if (= g {gens})
      sum
      (begin (evolve! l) (loop (+ g 1) (+ sum (car l))))))
"
    )
}

fn measure(name: &str, src: &str, cfg: &ExperimentConfig) {
    // Instruction/ref volume first.
    let mut m = Machine::new(NoCollector::new(), RefCounter::new());
    m.run_program(src).expect("runs");
    let refs = m.sink().total();
    let i_prog = m.counters().program();

    // Then the cache grid via the standard control machinery, by wrapping
    // the source as a one-off "workload".
    let mut caches = cachegc_trace::Fanout::new(
        cfg.configs()
            .into_iter()
            .map(cachegc_core::Cache::new)
            .collect::<Vec<_>>(),
    );
    let mut m = Machine::new(NoCollector::new(), &mut caches);
    m.run_program(src).expect("runs");
    drop(m);

    println!("\n{name}: {refs} refs, {i_prog} instructions");
    print!("{:>6}", "cpu");
    for &size in &cfg.cache_sizes {
        print!("{:>9}", human_bytes(size));
    }
    println!();
    for cpu in [&SLOW, &FAST] {
        print!("{:>6}", cpu.name);
        for (cache, _) in caches.sinks().iter().zip(&cfg.cache_sizes) {
            let p = cachegc_core::miss_penalty_cycles(&cfg.memory, cpu, cache.config().block);
            let o = (cache.stats().fetches() * p) as f64 / i_prog as f64;
            print!("{:>8.2}%", 100.0 * o);
        }
        println!();
    }
}

fn main() {
    let scale = scale_arg(4);
    let gens = 150 * scale;
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    cfg.cache_sizes = vec![32 << 10, 64 << 10, 256 << 10, 1 << 20];
    header(&format!(
        "E13: allocation vs mutation (§8 conjecture 3), scale {scale}"
    ));

    measure(
        "functional (rides the allocation wave)",
        &functional(gens),
        &cfg,
    );
    measure(
        "imperative (set-car! on one long-lived list)",
        &imperative(gens),
        &cfg,
    );

    println!();
    println!("reading: the functional version's working set is twice the imperative");
    println!("version's (old + new generation vs one list), so mutation wins while the");
    println!("list fits in cache and the two tie once neither does extra work — i.e.,");
    println!("the conjecture holds only where the imperative program's locality is poor;");
    println!("against a compact, reused imperative structure, allocation is not faster.");
    let _ = run_control; // (see e3 for the standard workloads)
}
