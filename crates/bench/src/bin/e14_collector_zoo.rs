//! Thin CLI shim: the sweep itself lives in
//! `cachegc_bench::experiments::e14`, so the golden-results harness can
//! call it and capture its tables without spawning this binary.

use cachegc_bench::experiments;

fn main() {
    experiments::run_main(experiments::find("e14_collector_zoo").expect("registered experiment"));
}
