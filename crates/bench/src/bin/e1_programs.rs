//! E1 — the §3 test-program table: lines, bytes allocated, instructions
//! executed, and data references for each program, run without collection.
//!
//! The five programs are independent trace passes, so `--jobs N` runs up
//! to N of them concurrently (`--jobs 1` is the sequential oracle).

use std::time::Instant;

use cachegc_bench::{commas, header, jobs_arg, scale_arg, GridReport, GridRun};
use cachegc_core::par_map;
use cachegc_gc::NoCollector;
use cachegc_trace::RefCounter;
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(4);
    let jobs = jobs_arg();
    header(&format!(
        "E1: test programs (§3 table), scale {scale}, jobs {jobs}"
    ));
    let t0 = Instant::now();
    let outs = par_map(&Workload::ALL, jobs, |w| {
        let t = Instant::now();
        let out = w
            .scaled(scale)
            .run(NoCollector::new(), RefCounter::new())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        (out, t.elapsed())
    });
    let total_wall = t0.elapsed();

    println!(
        "{:10} {:>7} {:>12} {:>16} {:>16} {:>8}",
        "program", "lines", "alloc (b)", "insns", "refs", "refs/ins"
    );
    let mut runs = Vec::new();
    for (w, (out, wall)) in Workload::ALL.iter().zip(&outs) {
        let insns = out.stats.instructions.program();
        let refs = out.sink.total();
        println!(
            "{:10} {:>7} {:>12} {:>16} {:>16} {:>8.3}",
            format!("{} ({})", w.name(), w.paper_analog()),
            w.lines(),
            commas(out.stats.allocated_bytes),
            commas(insns),
            commas(refs),
            refs as f64 / insns as f64,
        );
        runs.push(GridRun {
            workload: w.name().into(),
            scale,
            events: refs,
            cells: 1,
            wall: *wall,
        });
    }
    println!();
    println!("paper: orbit 15k lines/263mb, imps 42k/1.8gb, lp 2.5k/216mb,");
    println!("       nbody .6k/747mb, gambit 15k/527mb; refs/insns ≈ 0.26-0.29");

    GridReport {
        binary: "e1_programs".into(),
        jobs,
        runs,
        total_wall,
    }
    .write();
}
