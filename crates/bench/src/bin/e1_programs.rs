//! E1 — the §3 test-program table: lines, bytes allocated, instructions
//! executed, and data references for each program, run without collection.
//!
//! The five programs are independent trace passes, so `--jobs N` runs up
//! to N of them concurrently (`--jobs 1` is the sequential oracle).

use std::time::Instant;

use cachegc_bench::{header, ExperimentArgs, GridReport, GridRun};
use cachegc_core::par_map;
use cachegc_core::report::{Cell, Table};
use cachegc_gc::NoCollector;
use cachegc_trace::RefCounter;
use cachegc_workloads::Workload;

fn main() {
    let args = ExperimentArgs::parse("e1_programs", "the §3 test-program table", 4);
    let (scale, jobs) = (args.scale, args.jobs);
    header(&format!(
        "E1: test programs (§3 table), scale {scale}, jobs {jobs}"
    ));
    let t0 = Instant::now();
    let outs = par_map(&Workload::ALL, jobs, |w| {
        let t = Instant::now();
        let out = w
            .scaled(scale)
            .run(NoCollector::new(), RefCounter::new())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        (out, t.elapsed())
    });
    let total_wall = t0.elapsed();

    let mut table = Table::new(
        "programs",
        &[
            "program",
            "analog",
            "lines",
            "alloc_bytes",
            "insns",
            "refs",
            "refs_per_insn",
        ],
    );
    let mut runs = Vec::new();
    for (w, (out, wall)) in Workload::ALL.iter().zip(&outs) {
        let insns = out.stats.instructions.program();
        let refs = out.sink.total();
        table.row(vec![
            w.name().into(),
            w.paper_analog().into(),
            w.lines().into(),
            out.stats.allocated_bytes.into(),
            insns.into(),
            refs.into(),
            Cell::Float(refs as f64 / insns as f64, 3),
        ]);
        runs.push(GridRun {
            workload: w.name().into(),
            scale,
            events: refs,
            cells: 1,
            wall: *wall,
        });
    }
    print!("{}", table.render());
    println!();
    println!("paper: orbit 15k lines/263mb, imps 42k/1.8gb, lp 2.5k/216mb,");
    println!("       nbody .6k/747mb, gambit 15k/527mb; refs/insns ≈ 0.26-0.29");
    args.write_csv(&[&table]);

    GridReport {
        binary: "e1_programs".into(),
        jobs,
        runs,
        total_wall,
    }
    .write();
}
