//! E1 — the §3 test-program table: lines, bytes allocated, instructions
//! executed, and data references for each program, run without collection.

use cachegc_bench::{commas, header, scale_arg};
use cachegc_gc::NoCollector;
use cachegc_trace::RefCounter;
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(4);
    header(&format!("E1: test programs (§3 table), scale {scale}"));
    println!(
        "{:10} {:>7} {:>12} {:>16} {:>16} {:>8}",
        "program", "lines", "alloc (b)", "insns", "refs", "refs/ins"
    );
    for w in Workload::ALL {
        let out = w
            .scaled(scale)
            .run(NoCollector::new(), RefCounter::new())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let insns = out.stats.instructions.program();
        let refs = out.sink.total();
        println!(
            "{:10} {:>7} {:>12} {:>16} {:>16} {:>8.3}",
            format!("{} ({})", w.name(), w.paper_analog()),
            w.lines(),
            commas(out.stats.allocated_bytes),
            commas(insns),
            commas(refs),
            refs as f64 / insns as f64,
        );
    }
    println!();
    println!("paper: orbit 15k lines/263mb, imps 42k/1.8gb, lp 2.5k/216mb,");
    println!("       nbody .6k/747mb, gambit 15k/527mb; refs/insns ≈ 0.26-0.29");
}
