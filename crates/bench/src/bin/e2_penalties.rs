//! E2 — the §5 miss-penalty table: cycles to service a miss for each block
//! size on the slow (30 ns) and fast (2 ns) processors, with the
//! Przybylski memory model.

use cachegc_bench::header;
use cachegc_core::{miss_penalty_cycles, writeback_cycles, MainMemory, FAST, SLOW};

fn main() {
    header("E2: miss penalties (§5 table)");
    let mem = MainMemory::przybylski();
    print!("{:22}", "Block size (bytes)");
    for b in [16u32, 32, 64, 128, 256] {
        print!("{b:>8}");
    }
    println!();
    for cpu in [&SLOW, &FAST] {
        print!("{:22}", format!("{} penalty (cycles)", cpu.name));
        for b in [16u32, 32, 64, 128, 256] {
            print!("{:>8}", miss_penalty_cycles(&mem, cpu, b));
        }
        println!();
    }
    for cpu in [&SLOW, &FAST] {
        print!("{:22}", format!("{} writeback", cpu.name));
        for b in [16u32, 32, 64, 128, 256] {
            print!("{:>8}", writeback_cycles(&mem, cpu, b));
        }
        println!();
    }
    println!();
    println!("paper (derived from its memory model): slow 8/9/11/15/23, fast 120/135/165/225/345");
}
