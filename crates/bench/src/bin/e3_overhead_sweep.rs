//! E3 — the §5 control-experiment figure: average cache overhead across
//! the five programs, with no garbage collection, for every cache size
//! (32 KB – 4 MB) and block size (16 – 256 B), on both processors.
//!
//! Expected shape (paper): larger caches and smaller blocks always win;
//! slow processor < 5 % even at 32 KB/16 B; fast processor needs ~1 MB
//! for a similar overhead.

use cachegc_bench::{header, human_bytes, scale_arg};
use cachegc_core::{run_control, ExperimentConfig, FAST, SLOW};
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(4);
    let cfg = ExperimentConfig::paper();
    header(&format!("E3: average cache overhead, no GC (§5 figure), scale {scale}"));

    let reports: Vec<_> = Workload::ALL
        .iter()
        .map(|w| {
            eprintln!("running {} ...", w.name());
            run_control(w.scaled(scale), &cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name()))
        })
        .collect();

    for cpu in [&SLOW, &FAST] {
        println!("\n{} processor ({} ns cycle): O_cache averaged over programs", cpu.name, cpu.cycle_ns);
        print!("{:>8}", "block");
        for &size in &cfg.cache_sizes {
            print!("{:>9}", human_bytes(size));
        }
        println!();
        for &block in &cfg.block_sizes {
            print!("{:>7}b", block);
            for &size in &cfg.cache_sizes {
                let avg: f64 = reports
                    .iter()
                    .map(|r| {
                        let cell = r.cell(size, block).expect("simulated");
                        r.cache_overhead(cell, cpu)
                    })
                    .sum::<f64>()
                    / reports.len() as f64;
                print!("{:>8.2}%", 100.0 * avg);
            }
            println!();
        }
    }
    println!();
    println!("paper shape: monotone improvement with cache size; smaller blocks better;");
    println!("slow/32k/16b < 5%; fast needs ~1m for < 5%.");
}
