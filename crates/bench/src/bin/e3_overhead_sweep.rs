//! E3 — the §5 control-experiment figure: average cache overhead across
//! the five programs, with no garbage collection, for every cache size
//! (32 KB – 4 MB) and block size (16 – 256 B), on both processors.
//!
//! Expected shape (paper): larger caches and smaller blocks always win;
//! slow processor < 5 % even at 32 KB/16 B; fast processor needs ~1 MB
//! for a similar overhead.
//!
//! `--jobs N` splits the work two ways: the five programs run
//! concurrently, and within each pass the 40-cell cache grid is sharded
//! across worker threads (`ParallelFanout`, under `--schedule`). `--jobs
//! 1` is the sequential oracle; per-cell statistics are bit-identical
//! either way.

use std::time::Instant;

use cachegc_bench::{header, human_bytes, ExperimentArgs, GridReport, GridRun};
use cachegc_core::report::{Cell, Table};
use cachegc_core::{par_map, run_control_engine, ExperimentConfig, Processor, FAST, SLOW};
use cachegc_workloads::Workload;

fn cpu_table(cpu: &Processor, cfg: &ExperimentConfig, f: impl Fn(u32, u32) -> f64) -> Table {
    let mut cols = vec!["block".to_string()];
    cols.extend(cfg.cache_sizes.iter().map(|&s| human_bytes(s)));
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = Table::new(cpu.name, &cols);
    for &block in &cfg.block_sizes {
        let mut row = vec![Cell::text(format!("{block}b"))];
        row.extend(
            cfg.cache_sizes
                .iter()
                .map(|&size| Cell::Pct(f(size, block))),
        );
        table.row(row);
    }
    table
}

fn main() {
    let args = ExperimentArgs::parse(
        "e3_overhead_sweep",
        "average cache overhead without GC (§5 figure)",
        4,
    );
    let (scale, jobs) = (args.scale, args.jobs);
    let cfg = ExperimentConfig::paper();
    header(&format!(
        "E3: average cache overhead, no GC (§5 figure), scale {scale}, jobs {jobs}"
    ));

    // Outer parallelism over programs, inner over grid cells.
    let outer = jobs.min(Workload::ALL.len());
    let mut inner = args.engine();
    inner.jobs = (jobs / outer).max(1);
    let t0 = Instant::now();
    let timed: Vec<_> = par_map(&Workload::ALL, outer, |w| {
        eprintln!("running {} ...", w.name());
        let t = Instant::now();
        let r = run_control_engine(w.scaled(scale), &cfg, &inner)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        (r, t.elapsed())
    });
    let total_wall = t0.elapsed();
    let reports: Vec<_> = timed.iter().map(|(r, _)| r).collect();

    let mut tables = Vec::new();
    for cpu in [&SLOW, &FAST] {
        println!(
            "\n{} processor ({} ns cycle): O_cache averaged over programs",
            cpu.name, cpu.cycle_ns
        );
        let table = cpu_table(cpu, &cfg, |size, block| {
            reports
                .iter()
                .map(|r| {
                    let cell = r.cell(size, block).expect("simulated");
                    r.cache_overhead(cell, cpu)
                })
                .sum::<f64>()
                / reports.len() as f64
        });
        print!("{}", table.render());
        tables.push(table);
    }
    println!();
    println!("paper shape: monotone improvement with cache size; smaller blocks better;");
    println!("slow/32k/16b < 5%; fast needs ~1m for < 5%.");
    args.write_csv(&tables.iter().collect::<Vec<_>>());

    let runs = Workload::ALL
        .iter()
        .zip(&timed)
        .map(|(w, (r, wall))| GridRun {
            workload: w.name().into(),
            scale,
            events: r.refs,
            cells: r.cells.len(),
            wall: *wall,
        })
        .collect();
    GridReport {
        binary: "e3_overhead_sweep".into(),
        jobs,
        runs,
        total_wall,
    }
    .write();
}
