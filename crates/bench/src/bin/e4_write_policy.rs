//! E4 — the §5 write-miss-policy comparison: how much fetch-on-write
//! increases average cache overhead relative to write-validate.
//!
//! Expected shape (paper): the penalty of fetch-on-write varies inversely
//! with block size and is nearly independent of cache size; on the slow
//! processor it costs at most ~1 % extra, on the fast processor from ~4 %
//! (256 B blocks) to ~20 % (16 B blocks).

use cachegc_bench::{header, human_bytes, scale_arg};
use cachegc_core::{run_control, ExperimentConfig, WriteMissPolicy, FAST, SLOW};
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(4);
    header(&format!(
        "E4: fetch-on-write vs write-validate (§5), scale {scale}"
    ));
    let sizes = vec![32 << 10, 256 << 10, 1 << 20];
    let mut cfg_wv = ExperimentConfig::paper();
    cfg_wv.cache_sizes = sizes.clone();
    let cfg_fow = cfg_wv
        .clone()
        .with_write_miss(WriteMissPolicy::FetchOnWrite);

    let runs: Vec<_> = Workload::ALL
        .iter()
        .map(|w| {
            eprintln!("running {} (both policies) ...", w.name());
            let wv = run_control(w.scaled(scale), &cfg_wv).unwrap();
            let fow = run_control(w.scaled(scale), &cfg_fow).unwrap();
            (wv, fow)
        })
        .collect();

    for cpu in [&SLOW, &FAST] {
        println!(
            "\n{} processor: average O_cache increase from fetch-on-write",
            cpu.name
        );
        print!("{:>8}", "block");
        for &size in &sizes {
            print!("{:>9}", human_bytes(size));
        }
        println!();
        for &block in &cfg_wv.block_sizes {
            print!("{:>7}b", block);
            for &size in &sizes {
                let delta: f64 = runs
                    .iter()
                    .map(|(wv, fow)| {
                        let a = wv.cache_overhead(wv.cell(size, block).unwrap(), cpu);
                        let b = fow.cache_overhead(fow.cell(size, block).unwrap(), cpu);
                        b - a
                    })
                    .sum::<f64>()
                    / runs.len() as f64;
                print!("{:>8.2}%", 100.0 * delta);
            }
            println!();
        }
    }
    println!();
    println!("paper shape: increase depends inversely on block size, ~independent of cache size;");
    println!("slow: ≲1%; fast: ~4% (256b) to ~20% (16b).");
}
