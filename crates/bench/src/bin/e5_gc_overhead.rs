//! E5 — the §6 figure: garbage-collection overhead of the Cheney semispace
//! collector versus cache size at 64-byte blocks, on both processors.
//!
//! Expected shape (paper, with 16 MB semispaces against multi-hundred-MB
//! allocation): compile/nbody/rewrite stay low (< 4 % slow, < 8 % fast);
//! nbody can go *negative* in mid-size caches when the collector happens
//! to separate thrashing blocks; prove (imps) is volatile when it
//! thrashes; lambda (lp) is ≥ 40 % because its live structure grows
//! monotonically and Cheney recopies it at every collection.
//!
//! Scaling substitution: the paper's 16 MB semispaces serve programs that
//! allocate hundreds of MB; we default to 2 MB semispaces against tens of
//! MB of allocation, preserving the collections-per-byte-allocated regime.
//! Override with `CACHEGC_SEMISPACE` (bytes).

use cachegc_bench::{header, human_bytes, scale_arg};
use cachegc_core::{CollectorSpec, ExperimentConfig, GcComparison, FAST, SLOW};
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(4);
    let semispace: u32 = std::env::var("CACHEGC_SEMISPACE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2 << 20);
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    header(&format!(
        "E5: O_gc with Cheney {} semispaces, 64b blocks (§6 figure), scale {scale}",
        human_bytes(semispace)
    ));

    let spec = CollectorSpec::Cheney { semispace_bytes: semispace };
    for w in Workload::ALL {
        eprintln!("running {} (control + collected) ...", w.name());
        let cmp = match GcComparison::run(w.scaled(scale), &cfg, spec) {
            Ok(c) => c,
            Err(e) => {
                println!("{:10} failed: {e} (semispace too small for its live data)", w.name());
                continue;
            }
        };
        println!(
            "\n{} ({}): {} collections, {} bytes copied, I_gc={}, ΔI_prog={}",
            w.name(),
            w.paper_analog(),
            cmp.collected.gc.collections,
            cmp.collected.gc.bytes_copied,
            cmp.collected.i_gc,
            cmp.collected.delta_i_prog,
        );
        print!("{:>6}", "cpu");
        for &size in &cfg.cache_sizes {
            print!("{:>9}", human_bytes(size));
        }
        println!();
        for cpu in [&SLOW, &FAST] {
            print!("{:>6}", cpu.name);
            for &size in &cfg.cache_sizes {
                let o = cmp.gc_overhead(size, 64, cpu);
                print!("{:>8.2}%", 100.0 * o);
            }
            println!();
        }
    }
    println!();
    println!("paper shape: orbit/nbody/gambit ≤4% slow, ≤7.7% fast; nbody negative at 64-128k;");
    println!("imps volatile (thrashing); lp uniformly ≥40%.");
}
