//! E5 — the §6 figure: garbage-collection overhead of the Cheney semispace
//! collector versus cache size at 64-byte blocks, on both processors.
//!
//! Expected shape (paper, with 16 MB semispaces against multi-hundred-MB
//! allocation): compile/nbody/rewrite stay low (< 4 % slow, < 8 % fast);
//! nbody can go *negative* in mid-size caches when the collector happens
//! to separate thrashing blocks; prove (imps) is volatile when it
//! thrashes; lambda (lp) is ≥ 40 % because its live structure grows
//! monotonically and Cheney recopies it at every collection.
//!
//! Scaling substitution: the paper's 16 MB semispaces serve programs that
//! allocate hundreds of MB; we default to 2 MB semispaces against tens of
//! MB of allocation, preserving the collections-per-byte-allocated regime.
//! Override with `CACHEGC_SEMISPACE` (bytes).
//!
//! `--jobs N` runs workloads concurrently and, inside each comparison,
//! the control and collected passes on separate threads with the 8-cell
//! grid sharded across workers. `--jobs 1` is the sequential oracle.

use std::time::Instant;

use cachegc_bench::{header, human_bytes, jobs_arg, scale_arg, GridReport, GridRun};
use cachegc_core::{par_map, CollectorSpec, ExperimentConfig, GcComparison, FAST, SLOW};
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(4);
    let jobs = jobs_arg();
    let semispace: u32 = std::env::var("CACHEGC_SEMISPACE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2 << 20);
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    header(&format!(
        "E5: O_gc with Cheney {} semispaces, 64b blocks (§6 figure), scale {scale}, jobs {jobs}",
        human_bytes(semispace)
    ));

    let spec = CollectorSpec::Cheney {
        semispace_bytes: semispace,
    };
    let outer = jobs.min(Workload::ALL.len());
    let inner = (jobs / outer).max(1);
    let t0 = Instant::now();
    let results = par_map(&Workload::ALL, outer, |w| {
        eprintln!("running {} (control + collected) ...", w.name());
        let t = Instant::now();
        let r = GcComparison::run_jobs(w.scaled(scale), &cfg, spec, inner);
        (r, t.elapsed())
    });
    let total_wall = t0.elapsed();

    let mut runs = Vec::new();
    for (w, (result, wall)) in Workload::ALL.iter().zip(&results) {
        let cmp = match result {
            Ok(c) => c,
            Err(e) => {
                println!(
                    "{:10} failed: {e} (semispace too small for its live data)",
                    w.name()
                );
                continue;
            }
        };
        println!(
            "\n{} ({}): {} collections, {} bytes copied, I_gc={}, ΔI_prog={}",
            w.name(),
            w.paper_analog(),
            cmp.collected.gc.collections,
            cmp.collected.gc.bytes_copied,
            cmp.collected.i_gc,
            cmp.collected.delta_i_prog,
        );
        print!("{:>6}", "cpu");
        for &size in &cfg.cache_sizes {
            print!("{:>9}", human_bytes(size));
        }
        println!();
        for cpu in [&SLOW, &FAST] {
            print!("{:>6}", cpu.name);
            for &size in &cfg.cache_sizes {
                let o = cmp.gc_overhead(size, 64, cpu);
                print!("{:>8.2}%", 100.0 * o);
            }
            println!();
        }
        runs.push(GridRun {
            workload: w.name().into(),
            scale,
            events: cmp.control.refs,
            cells: cmp.control.cells.len() + cmp.collected.cells.len(),
            wall: *wall,
        });
    }
    println!();
    println!("paper shape: orbit/nbody/gambit ≤4% slow, ≤7.7% fast; nbody negative at 64-128k;");
    println!("imps volatile (thrashing); lp uniformly ≥40%.");

    GridReport {
        binary: "e5_gc_overhead".into(),
        jobs,
        runs,
        total_wall,
    }
    .write();
}
