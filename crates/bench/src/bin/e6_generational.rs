//! E6 — the §6 argument: lp's pathological Cheney overhead disappears
//! under a generational collector, which stops recopying the long-lived,
//! monotonically growing structure at every collection.

use cachegc_bench::{header, human_bytes, scale_arg};
use cachegc_core::{CollectorSpec, ExperimentConfig, GcComparison, FAST, SLOW};
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(4);
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    cfg.cache_sizes = vec![64 << 10, 256 << 10, 1 << 20];
    header(&format!(
        "E6: lambda (lp) under Cheney vs generational (§6), scale {scale}"
    ));

    let w = Workload::Lambda.scaled(scale);
    let specs = [
        CollectorSpec::Cheney {
            semispace_bytes: 2 << 20,
        },
        CollectorSpec::Generational {
            nursery_bytes: 1 << 20,
            old_bytes: 24 << 20,
        },
    ];
    for spec in specs {
        eprintln!("running lambda under {} ...", spec.name());
        let cmp = GcComparison::run(w, &cfg, spec).unwrap_or_else(|e| panic!("{e}"));
        println!(
            "\n{}: {} collections ({} minor, {} major), {} bytes copied",
            spec.name(),
            cmp.collected.gc.collections,
            cmp.collected.gc.minor_collections,
            cmp.collected.gc.major_collections,
            cmp.collected.gc.bytes_copied,
        );
        for cpu in [&SLOW, &FAST] {
            print!("  {:>5}:", cpu.name);
            for &size in &cfg.cache_sizes {
                print!(
                    "  {}={:.2}%",
                    human_bytes(size),
                    100.0 * cmp.gc_overhead(size, 64, cpu)
                );
            }
            println!();
        }
    }
    println!();
    println!("paper shape: Cheney ≥40% for lp; 'a simple generational collector would");
    println!("avoid this problem' — the generational column should be far lower.");
}
