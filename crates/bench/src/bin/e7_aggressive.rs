//! E7 — the §6 argument against *aggressive* collection: a generational
//! collector whose nursery is sized to the cache collects far more often
//! and copies far more not-yet-dead data; the extra copying cost swamps
//! whatever cache-overhead improvement it can buy.
//!
//! Sweeps the nursery from cache-sized (aggressive, à la Wilson et al.)
//! up to infrequent, and reports collections, bytes promoted, and O_gc.

use cachegc_bench::{header, human_bytes, scale_arg};
use cachegc_core::{CollectorSpec, ExperimentConfig, GcComparison, FAST, SLOW};
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(4);
    let cache_size = 64 << 10;
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    cfg.cache_sizes = vec![cache_size];
    header(&format!(
        "E7: aggressive vs infrequent generational collection (§6), {} cache, scale {scale}",
        human_bytes(cache_size)
    ));

    println!(
        "{:>9} {:>7} {:>14} {:>14} {:>10} {:>10} {:>10}",
        "nursery",
        "minors",
        "promoted (b)",
        "copied (b)",
        "O_gc slow",
        "O_gc fast",
        "O_cache+O_gc fast"
    );
    for nursery in [64 << 10, 128 << 10, 256 << 10, 1 << 20, 4 << 20] {
        let spec = CollectorSpec::Generational {
            nursery_bytes: nursery,
            old_bytes: 24 << 20,
        };
        eprintln!("running compile with nursery {} ...", human_bytes(nursery));
        let cmp = GcComparison::run(Workload::Compile.scaled(scale), &cfg, spec)
            .unwrap_or_else(|e| panic!("{e}"));
        let o_slow = cmp.gc_overhead(cache_size, 64, &SLOW);
        let o_fast = cmp.gc_overhead(cache_size, 64, &FAST);
        let total_fast = cmp.control_overhead(cache_size, 64, &FAST) + o_fast;
        println!(
            "{:>9} {:>7} {:>14} {:>14} {:>9.2}% {:>9.2}% {:>9.2}%",
            human_bytes(nursery),
            cmp.collected.gc.minor_collections,
            cmp.collected.gc.bytes_promoted,
            cmp.collected.gc.bytes_copied,
            100.0 * o_slow,
            100.0 * o_fast,
            100.0 * total_fast,
        );
    }
    println!();
    println!("paper shape: a cache-sized (aggressive) nursery collects more often, leaves");
    println!("less time for objects to die, promotes more, and costs more than it saves;");
    println!("overheads should fall as the nursery grows.");
}
