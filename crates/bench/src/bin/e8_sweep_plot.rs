//! E8 — the §7 cache-miss sweep plot: misses over time, one row per cache
//! block of a 64 KB cache with 64-byte blocks, for a run of the compile
//! workload without collection. The allocation pointer appears as broken
//! diagonal lines sweeping the cache.
//!
//! The plot is written to `e8_sweep.txt` (full resolution) and a
//! downsampled excerpt is printed.

use cachegc_analysis::SweepPlot;
use cachegc_bench::{header, scale_arg};
use cachegc_core::CacheConfig;
use cachegc_gc::NoCollector;
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(1);
    header(&format!(
        "E8: cache-miss sweep plot, compile, 64k/64b (§7), scale {scale}"
    ));
    let cfg = CacheConfig::direct_mapped(64 << 10, 64);
    let plot = SweepPlot::new(cfg, 1024);
    eprintln!("running compile ...");
    let out = Workload::Compile
        .scaled(scale)
        .run(NoCollector::new(), plot)
        .unwrap();
    let plot = out.sink;

    let full = plot.render_ascii(4000);
    std::fs::write("e8_sweep.txt", &full).expect("write e8_sweep.txt");
    println!(
        "{} columns x {} cache blocks; {:.2}% of cells have misses; full plot in e8_sweep.txt",
        plot.width(),
        plot.height(),
        100.0 * plot.fraction_of_cells_with_dots()
    );

    // Downsample to an ~100x32 excerpt for the terminal.
    let (w, h) = (plot.width(), plot.height());
    let (cols, rows) = (100.min(w), 32.min(h));
    println!("\ndownsampled excerpt ({cols}x{rows}); '*' = >=1 miss; block 0 at the bottom:");
    for ry in (0..rows).rev() {
        let mut line = String::new();
        for rx in 0..cols {
            let mut dot = false;
            for y in (ry * h / rows)..((ry + 1) * h / rows) {
                for x in (rx * w / cols)..((rx + 1) * w / cols) {
                    dot |= plot.dot(x, y);
                }
            }
            line.push(if dot { '*' } else { ' ' });
        }
        println!("{line}");
    }
    println!();
    println!("paper shape: broken diagonal allocation-miss lines sweeping the cache;");
    println!("slope follows the allocation rate; thrashing would appear as horizontal stripes.");
}
