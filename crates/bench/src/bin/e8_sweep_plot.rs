//! E8 — the §7 cache-miss sweep plot: misses over time, one row per cache
//! block of a 64 KB cache with 64-byte blocks, for a run of the compile
//! workload without collection. The allocation pointer appears as broken
//! diagonal lines sweeping the cache.
//!
//! The plot is written to `e8_sweep.txt` (full resolution) and a
//! downsampled excerpt is printed. The trace pass goes through the
//! experiment engine (`run_sinks`), so `--jobs`/`--schedule` apply.

use cachegc_analysis::SweepPlot;
use cachegc_bench::{header, ExperimentArgs};
use cachegc_core::report::{Cell, Table};
use cachegc_core::{run_sinks, CacheConfig};
use cachegc_workloads::Workload;

fn main() {
    let args = ExperimentArgs::parse(
        "e8_sweep_plot",
        "the §7 cache-miss sweep plot (compile, 64k/64b)",
        1,
    );
    let scale = args.scale;
    header(&format!(
        "E8: cache-miss sweep plot, compile, 64k/64b (§7), scale {scale}"
    ));
    let cfg = CacheConfig::direct_mapped(64 << 10, 64);
    eprintln!("running compile ...");
    let (_, sinks) = run_sinks(
        Workload::Compile.scaled(scale),
        None,
        vec![SweepPlot::new(cfg, 1024)],
        &args.engine(),
    )
    .unwrap();
    let plot = sinks.into_iter().next().expect("one plot");

    let full = plot.render_ascii(4000);
    std::fs::write("e8_sweep.txt", &full).expect("write e8_sweep.txt");
    let mut table = Table::new(
        "sweep",
        &["workload", "columns", "cache_blocks", "dot_fraction"],
    );
    table.row(vec![
        "compile".into(),
        plot.width().into(),
        plot.height().into(),
        Cell::Float(plot.fraction_of_cells_with_dots(), 4),
    ]);
    print!("{}", table.render());
    println!("full plot in e8_sweep.txt");
    args.write_csv(&[&table]);

    // Downsample to an ~100x32 excerpt for the terminal.
    let (w, h) = (plot.width(), plot.height());
    let (cols, rows) = (100.min(w), 32.min(h));
    println!("\ndownsampled excerpt ({cols}x{rows}); '*' = >=1 miss; block 0 at the bottom:");
    for ry in (0..rows).rev() {
        let mut line = String::new();
        for rx in 0..cols {
            let mut dot = false;
            for y in (ry * h / rows)..((ry + 1) * h / rows) {
                for x in (rx * w / cols)..((rx + 1) * w / cols) {
                    dot |= plot.dot(x, y);
                }
            }
            line.push(if dot { '*' } else { ' ' });
        }
        println!("{line}");
    }
    println!();
    println!("paper shape: broken diagonal allocation-miss lines sweeping the cache;");
    println!("slope follows the allocation rate; thrashing would appear as horizontal stripes.");
}
