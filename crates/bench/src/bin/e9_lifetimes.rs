//! E9 — the §7 lifetime figure: the cumulative distribution of
//! dynamic-block lifetimes (64-byte blocks) for each program, with the
//! fraction of one-cycle blocks in a 64 KB cache marked on each curve.

use cachegc_analysis::BlockTracker;
use cachegc_bench::{header, scale_arg};
use cachegc_gc::NoCollector;
use cachegc_workloads::Workload;

fn main() {
    let scale = scale_arg(2);
    header(&format!(
        "E9: dynamic-block lifetime CDF, 64b blocks (§7 figure), scale {scale}"
    ));
    let points: Vec<u64> = (10..=30).map(|p| 1u64 << p).collect();

    print!("{:10} {:>10}", "program", "dyn blocks");
    for p in [14u32, 16, 18, 20, 22, 24, 26] {
        print!("  <=2^{p:<3}");
    }
    println!("  one-cycle@64k");
    for w in Workload::ALL {
        eprintln!("running {} ...", w.name());
        let tracker = BlockTracker::new(64 << 10, 64);
        let out = w.scaled(scale).run(NoCollector::new(), tracker).unwrap();
        let report = out.sink.finish();
        print!("{:10} {:>10}", w.name(), report.dynamic_blocks);
        for p in [14u32, 16, 18, 20, 22, 24, 26] {
            print!("  {:>6.1}%", 100.0 * report.lifetime_cdf(1 << p));
        }
        println!("  {:>6.1}%", 100.0 * report.one_cycle_fraction());
        let _ = &points;
    }
    println!();
    println!("paper shape: about half (or more) of dynamic blocks live <=64k references;");
    println!("at least half, often >80%, are one-cycle blocks in a 64k cache.");
}
