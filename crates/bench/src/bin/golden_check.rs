//! Golden-results regression check: rerun every experiment sweep
//! in-process at the pinned configuration and diff its tables against the
//! CSV goldens in `results/expected/`, or regenerate them with `--bless`.
//!
//! Exit status: 0 all tables match (or were blessed), 1 drift, 2 usage.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use cachegc_bench::cli::{replay_kernel_from_env, MetricsArg, TraceCacheArg, TraceExportArg};
use cachegc_bench::experiments::{self, Experiment};
use cachegc_bench::golden::{
    bless_tables, check_tables_on, golden_engine, run_sweep, Tolerance, GOLDEN_DIR, GOLDEN_SCALE,
};
use cachegc_core::{
    chrome_trace_json, validate_chrome_trace, validate_timeline, Manifest, ManifestConfig,
    ReplayKernel, Runner, Telemetry,
};

const USAGE: &str = "\
golden_check: diff every experiment's tables against results/expected/

usage: golden_check [--bless] [--only NAME] [--dir PATH] [--rel-eps X]
                    [--trace-cache on|off|BYTES[,spill[:DIR]][,evict=on|off]]
                    [--replay-kernel scalar|batch]
                    [--metrics off|json[:PATH]] [--manifest PATH]
                    [--trace-export off|chrome[:PATH]]
                    [--timeline PATH] [--trace PATH]

  --bless       regenerate the goldens from the current code
  --only NAME   check a single experiment (e.g. e4_write_policy)
  --dir PATH    golden directory (default results/expected)
  --rel-eps X   relative epsilon for float/pct cells (default 1e-9;
                0 means exact)
  --trace-cache on|off|BYTES[,spill[:DIR]][,evict=on|off]
                share one trace store across all experiments so each
                unique (workload, scale, collector) scenario's VM runs
                at most once; BYTES caps resident trace memory; spill
                writes captures through to disk segments (default DIR
                results/tracestore) and warm-starts from them on the
                next invocation; evict=off refuses over-budget captures
                instead of evicting least-recently-hit scenarios
                (default on; env CACHEGC_TRACE_CACHE)
  --replay-kernel scalar|batch
                drive stored-trace replays with the per-event scalar
                decoder (default) or the SWAR batch decoder feeding the
                grid-vectorized cache kernel; tables are bit-identical
                under both (env CACHEGC_REPLAY_KERNEL)
  --metrics off|json[:PATH]
                write this invocation's own run manifest (schema,
                counters, store accounting) to PATH, default
                results/manifest/golden_check.json
  --manifest PATH
                validate a run manifest written by an experiment's
                --metrics json instead of diffing tables: schema and
                counter/phase invariants, plus nonzero vm_execute and
                hit-backed replay spans; exits 0 valid, 1 invalid
  --trace-export off|chrome[:PATH]
                capture timestamped scheduler spans during this
                invocation's sweeps and write them as Chrome
                trace-event JSON (loadable in Perfetto), default PATH
                results/trace/golden_check.json; spans never change a
                table (env CACHEGC_TRACE_EXPORT)
  --timeline PATH
                validate a cachegc-timeline-v1 JSONL stream written by
                an experiment's --timeline jsonl instead of diffing
                tables: schema, declared counts, and the per-run
                invariant that window sums reconstruct the aggregate
                cache totals exactly; exits 0 valid, 1 invalid
  --trace PATH  validate Chrome trace-event JSON written by
                --trace-export instead of diffing tables: well-formed
                events, named thread rows, and at least one complete
                span; exits 0 valid, 1 invalid

The sweeps always run at --scale 1 --jobs 2 --schedule ws: goldens are
defined at that configuration, and the parallel engine is bit-identical
to the sequential one, so results do not depend on the machine. Replay
from the trace cache is bit-identical to the live VM, so --trace-cache
never changes a table — with any budget, with or without spill.";

struct Opts {
    bless: bool,
    only: Option<String>,
    dir: PathBuf,
    tol: Tolerance,
    trace_cache: TraceCacheArg,
    replay_kernel: ReplayKernel,
    metrics: MetricsArg,
    manifest: Option<PathBuf>,
    trace_export: TraceExportArg,
    timeline: Option<PathBuf>,
    trace: Option<PathBuf>,
}

fn parse_opts(argv: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        bless: false,
        only: None,
        dir: PathBuf::from(GOLDEN_DIR),
        tol: Tolerance::default(),
        trace_cache: TraceCacheArg::from_env(std::env::var("CACHEGC_TRACE_CACHE").ok().as_deref())?,
        replay_kernel: replay_kernel_from_env(
            std::env::var("CACHEGC_REPLAY_KERNEL").ok().as_deref(),
        )?,
        metrics: MetricsArg::Off,
        manifest: None,
        trace_export: TraceExportArg::from_env(
            std::env::var("CACHEGC_TRACE_EXPORT").ok().as_deref(),
        )?,
        timeline: None,
        trace: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--bless" => opts.bless = true,
            "--only" => opts.only = Some(value("--only")?),
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            "--rel-eps" => {
                let raw = value("--rel-eps")?;
                let eps: f64 = raw
                    .parse()
                    .map_err(|_| format!("--rel-eps: not a number: {raw}"))?;
                if !eps.is_finite() || eps < 0.0 {
                    return Err(format!("--rel-eps: must be finite and >= 0, got {raw}"));
                }
                opts.tol = Tolerance { rel_eps: eps };
            }
            "--trace-cache" => {
                let raw = value("--trace-cache")?;
                opts.trace_cache = TraceCacheArg::parse(&raw).ok_or_else(|| {
                    format!(
                        "--trace-cache: malformed value '{raw}' \
                         (on|off|BYTES[,spill[:DIR]][,evict=on|off])"
                    )
                })?;
            }
            "--replay-kernel" => {
                let raw = value("--replay-kernel")?;
                opts.replay_kernel = ReplayKernel::parse(&raw).ok_or_else(|| {
                    format!("--replay-kernel: malformed value '{raw}' (scalar or batch)")
                })?;
            }
            "--metrics" => {
                let raw = value("--metrics")?;
                opts.metrics = match MetricsArg::parse(&raw) {
                    Some(m @ (MetricsArg::Off | MetricsArg::Json(_))) => m,
                    _ => {
                        return Err(format!(
                            "--metrics: malformed value '{raw}' (off or json[:PATH])"
                        ))
                    }
                };
            }
            "--manifest" => opts.manifest = Some(PathBuf::from(value("--manifest")?)),
            "--trace-export" => {
                let raw = value("--trace-export")?;
                opts.trace_export = TraceExportArg::parse(&raw).ok_or_else(|| {
                    format!("--trace-export: malformed value '{raw}' (off or chrome[:PATH])")
                })?;
            }
            "--timeline" => opts.timeline = Some(PathBuf::from(value("--timeline")?)),
            "--trace" => opts.trace = Some(PathBuf::from(value("--trace")?)),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn selected(opts: &Opts) -> Result<Vec<&'static Experiment>, String> {
    match &opts.only {
        None => Ok(experiments::ALL.iter().collect()),
        Some(name) => match experiments::find(name) {
            Some(e) => Ok(vec![e]),
            None => Err(format!(
                "--only: unknown experiment '{name}' (known: {})",
                experiments::ALL
                    .iter()
                    .map(|e| e.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        },
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&argv) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("golden_check: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.manifest {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("golden_check: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        return match cachegc_bench::golden::check_manifest(&text) {
            Ok(()) => {
                println!("ok: {} is a valid run manifest", path.display());
                ExitCode::SUCCESS
            }
            Err(msg) => {
                println!("INVALID manifest {}: {msg}", path.display());
                ExitCode::from(1)
            }
        };
    }
    if let Some(path) = &opts.timeline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("golden_check: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        return match validate_timeline(&text) {
            Ok(()) => {
                println!("ok: {} is a valid timeline stream", path.display());
                ExitCode::SUCCESS
            }
            Err(msg) => {
                println!("INVALID timeline {}: {msg}", path.display());
                ExitCode::from(1)
            }
        };
    }
    if let Some(path) = &opts.trace {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("golden_check: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let verdict = validate_chrome_trace(&text).and_then(|s| {
            if s.spans == 0 {
                Err("no complete spans".to_string())
            } else {
                Ok(s)
            }
        });
        return match verdict {
            Ok(s) => {
                println!(
                    "ok: {} is a valid chrome trace ({} spans, {} worker rows, {} threads)",
                    path.display(),
                    s.spans,
                    s.workers,
                    s.threads
                );
                ExitCode::SUCCESS
            }
            Err(msg) => {
                println!("INVALID trace {}: {msg}", path.display());
                ExitCode::from(1)
            }
        };
    }
    let exps = match selected(&opts) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("golden_check: {msg}");
            return ExitCode::from(2);
        }
    };

    // One store spans every experiment: later sweeps replay scenarios an
    // earlier sweep recorded, so each unique (workload, scale, collector)
    // runs the VM at most once per invocation.
    let store = opts.trace_cache.store();
    // `--trace-export` needs a span-capturing registry even when
    // `--metrics off` leaves the manifest unwritten.
    let telemetry = (opts.metrics.enabled() || opts.trace_export.enabled()).then(|| {
        Arc::new(if opts.trace_export.enabled() {
            Telemetry::with_spans()
        } else {
            Telemetry::new()
        })
    });
    let mut runner = Runner::new(golden_engine().with_replay_kernel(opts.replay_kernel));
    if let Some(store) = &store {
        runner = runner.with_store(store);
    }
    if let Some(telemetry) = &telemetry {
        runner = runner.with_telemetry(telemetry);
    }
    let mut drifted = 0usize;
    let mut checked = 0usize;
    {
        // The shard makes main-thread probes land in the registry; engine
        // workers attach their own inside the drivers.
        let _shard = telemetry.as_ref().map(|t| t.attach());
        for exp in exps {
            eprintln!("== {} ==", exp.name);
            let tables = run_sweep(exp, GOLDEN_SCALE, &runner);
            checked += tables.len();
            if opts.bless {
                match bless_tables(&opts.dir, exp.name, &tables) {
                    Ok(written) => {
                        for p in written {
                            println!("blessed {}", p.display());
                        }
                    }
                    Err(e) => {
                        eprintln!("golden_check: cannot write goldens for {}: {e}", exp.name);
                        return ExitCode::from(2);
                    }
                }
                continue;
            }
            for (table, drifts) in check_tables_on(&runner, &opts.dir, exp.name, &tables, &opts.tol)
            {
                drifted += 1;
                println!("DRIFT in {} table '{table}':", exp.name);
                for d in drifts {
                    println!("  {d}");
                }
            }
        }
    }

    if let Some(store) = &store {
        eprintln!("trace cache: {}", store.stats());
    }
    if let (Some(telemetry), Some(path)) = (&telemetry, opts.trace_export.path("golden_check")) {
        let snapshot = telemetry.snapshot();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, chrome_trace_json(&snapshot)) {
            Ok(()) => eprintln!(
                "wrote {} ({} spans on {} threads)",
                path.display(),
                snapshot.spans.len(),
                snapshot.threads.len()
            ),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    if let (Some(telemetry), MetricsArg::Json(path)) = (&telemetry, &opts.metrics) {
        let manifest = Manifest::gather(
            ManifestConfig {
                experiment: "golden_check".to_string(),
                scale: GOLDEN_SCALE,
                jobs: golden_engine().jobs,
                jobs_requested: golden_engine().jobs,
                schedule: golden_engine().schedule.name().to_string(),
                trace_cache: opts.trace_cache.describe(),
            },
            &telemetry.snapshot(),
            store.as_ref(),
        );
        let path = path
            .clone()
            .unwrap_or_else(|| experiments::default_manifest_path("golden_check"));
        match manifest.write(&path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    if opts.bless {
        println!("blessed {checked} tables into {}", opts.dir.display());
        ExitCode::SUCCESS
    } else if drifted == 0 {
        println!("ok: {checked} tables match {}", opts.dir.display());
        ExitCode::SUCCESS
    } else {
        println!(
            "{drifted} of {checked} tables drifted from {}; \
             run `golden_check --bless` if the change is intended",
            opts.dir.display()
        );
        ExitCode::from(1)
    }
}
