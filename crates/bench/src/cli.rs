//! The one command line every experiment binary speaks.
//!
//! [`ExperimentArgs::parse`] replaces the per-binary ad-hoc argument
//! scans: every regenerator accepts the same flags with the same
//! spellings, the same environment fallbacks, and the same exit-code
//! discipline (`--help` exits 0; a bad flag prints usage to stderr and
//! exits 2). Binaries with no use for a knob still accept it, so a sweep
//! over all binaries can pass one uniform argument vector.

use std::path::{Path, PathBuf};

use cachegc_core::report::{csv_table_path, Table};
use cachegc_core::{EngineConfig, ReplayKernel, Schedule, TimelineSpec, TraceStore};

/// Byte budget the plain `--trace-cache on` spelling buys (4 GiB — the
/// whole golden-scale scenario set encodes to ~1 GiB at the measured
/// 2.7–3.0 bytes/event, so this holds every scenario with headroom
/// while still bounding a paper-scale sweep).
pub const DEFAULT_TRACE_CACHE_BYTES: u64 = 4 << 30;

/// The spill directory the bare `spill` option (no `:DIR`) selects.
pub const DEFAULT_SPILL_DIR: &str = "results/tracestore";

/// Whether (and how large) a scenario-keyed [`TraceStore`] backs the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCacheMode {
    /// No store; every pass runs the VM live.
    Off,
    /// A store with the [`DEFAULT_TRACE_CACHE_BYTES`] budget.
    On,
    /// A store with an explicit byte budget.
    Budget(u64),
}

/// The `--trace-cache` knob: the store mode plus its eviction and disk
/// spill options, spelled `on|off|BYTES[,spill[:DIR]][,evict=on|off]`.
/// `off` takes no options (a spill directory for a store that does not
/// exist is a contradiction worth rejecting, not ignoring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCacheArg {
    /// Store mode: off, default budget, or an explicit byte budget.
    pub mode: TraceCacheMode,
    /// Spill directory for write-through segment files, when enabled.
    pub spill: Option<PathBuf>,
    /// Whether the store evicts least-recently-hit entries to fit a new
    /// capture (default) or refuses over-budget captures outright.
    pub evict: bool,
}

impl TraceCacheArg {
    /// The default setting: a store with the default budget, eviction
    /// on, no spill.
    pub fn on() -> TraceCacheArg {
        TraceCacheArg {
            mode: TraceCacheMode::On,
            spill: None,
            evict: true,
        }
    }

    /// No store at all.
    pub fn off() -> TraceCacheArg {
        TraceCacheArg {
            mode: TraceCacheMode::Off,
            spill: None,
            evict: true,
        }
    }

    /// A store with an explicit byte budget, eviction on, no spill.
    pub fn budget(bytes: u64) -> TraceCacheArg {
        TraceCacheArg {
            mode: TraceCacheMode::Budget(bytes),
            spill: None,
            evict: true,
        }
    }

    /// Parse a `--trace-cache` value:
    /// `on|off|BYTES[,spill[:DIR]][,evict=on|off]`.
    pub fn parse(raw: &str) -> Option<TraceCacheArg> {
        let mut parts = raw.split(',');
        let mode = match parts.next()? {
            "on" => TraceCacheMode::On,
            "off" => TraceCacheMode::Off,
            n => TraceCacheMode::Budget(n.parse().ok()?),
        };
        let mut spill = None;
        let mut evict = true;
        let mut options = 0usize;
        for opt in parts {
            options += 1;
            if opt == "spill" {
                spill = Some(PathBuf::from(DEFAULT_SPILL_DIR));
            } else if let Some(dir) = opt.strip_prefix("spill:") {
                if dir.is_empty() {
                    return None;
                }
                spill = Some(PathBuf::from(dir));
            } else if let Some(v) = opt.strip_prefix("evict=") {
                evict = match v {
                    "on" => true,
                    "off" => false,
                    _ => return None,
                };
            } else {
                return None;
            }
        }
        if mode == TraceCacheMode::Off && options > 0 {
            return None;
        }
        Some(TraceCacheArg { mode, spill, evict })
    }

    /// Resolve a `CACHEGC_TRACE_CACHE` environment value: `None` (unset)
    /// means the default `on`; a malformed value is an error naming the
    /// variable, same discipline as the flag.
    pub fn from_env(raw: Option<&str>) -> Result<TraceCacheArg, String> {
        match raw {
            None => Ok(TraceCacheArg::on()),
            Some(v) => TraceCacheArg::parse(v).ok_or_else(|| {
                format!(
                    "CACHEGC_TRACE_CACHE: malformed value '{v}' \
                     (on|off|BYTES[,spill[:DIR]][,evict=on|off])"
                )
            }),
        }
    }

    /// The store this argument asks for (`None` for `off`).
    pub fn store(&self) -> Option<TraceStore> {
        let bytes = match self.mode {
            TraceCacheMode::Off => return None,
            TraceCacheMode::On => DEFAULT_TRACE_CACHE_BYTES,
            TraceCacheMode::Budget(bytes) => bytes,
        };
        let mut store = TraceStore::with_budget(bytes).with_evict(self.evict);
        if let Some(dir) = &self.spill {
            store = store.with_spill(dir.clone());
        }
        Some(store)
    }

    /// A human description of the setting for the run manifest.
    pub fn describe(&self) -> String {
        let mut out = match self.mode {
            TraceCacheMode::Off => return "off".into(),
            TraceCacheMode::On => format!("{DEFAULT_TRACE_CACHE_BYTES} bytes"),
            TraceCacheMode::Budget(bytes) => format!("{bytes} bytes"),
        };
        if let Some(dir) = &self.spill {
            out.push_str(&format!(", spill {}", dir.display()));
        }
        if !self.evict {
            out.push_str(", evict off");
        }
        out
    }
}

/// The `--metrics` knob: whether (and where) the run's telemetry goes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum MetricsArg {
    /// No telemetry: probes stay dormant, nothing is gathered.
    #[default]
    Off,
    /// Print a human-readable timing table after the results.
    Table,
    /// Write a `cachegc-manifest-v1` JSON manifest; `None` means the
    /// default path `results/manifest/<experiment>.json`.
    Json(Option<PathBuf>),
}

impl MetricsArg {
    /// Parse a `--metrics` value: `off`, `table`, `json`, or `json:PATH`.
    pub fn parse(raw: &str) -> Option<MetricsArg> {
        match raw {
            "off" => Some(MetricsArg::Off),
            "table" => Some(MetricsArg::Table),
            "json" => Some(MetricsArg::Json(None)),
            _ => match raw.strip_prefix("json:") {
                Some(path) if !path.is_empty() => Some(MetricsArg::Json(Some(PathBuf::from(path)))),
                _ => None,
            },
        }
    }

    /// Resolve a `CACHEGC_METRICS` environment value: `None` (unset)
    /// means the default `off`; a malformed value is an error naming the
    /// variable, same discipline as the flag.
    pub fn from_env(raw: Option<&str>) -> Result<MetricsArg, String> {
        match raw {
            None => Ok(MetricsArg::Off),
            Some(v) => MetricsArg::parse(v).ok_or_else(|| {
                format!("CACHEGC_METRICS: malformed value '{v}' (off, table, or json[:PATH])")
            }),
        }
    }

    /// True when telemetry should be gathered at all.
    pub fn enabled(&self) -> bool {
        *self != MetricsArg::Off
    }
}

/// The `--timeline` knob: whether every pass additionally samples a
/// windowed cache/GC timeline, and where the `cachegc-timeline-v1`
/// JSONL stream lands. Spelled `off` or `jsonl[:PATH][,window=N]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TimelineArg {
    /// No timeline: passes run exactly as before.
    #[default]
    Off,
    /// Emit the JSONL stream (plus a summary table on stderr).
    Jsonl {
        /// Output path; `None` means `results/timeline/<experiment>.jsonl`.
        path: Option<PathBuf>,
        /// Window length override in events; `None` keeps the default
        /// 1 M-event windows.
        window: Option<u64>,
    },
}

impl TimelineArg {
    /// Parse a `--timeline` value: `off` or `jsonl[:PATH][,window=N]`.
    pub fn parse(raw: &str) -> Option<TimelineArg> {
        if raw == "off" {
            return Some(TimelineArg::Off);
        }
        let mut parts = raw.split(',');
        let head = parts.next()?;
        let path = if head == "jsonl" {
            None
        } else {
            let p = head.strip_prefix("jsonl:")?;
            if p.is_empty() {
                return None;
            }
            Some(PathBuf::from(p))
        };
        let mut window = None;
        for opt in parts {
            let v = opt.strip_prefix("window=")?;
            let n: u64 = v.parse().ok()?;
            if n == 0 {
                return None;
            }
            window = Some(n);
        }
        Some(TimelineArg::Jsonl { path, window })
    }

    /// Resolve a `CACHEGC_TIMELINE` environment value: `None` (unset)
    /// means the default `off`; a malformed value is an error naming the
    /// variable, same discipline as the flag.
    pub fn from_env(raw: Option<&str>) -> Result<TimelineArg, String> {
        match raw {
            None => Ok(TimelineArg::Off),
            Some(v) => TimelineArg::parse(v).ok_or_else(|| {
                format!(
                    "CACHEGC_TIMELINE: malformed value '{v}' \
                     (off or jsonl[:PATH][,window=N])"
                )
            }),
        }
    }

    /// True when passes should carry a timeline tap.
    pub fn enabled(&self) -> bool {
        *self != TimelineArg::Off
    }

    /// The sampling spec this argument asks for (the paper's 64 KB/32 B
    /// geometry, with the window override applied).
    pub fn spec(&self) -> TimelineSpec {
        let mut spec = TimelineSpec::default();
        if let TimelineArg::Jsonl {
            window: Some(n), ..
        } = self
        {
            spec.window_events = *n;
        }
        spec
    }

    /// Where the JSONL stream lands for `experiment` (explicit path, or
    /// the default `results/timeline/<experiment>.jsonl`).
    pub fn path(&self, experiment: &str) -> Option<PathBuf> {
        match self {
            TimelineArg::Off => None,
            TimelineArg::Jsonl { path, .. } => Some(path.clone().unwrap_or_else(|| {
                PathBuf::from("results/timeline").join(format!("{experiment}.jsonl"))
            })),
        }
    }
}

/// The `--trace-export` knob: whether the run's telemetry captures
/// timestamped spans and exports them as Chrome trace-event JSON
/// (loadable in Perfetto / `chrome://tracing`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceExportArg {
    /// No span capture, no export.
    #[default]
    Off,
    /// Export Chrome trace-event JSON; `None` means the default path
    /// `results/trace/<experiment>.json`.
    Chrome(Option<PathBuf>),
}

impl TraceExportArg {
    /// Parse a `--trace-export` value: `off`, `chrome`, or `chrome:PATH`.
    pub fn parse(raw: &str) -> Option<TraceExportArg> {
        match raw {
            "off" => Some(TraceExportArg::Off),
            "chrome" => Some(TraceExportArg::Chrome(None)),
            _ => match raw.strip_prefix("chrome:") {
                Some(path) if !path.is_empty() => {
                    Some(TraceExportArg::Chrome(Some(PathBuf::from(path))))
                }
                _ => None,
            },
        }
    }

    /// Resolve a `CACHEGC_TRACE_EXPORT` environment value: `None` (unset)
    /// means the default `off`; a malformed value is an error naming the
    /// variable, same discipline as the flag.
    pub fn from_env(raw: Option<&str>) -> Result<TraceExportArg, String> {
        match raw {
            None => Ok(TraceExportArg::Off),
            Some(v) => TraceExportArg::parse(v).ok_or_else(|| {
                format!("CACHEGC_TRACE_EXPORT: malformed value '{v}' (off or chrome[:PATH])")
            }),
        }
    }

    /// True when spans should be captured (forces a span-enabled
    /// telemetry registry even under `--metrics off`).
    pub fn enabled(&self) -> bool {
        *self != TraceExportArg::Off
    }

    /// Where the Chrome trace lands for `experiment`.
    pub fn path(&self, experiment: &str) -> Option<PathBuf> {
        match self {
            TraceExportArg::Off => None,
            TraceExportArg::Chrome(path) => Some(path.clone().unwrap_or_else(|| {
                PathBuf::from("results/trace").join(format!("{experiment}.json"))
            })),
        }
    }
}

/// Parsed common arguments of an experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentArgs {
    /// Workload scale (`--scale N`, env `CACHEGC_SCALE`).
    pub scale: u32,
    /// Effective worker threads: the request clamped to the machine's
    /// available parallelism. 1 is the sequential oracle.
    pub jobs: usize,
    /// Worker threads as requested (`--jobs N`, env `CACHEGC_JOBS`),
    /// before clamping. The driver warns (and counts) when this exceeds
    /// `jobs`; both land in the run manifest.
    pub jobs_requested: usize,
    /// Engine schedule (`--schedule rr|ws`).
    pub schedule: Schedule,
    /// Trace replay kernel (`--replay-kernel scalar|batch`, env
    /// `CACHEGC_REPLAY_KERNEL`; default scalar).
    pub replay_kernel: ReplayKernel,
    /// Pin crew workers to CPU cores (`--affinity`; best-effort, a no-op
    /// where the platform refuses).
    pub affinity: bool,
    /// CSV output path (`--csv PATH`), if requested.
    pub csv: Option<PathBuf>,
    /// Trace record/replay cache (`--trace-cache
    /// on|off|BYTES[,spill[:DIR]][,evict=on|off]`, env
    /// `CACHEGC_TRACE_CACHE`; default on).
    pub trace_cache: TraceCacheArg,
    /// Telemetry sink (`--metrics off|table|json[:PATH]`, env
    /// `CACHEGC_METRICS`; default off).
    pub metrics: MetricsArg,
    /// Windowed cache/GC timeline export (`--timeline
    /// off|jsonl[:PATH][,window=N]`, env `CACHEGC_TIMELINE`; default off).
    pub timeline: TimelineArg,
    /// Scheduler trace export (`--trace-export off|chrome[:PATH]`, env
    /// `CACHEGC_TRACE_EXPORT`; default off).
    pub trace_export: TraceExportArg,
    /// Report sweep progress on stderr (`--progress`).
    pub progress: bool,
}

#[derive(Debug)]
enum Parse {
    Help,
    Args(ExperimentArgs),
}

impl ExperimentArgs {
    /// Parse the process arguments. `--help` prints usage and exits 0; an
    /// unknown flag or malformed value prints usage to stderr and exits 2.
    /// `binary` and `about` head the usage text; `default_scale` is this
    /// binary's default workload scale.
    pub fn parse(binary: &str, about: &str, default_scale: u32) -> ExperimentArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::try_parse(&argv, default_scale) {
            Ok(Parse::Help) => {
                print!("{}", usage(binary, about, default_scale));
                std::process::exit(0);
            }
            Ok(Parse::Args(args)) => args,
            Err(msg) => {
                eprintln!("{binary}: {msg}");
                eprint!("{}", usage(binary, about, default_scale));
                std::process::exit(2);
            }
        }
    }

    fn try_parse(argv: &[String], default_scale: u32) -> Result<Parse, String> {
        Self::try_parse_env(
            argv,
            default_scale,
            |name| std::env::var(name).ok(),
            cachegc_core::default_jobs(),
        )
    }

    /// The parse itself, with the environment and the machine's available
    /// parallelism injected so tests can drive the `CACHEGC_*` fallbacks
    /// and the jobs clamp without process-global state or a dependency on
    /// the test machine's core count.
    fn try_parse_env(
        argv: &[String],
        default_scale: u32,
        env: impl Fn(&str) -> Option<String>,
        available: usize,
    ) -> Result<Parse, String> {
        let mut scale: Option<u32> = None;
        let mut jobs: Option<usize> = None;
        let mut schedule = Schedule::default();
        let mut replay_kernel: Option<ReplayKernel> = None;
        let mut affinity = false;
        let mut csv: Option<PathBuf> = None;
        let mut trace_cache: Option<TraceCacheArg> = None;
        let mut metrics: Option<MetricsArg> = None;
        let mut timeline: Option<TimelineArg> = None;
        let mut trace_export: Option<TraceExportArg> = None;
        let mut progress = false;
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--help" | "-h" => return Ok(Parse::Help),
                "--scale" => scale = Some(value(flag, it.next())?),
                "--jobs" => jobs = Some(value(flag, it.next())?),
                "--schedule" => {
                    let raw = it.next().ok_or("--schedule needs a value")?;
                    schedule = Schedule::parse(raw)
                        .ok_or_else(|| format!("unknown schedule '{raw}' (rr or ws)"))?;
                }
                "--replay-kernel" => {
                    let raw = it.next().ok_or("--replay-kernel needs a value")?;
                    replay_kernel = Some(ReplayKernel::parse(raw).ok_or_else(|| {
                        format!("--replay-kernel: malformed value '{raw}' (scalar or batch)")
                    })?);
                }
                "--csv" => {
                    let raw = it.next().ok_or("--csv needs a path")?;
                    csv = Some(PathBuf::from(raw));
                }
                "--trace-cache" => {
                    let raw = it.next().ok_or("--trace-cache needs a value")?;
                    trace_cache = Some(TraceCacheArg::parse(raw).ok_or_else(|| {
                        format!(
                            "--trace-cache: malformed value '{raw}' \
                             (on|off|BYTES[,spill[:DIR]][,evict=on|off])"
                        )
                    })?);
                }
                "--metrics" => {
                    let raw = it.next().ok_or("--metrics needs a value")?;
                    metrics = Some(MetricsArg::parse(raw).ok_or_else(|| {
                        format!("--metrics: malformed value '{raw}' (off, table, or json[:PATH])")
                    })?);
                }
                "--timeline" => {
                    let raw = it.next().ok_or("--timeline needs a value")?;
                    timeline = Some(TimelineArg::parse(raw).ok_or_else(|| {
                        format!(
                            "--timeline: malformed value '{raw}' \
                             (off or jsonl[:PATH][,window=N])"
                        )
                    })?);
                }
                "--trace-export" => {
                    let raw = it.next().ok_or("--trace-export needs a value")?;
                    trace_export = Some(TraceExportArg::parse(raw).ok_or_else(|| {
                        format!("--trace-export: malformed value '{raw}' (off or chrome[:PATH])")
                    })?);
                }
                "--affinity" => affinity = true,
                "--progress" => progress = true,
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        let scale = match scale {
            Some(s) => s,
            None => env_or(&env, "CACHEGC_SCALE", default_scale)?,
        };
        // Zero jobs is malformed, not "as sequential as possible": `--jobs
        // -2` already exits 2, and a silent clamp would hide the typo. The
        // same discipline applies to the env fallback.
        let (jobs, jobs_source) = match jobs {
            Some(j) => (j, "--jobs"),
            None => (
                env_or(&env, "CACHEGC_JOBS", cachegc_core::default_jobs())?,
                "CACHEGC_JOBS",
            ),
        };
        if jobs == 0 {
            return Err(format!("{jobs_source}: jobs must be at least 1, got 0"));
        }
        // More workers than the machine has cores buys nothing but
        // contention (and on a 1-core container, pure overhead): clamp to
        // the available parallelism, keeping the request so the driver
        // can warn and the manifest can record both.
        let jobs_requested = jobs;
        let jobs = jobs.min(available.max(1));
        let trace_cache = match trace_cache {
            Some(tc) => tc,
            None => TraceCacheArg::from_env(env("CACHEGC_TRACE_CACHE").as_deref())?,
        };
        let metrics = match metrics {
            Some(m) => m,
            None => MetricsArg::from_env(env("CACHEGC_METRICS").as_deref())?,
        };
        let timeline = match timeline {
            Some(t) => t,
            None => TimelineArg::from_env(env("CACHEGC_TIMELINE").as_deref())?,
        };
        let trace_export = match trace_export {
            Some(t) => t,
            None => TraceExportArg::from_env(env("CACHEGC_TRACE_EXPORT").as_deref())?,
        };
        let replay_kernel = match replay_kernel {
            Some(k) => k,
            None => replay_kernel_from_env(env("CACHEGC_REPLAY_KERNEL").as_deref())?,
        };
        Ok(Parse::Args(ExperimentArgs {
            scale,
            jobs,
            jobs_requested,
            schedule,
            replay_kernel,
            affinity,
            csv,
            trace_cache,
            metrics,
            timeline,
            trace_export,
            progress,
        }))
    }

    /// The engine configuration these arguments describe.
    pub fn engine(&self) -> EngineConfig {
        EngineConfig::jobs(self.jobs)
            .with_schedule(self.schedule)
            .with_affinity(self.affinity)
            .with_replay_kernel(self.replay_kernel)
    }

    /// True when the jobs request was clamped to the machine.
    pub fn jobs_clamped(&self) -> bool {
        self.jobs < self.jobs_requested
    }

    /// The trace store these arguments ask for (`None` under
    /// `--trace-cache off`). The caller owns it and threads a reference
    /// through a [`cachegc_core::RunCtx`], so one store can span many
    /// sweeps.
    pub fn trace_store(&self) -> Option<TraceStore> {
        self.trace_cache.store()
    }

    /// Write `tables` as CSV if `--csv` was passed (a single table lands at
    /// the given path; several become `<stem>_<name>.csv` siblings).
    /// Failures are reported, not fatal: persistence is a side channel,
    /// never worth killing a long sweep over.
    pub fn write_csv(&self, tables: &[&Table]) {
        let Some(base) = &self.csv else { return };
        for t in tables {
            let path = csv_table_path(base, t, tables.len());
            match t.write_csv(&path) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
    }
}

/// Resolve a `CACHEGC_REPLAY_KERNEL` environment value: `None` (unset)
/// means the default scalar kernel; a malformed value is an error naming
/// the variable, same discipline as the flag.
pub fn replay_kernel_from_env(raw: Option<&str>) -> Result<ReplayKernel, String> {
    match raw {
        None => Ok(ReplayKernel::default()),
        Some(v) => ReplayKernel::parse(v).ok_or_else(|| {
            format!("CACHEGC_REPLAY_KERNEL: malformed value '{v}' (scalar or batch)")
        }),
    }
}

fn value<T: std::str::FromStr>(flag: &str, raw: Option<&String>) -> Result<T, String> {
    let raw = raw.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: malformed value '{raw}'"))
}

fn env_or<T: std::str::FromStr>(
    env: &impl Fn(&str) -> Option<String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match env(name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name}: malformed value '{v}'")),
        None => Ok(default),
    }
}

fn usage(binary: &str, about: &str, default_scale: u32) -> String {
    format!(
        "{binary} — {about}\n\
         \n\
         usage: {binary} [--scale N] [--jobs N] [--schedule rr|ws] [--affinity]\n\
         \x20                [--replay-kernel scalar|batch] [--csv PATH]\n\
         \x20                [--trace-cache on|off|BYTES[,spill[:DIR]][,evict=on|off]]\n\
         \x20                [--metrics off|table|json[:PATH]]\n\
         \x20                [--timeline off|jsonl[:PATH][,window=N]]\n\
         \x20                [--trace-export off|chrome[:PATH]] [--progress]\n\
         \n\
         \x20 --scale N      workload scale (default {default_scale}; env CACHEGC_SCALE)\n\
         \x20 --jobs N       worker threads (default: available parallelism; env\n\
         \x20                CACHEGC_JOBS; 1 is the sequential oracle; clamped to\n\
         \x20                the machine's core count with a warning)\n\
         \x20 --schedule S   engine schedule: round-robin (rr) or work-stealing (ws)\n\
         \x20 --replay-kernel K  drive stored-trace replays with the per-event\n\
         \x20                scalar decoder (default) or the SWAR batch decoder\n\
         \x20                feeding the grid-vectorized cache kernel; results are\n\
         \x20                bit-identical (env CACHEGC_REPLAY_KERNEL)\n\
         \x20 --affinity     pin engine workers to CPU cores (best-effort; a no-op\n\
         \x20                where the platform refuses)\n\
         \x20 --csv PATH     also write results as CSV to PATH\n\
         \x20 --trace-cache  record each unique scenario's trace and replay it for\n\
         \x20                later passes: on (default, 4 GiB budget), off, or an\n\
         \x20                explicit byte budget; append ,spill[:DIR] to write\n\
         \x20                captures through to disk segments (default DIR\n\
         \x20                {DEFAULT_SPILL_DIR}) and warm-start from them, and\n\
         \x20                ,evict=off to refuse over-budget captures instead of\n\
         \x20                evicting least-recently-hit scenarios\n\
         \x20                (env CACHEGC_TRACE_CACHE)\n\
         \x20 --metrics M    gather run telemetry: off (default), table (print a\n\
         \x20                timing table), or json[:PATH] (write a run manifest,\n\
         \x20                default results/manifest/{binary}.json; env\n\
         \x20                CACHEGC_METRICS)\n\
         \x20 --timeline T   sample every pass with a windowed cache/GC timeline\n\
         \x20                (64 KB/32 B geometry, 1 M-event windows; ,window=N\n\
         \x20                overrides) and write a cachegc-timeline-v1 JSONL\n\
         \x20                stream, default results/timeline/{binary}.jsonl, plus\n\
         \x20                a summary table on stderr; results stay bit-identical\n\
         \x20                (env CACHEGC_TIMELINE)\n\
         \x20 --trace-export E  capture timestamped scheduler spans (packets,\n\
         \x20                steals, idle, backpressure, GC and store phases) and\n\
         \x20                export Chrome trace-event JSON loadable in Perfetto,\n\
         \x20                default results/trace/{binary}.json; works with\n\
         \x20                --metrics off (env CACHEGC_TRACE_EXPORT)\n\
         \x20 --progress     report each completed sweep pass on stderr\n\
         \x20 --help         show this help\n"
    )
}

/// True if `path` exists and parses as non-degenerate CSV (used by the
/// smoke tests; lives next to the writer's CLI so the check and the writer
/// stay in one place). Parsing goes through [`Table::read_csv`], the same
/// quote-aware reader the golden harness uses — a naive `split(',')` would
/// misjudge the writer's own output whenever a quoted `Text` cell carries
/// an embedded comma.
pub fn csv_looks_sane(path: &Path) -> bool {
    match Table::read_csv(path) {
        Ok(t) => t.columns().len() >= 2 && !t.is_empty(),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_core::report::Cell;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    // Parse with 8 cores injected, so assertions about multi-worker jobs
    // hold on any test machine (the growth container has one core).
    fn parsed(args: &[&str]) -> ExperimentArgs {
        match ExperimentArgs::try_parse_env(&argv(args), 4, |_| None, 8).unwrap() {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        }
    }

    #[test]
    fn flags_parse() {
        let a = parsed(&[
            "--scale",
            "2",
            "--jobs",
            "3",
            "--schedule",
            "ws",
            "--csv",
            "results/x.csv",
        ]);
        assert_eq!(a.scale, 2);
        assert_eq!(a.jobs, 3);
        assert_eq!(a.jobs_requested, 3);
        assert!(!a.jobs_clamped());
        assert_eq!(a.schedule, Schedule::WorkStealing);
        assert_eq!(a.csv.as_deref(), Some(Path::new("results/x.csv")));
        assert_eq!(a.engine().jobs, 3);
        assert!(!a.engine().is_sequential());
        assert!(!a.engine().affinity);
    }

    #[test]
    fn affinity_flag_parses_and_defaults_off() {
        assert!(!parsed(&[]).affinity);
        let a = parsed(&["--affinity", "--jobs", "2"]);
        assert!(a.affinity);
        assert!(a.engine().affinity);
    }

    #[test]
    fn jobs_beyond_the_machine_clamp_with_the_request_preserved() {
        let over = match ExperimentArgs::try_parse_env(&argv(&["--jobs", "16"]), 4, |_| None, 2)
            .unwrap()
        {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert_eq!((over.jobs, over.jobs_requested), (2, 16));
        assert!(over.jobs_clamped());
        assert_eq!(over.engine().jobs, 2, "engine gets the effective budget");
        // The env fallback clamps the same way.
        let env = |name: &str| (name == "CACHEGC_JOBS").then(|| "16".to_string());
        let from_env = match ExperimentArgs::try_parse_env(&argv(&[]), 4, env, 2).unwrap() {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert_eq!((from_env.jobs, from_env.jobs_requested), (2, 16));
        // A request within the machine is untouched, even on one core the
        // explicit sequential request is not a clamp.
        let seq =
            match ExperimentArgs::try_parse_env(&argv(&["--jobs", "1"]), 4, |_| None, 1).unwrap() {
                Parse::Args(a) => a,
                Parse::Help => panic!("unexpected help"),
            };
        assert!(!seq.jobs_clamped());
    }

    #[test]
    fn defaults_apply() {
        let a = parsed(&[]);
        assert_eq!(a.scale, 4);
        assert!(a.jobs >= 1);
        assert_eq!(a.schedule, Schedule::RoundRobin);
        assert!(a.csv.is_none());
    }

    #[test]
    fn jobs_zero_is_rejected_like_any_malformed_value() {
        // `--jobs -2` exits 2 with usage; `--jobs 0` must not silently
        // clamp to 1 while its sibling typo errors out.
        let err = ExperimentArgs::try_parse(&argv(&["--jobs", "0"]), 4).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        assert!(parsed(&["--jobs", "1"]).engine().is_sequential());
    }

    #[test]
    fn env_fallbacks_apply_and_reject_zero_jobs() {
        let env = |name: &str| match name {
            "CACHEGC_SCALE" => Some("7".to_string()),
            "CACHEGC_JOBS" => Some("3".to_string()),
            _ => None,
        };
        let a = match ExperimentArgs::try_parse_env(&argv(&[]), 4, env, 8).unwrap() {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert_eq!((a.scale, a.jobs), (7, 3));
        // Explicit flags win over the environment.
        let a = match ExperimentArgs::try_parse_env(&argv(&["--jobs", "2"]), 4, env, 8).unwrap() {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert_eq!(a.jobs, 2);
        let zero = |name: &str| (name == "CACHEGC_JOBS").then(|| "0".to_string());
        let err = ExperimentArgs::try_parse_env(&argv(&[]), 4, zero, 8).unwrap_err();
        assert!(err.contains("CACHEGC_JOBS"), "{err}");
        let bad = |name: &str| (name == "CACHEGC_JOBS").then(|| "many".to_string());
        assert!(ExperimentArgs::try_parse_env(&argv(&[]), 4, bad, 8).is_err());
    }

    #[test]
    fn trace_cache_flag_parses_and_defaults_on() {
        assert_eq!(parsed(&[]).trace_cache, TraceCacheArg::on());
        assert_eq!(
            parsed(&["--trace-cache", "off"]).trace_cache,
            TraceCacheArg::off()
        );
        assert_eq!(
            parsed(&["--trace-cache", "on"]).trace_cache,
            TraceCacheArg::on()
        );
        let a = parsed(&["--trace-cache", "268435456"]);
        assert_eq!(a.trace_cache, TraceCacheArg::budget(268435456));
        assert_eq!(a.trace_store().map(|s| s.budget()), Some(268435456));
        assert!(parsed(&["--trace-cache", "off"]).trace_store().is_none());
        assert_eq!(
            parsed(&[]).trace_store().map(|s| s.budget()),
            Some(DEFAULT_TRACE_CACHE_BYTES)
        );
    }

    #[test]
    fn trace_cache_spill_and_evict_options_parse() {
        // Bare `spill` selects the default directory; `spill:DIR` an
        // explicit one; `evict=off` disables eviction. Order is free.
        let a = parsed(&["--trace-cache", "on,spill"]);
        assert_eq!(
            a.trace_cache.spill.as_deref(),
            Some(Path::new(DEFAULT_SPILL_DIR))
        );
        assert!(a.trace_cache.evict);
        let a = parsed(&["--trace-cache", "1048576,spill:/tmp/ts,evict=off"]);
        assert_eq!(a.trace_cache.mode, TraceCacheMode::Budget(1048576));
        assert_eq!(a.trace_cache.spill.as_deref(), Some(Path::new("/tmp/ts")));
        assert!(!a.trace_cache.evict);
        let a = parsed(&["--trace-cache", "on,evict=off,spill:/tmp/ts"]);
        assert!(!a.trace_cache.evict);
        assert!(a.trace_cache.spill.is_some());
        // The options shape the store the argument builds.
        let store = parsed(&["--trace-cache", "64,spill:/tmp/ts,evict=off"])
            .trace_store()
            .unwrap();
        assert_eq!(store.budget(), 64);
        assert!(!store.evict());
        assert_eq!(store.spill_dir(), Some(Path::new("/tmp/ts")));
        let store = parsed(&[]).trace_store().unwrap();
        assert!(store.evict(), "eviction is the default");
        assert_eq!(store.spill_dir(), None, "no spill unless asked");
    }

    #[test]
    fn trace_cache_rejects_malformed_values_for_flag_and_env() {
        for bad in [
            "auto",
            "-1",
            "1g",
            "",
            "on,spill:",
            "on,evict=maybe",
            "on,frob",
            "on,",
            "off,spill",
            "off,evict=on",
        ] {
            let err = ExperimentArgs::try_parse(&argv(&["--trace-cache", bad]), 4).unwrap_err();
            assert!(err.contains("--trace-cache"), "{bad:?}: {err}");
        }
        let env = |name: &str| (name == "CACHEGC_TRACE_CACHE").then(|| "tiny".to_string());
        let err = ExperimentArgs::try_parse_env(&argv(&[]), 4, env, 8).unwrap_err();
        assert!(err.contains("CACHEGC_TRACE_CACHE"), "{err}");
        // A well-formed env value applies; the explicit flag wins over it.
        let env = |name: &str| (name == "CACHEGC_TRACE_CACHE").then(|| "off".to_string());
        let a = match ExperimentArgs::try_parse_env(&argv(&[]), 4, env, 8).unwrap() {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert_eq!(a.trace_cache, TraceCacheArg::off());
        let a = match ExperimentArgs::try_parse_env(&argv(&["--trace-cache", "64"]), 4, env, 8)
            .unwrap()
        {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert_eq!(a.trace_cache, TraceCacheArg::budget(64));
    }

    #[test]
    fn metrics_flag_parses_and_defaults_off() {
        assert_eq!(parsed(&[]).metrics, MetricsArg::Off);
        assert_eq!(parsed(&["--metrics", "off"]).metrics, MetricsArg::Off);
        assert_eq!(parsed(&["--metrics", "table"]).metrics, MetricsArg::Table);
        assert_eq!(
            parsed(&["--metrics", "json"]).metrics,
            MetricsArg::Json(None)
        );
        assert_eq!(
            parsed(&["--metrics", "json:results/m.json"]).metrics,
            MetricsArg::Json(Some(PathBuf::from("results/m.json")))
        );
        assert!(!MetricsArg::Off.enabled());
        assert!(MetricsArg::Table.enabled());
        assert!(MetricsArg::Json(None).enabled());
    }

    #[test]
    fn metrics_rejects_malformed_values_for_flag_and_env() {
        for bad in ["json:", "csv", "on", ""] {
            let err = ExperimentArgs::try_parse(&argv(&["--metrics", bad]), 4).unwrap_err();
            assert!(err.contains("--metrics"), "{bad:?}: {err}");
        }
        let env = |name: &str| (name == "CACHEGC_METRICS").then(|| "sometimes".to_string());
        let err = ExperimentArgs::try_parse_env(&argv(&[]), 4, env, 8).unwrap_err();
        assert!(err.contains("CACHEGC_METRICS"), "{err}");
        // A well-formed env value applies; the explicit flag wins over it.
        let env = |name: &str| (name == "CACHEGC_METRICS").then(|| "table".to_string());
        let a = match ExperimentArgs::try_parse_env(&argv(&[]), 4, env, 8).unwrap() {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert_eq!(a.metrics, MetricsArg::Table);
        let a =
            match ExperimentArgs::try_parse_env(&argv(&["--metrics", "off"]), 4, env, 8).unwrap() {
                Parse::Args(a) => a,
                Parse::Help => panic!("unexpected help"),
            };
        assert_eq!(a.metrics, MetricsArg::Off);
    }

    #[test]
    fn replay_kernel_parses_with_env_fallback_and_rejects_malformed() {
        assert_eq!(parsed(&[]).replay_kernel, ReplayKernel::Scalar);
        let a = parsed(&["--replay-kernel", "batch"]);
        assert_eq!(a.replay_kernel, ReplayKernel::Batch);
        assert_eq!(a.engine().replay_kernel, ReplayKernel::Batch);
        assert_eq!(
            parsed(&["--replay-kernel", "scalar"])
                .engine()
                .replay_kernel,
            ReplayKernel::Scalar
        );
        for bad in ["swar", "Batch", "on", ""] {
            let err = ExperimentArgs::try_parse(&argv(&["--replay-kernel", bad]), 4).unwrap_err();
            assert!(err.contains("--replay-kernel"), "{bad:?}: {err}");
        }
        // Env fallback applies; the explicit flag wins; malformed env errors.
        let env = |name: &str| (name == "CACHEGC_REPLAY_KERNEL").then(|| "batch".to_string());
        let a = match ExperimentArgs::try_parse_env(&argv(&[]), 4, env, 8).unwrap() {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert_eq!(a.replay_kernel, ReplayKernel::Batch);
        let a =
            match ExperimentArgs::try_parse_env(&argv(&["--replay-kernel", "scalar"]), 4, env, 8)
                .unwrap()
            {
                Parse::Args(a) => a,
                Parse::Help => panic!("unexpected help"),
            };
        assert_eq!(a.replay_kernel, ReplayKernel::Scalar);
        let bad = |name: &str| (name == "CACHEGC_REPLAY_KERNEL").then(|| "vector".to_string());
        let err = ExperimentArgs::try_parse_env(&argv(&[]), 4, bad, 8).unwrap_err();
        assert!(err.contains("CACHEGC_REPLAY_KERNEL"), "{err}");
    }

    #[test]
    fn timeline_flag_parses_and_defaults_off() {
        assert_eq!(parsed(&[]).timeline, TimelineArg::Off);
        assert!(!parsed(&[]).timeline.enabled());
        assert_eq!(parsed(&["--timeline", "off"]).timeline, TimelineArg::Off);
        let a = parsed(&["--timeline", "jsonl"]);
        assert_eq!(
            a.timeline,
            TimelineArg::Jsonl {
                path: None,
                window: None
            }
        );
        assert_eq!(
            a.timeline.path("e4_write_policy").as_deref(),
            Some(Path::new("results/timeline/e4_write_policy.jsonl"))
        );
        assert_eq!(a.timeline.spec(), TimelineSpec::default());
        let a = parsed(&["--timeline", "jsonl:/tmp/t.jsonl,window=4096"]);
        assert_eq!(
            a.timeline,
            TimelineArg::Jsonl {
                path: Some(PathBuf::from("/tmp/t.jsonl")),
                window: Some(4096)
            }
        );
        assert_eq!(
            a.timeline.path("e4").as_deref(),
            Some(Path::new("/tmp/t.jsonl"))
        );
        assert_eq!(a.timeline.spec().window_events, 4096);
        assert_eq!(
            a.timeline.spec().cache,
            TimelineSpec::default().cache,
            "window override keeps the paper geometry"
        );
        assert_eq!(TimelineArg::Off.path("e4"), None);
        // Env fallback applies; the explicit flag wins; malformed errors.
        let env = |name: &str| (name == "CACHEGC_TIMELINE").then(|| "jsonl".to_string());
        let a = match ExperimentArgs::try_parse_env(&argv(&[]), 4, env, 8).unwrap() {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert!(a.timeline.enabled());
        let a = match ExperimentArgs::try_parse_env(&argv(&["--timeline", "off"]), 4, env, 8)
            .unwrap()
        {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert_eq!(a.timeline, TimelineArg::Off);
        let bad = |name: &str| (name == "CACHEGC_TIMELINE").then(|| "csv".to_string());
        let err = ExperimentArgs::try_parse_env(&argv(&[]), 4, bad, 8).unwrap_err();
        assert!(err.contains("CACHEGC_TIMELINE"), "{err}");
        for bad in [
            "csv",
            "jsonl:",
            "jsonl,window=0",
            "jsonl,window=soon",
            "on",
            "",
        ] {
            let err = ExperimentArgs::try_parse(&argv(&["--timeline", bad]), 4).unwrap_err();
            assert!(err.contains("--timeline"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn trace_export_flag_parses_and_defaults_off() {
        assert_eq!(parsed(&[]).trace_export, TraceExportArg::Off);
        assert!(!parsed(&[]).trace_export.enabled());
        assert_eq!(
            parsed(&["--trace-export", "off"]).trace_export,
            TraceExportArg::Off
        );
        let a = parsed(&["--trace-export", "chrome"]);
        assert_eq!(a.trace_export, TraceExportArg::Chrome(None));
        assert!(a.trace_export.enabled());
        assert_eq!(
            a.trace_export.path("e4_write_policy").as_deref(),
            Some(Path::new("results/trace/e4_write_policy.json"))
        );
        let a = parsed(&["--trace-export", "chrome:/tmp/trace.json"]);
        assert_eq!(
            a.trace_export.path("e4").as_deref(),
            Some(Path::new("/tmp/trace.json"))
        );
        assert_eq!(TraceExportArg::Off.path("e4"), None);
        // Env fallback applies; the explicit flag wins; malformed errors.
        let env = |name: &str| (name == "CACHEGC_TRACE_EXPORT").then(|| "chrome".to_string());
        let a = match ExperimentArgs::try_parse_env(&argv(&[]), 4, env, 8).unwrap() {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert!(a.trace_export.enabled());
        let a = match ExperimentArgs::try_parse_env(&argv(&["--trace-export", "off"]), 4, env, 8)
            .unwrap()
        {
            Parse::Args(a) => a,
            Parse::Help => panic!("unexpected help"),
        };
        assert_eq!(a.trace_export, TraceExportArg::Off);
        let bad = |name: &str| (name == "CACHEGC_TRACE_EXPORT").then(|| "pprof".to_string());
        let err = ExperimentArgs::try_parse_env(&argv(&[]), 4, bad, 8).unwrap_err();
        assert!(err.contains("CACHEGC_TRACE_EXPORT"), "{err}");
        for bad in ["pprof", "chrome:", "on", ""] {
            let err = ExperimentArgs::try_parse(&argv(&["--trace-export", bad]), 4).unwrap_err();
            assert!(err.contains("--trace-export"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn progress_flag_parses_and_defaults_off() {
        assert!(!parsed(&[]).progress);
        assert!(parsed(&["--progress"]).progress);
        assert!(parsed(&["--progress", "--scale", "2"]).progress);
    }

    #[test]
    fn trace_cache_describes_itself() {
        assert_eq!(TraceCacheArg::off().describe(), "off");
        assert_eq!(TraceCacheArg::budget(64).describe(), "64 bytes");
        assert_eq!(
            TraceCacheArg::on().describe(),
            format!("{DEFAULT_TRACE_CACHE_BYTES} bytes")
        );
        assert_eq!(
            TraceCacheArg::parse("64,spill:/tmp/ts,evict=off")
                .unwrap()
                .describe(),
            "64 bytes, spill /tmp/ts, evict off"
        );
    }

    #[test]
    fn help_is_recognized() {
        assert!(matches!(
            ExperimentArgs::try_parse(&argv(&["--help"]), 4),
            Ok(Parse::Help)
        ));
        assert!(matches!(
            ExperimentArgs::try_parse(&argv(&["-h"]), 4),
            Ok(Parse::Help)
        ));
    }

    #[test]
    fn errors_are_reported() {
        for bad in [
            vec!["--frobnicate"],
            vec!["--scale"],
            vec!["--scale", "many"],
            vec!["--jobs", "-2"],
            vec!["--schedule", "fifo"],
            vec!["--csv"],
            vec!["--trace-cache"],
            vec!["--trace-cache", "sometimes"],
            vec!["--metrics"],
            vec!["--metrics", "json:"],
            vec!["--replay-kernel"],
            vec!["--replay-kernel", "swar"],
            vec!["--timeline"],
            vec!["--timeline", "jsonl:"],
            vec!["--trace-export"],
            vec!["--trace-export", "chrome:"],
        ] {
            assert!(
                ExperimentArgs::try_parse(&argv(&bad), 4).is_err(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn usage_names_every_flag() {
        let u = usage("e4_write_policy", "write-miss policy comparison", 4);
        for flag in [
            "--scale",
            "--jobs",
            "--schedule",
            "--replay-kernel",
            "--affinity",
            "--csv",
            "--trace-cache",
            "--metrics",
            "--timeline",
            "--trace-export",
            "--progress",
            "--help",
        ] {
            assert!(u.contains(flag), "{flag} missing from usage");
        }
        assert!(u.starts_with("e4_write_policy — "));
    }

    #[test]
    fn csv_sanity_check() {
        let dir = std::env::temp_dir().join("cachegc_cli_test");
        let _ = std::fs::create_dir_all(&dir);
        let good = dir.join("good.csv");
        std::fs::write(&good, "a,b\n1,2\n3,4\n").unwrap();
        assert!(csv_looks_sane(&good));
        let ragged = dir.join("ragged.csv");
        std::fs::write(&ragged, "a,b\n1\n").unwrap();
        assert!(!csv_looks_sane(&ragged));
        let empty = dir.join("empty.csv");
        std::fs::write(&empty, "a,b\n").unwrap();
        assert!(!csv_looks_sane(&empty), "header-only CSV is degenerate");
        assert!(!csv_looks_sane(&dir.join("absent.csv")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_sanity_check_is_quote_aware() {
        // The writer legitimately quotes a Text cell with an embedded
        // comma; the checker must not misjudge that as a ragged row.
        let dir = std::env::temp_dir().join("cachegc_cli_quote_test");
        let _ = std::fs::create_dir_all(&dir);
        let mut t = Table::new("quoted", &["label", "n"]);
        t.row(vec![Cell::text("slow, 30 ns"), Cell::Count(8)]);
        let path = dir.join("quoted.csv");
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"slow, 30 ns\""), "writer quotes the comma");
        assert!(csv_looks_sane(&path), "checker accepts the writer's output");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
