//! A1 (ablation) — direct-mapped vs set-associative caches. §4 restricts
//! the study to direct-mapped caches because that is what fast machines
//! ship; this ablation measures how much associativity would change the
//! picture for these workloads.
//!
//! The nine set-associative simulators ride one engine-driven pass per
//! workload (`--jobs`/`--schedule`); the two workloads run concurrently.

use cachegc_core::report::{Cell, Table};
use cachegc_core::{CacheConfig, Runner, SetAssocCache};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};

pub static EXPERIMENT: Experiment = Experiment {
    name: "a1_associativity",
    title: "A1: associativity ablation (64b blocks)",
    about: "associativity ablation (64b blocks)",
    default_scale: 2,
    cells: 2,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let sizes = [32 << 10, 64 << 10, 256 << 10u32];
    let ways = [1u32, 2, 4];

    let workloads = [Workload::Compile, Workload::Nbody];
    let passes = runner.map(&workloads, |inner, w| {
        eprintln!("running {} ...", w.name());
        let mut caches = Vec::new();
        for &size in &sizes {
            for &a in &ways {
                caches.push(SetAssocCache::new(
                    CacheConfig::direct_mapped(size, 64).with_assoc(a),
                ));
            }
        }
        let (_, out) = inner.sinks(w.scaled(scale), None, caches).unwrap();
        out
    });

    let mut table = Table::new(
        "assoc",
        &["program", "cache", "ways", "fetches", "miss_ratio"],
    );
    for (w, caches) in workloads.iter().zip(&passes) {
        for c in caches {
            table.row(vec![
                w.name().into(),
                Cell::Bytes(c.config().size.into()),
                c.config().assoc.into(),
                c.stats().fetches().into(),
                Cell::Float(c.stats().miss_ratio(), 4),
            ]);
        }
    }
    Sweep {
        tables: vec![table],
        notes: vec![
            "expectation: associativity helps modestly (conflict misses among busy blocks),".into(),
            "but linear allocation leaves little for LRU to exploit — supporting the".into(),
            "paper's focus on direct-mapped caches.".into(),
        ],
        ..Sweep::default()
    }
}
