//! A2 (ablation) — collection frequency: Cheney semispace size vs `O_gc`.
//! §6 argues the collector should run *infrequently*; this sweep makes the
//! trade explicit by shrinking the semispaces.
//!
//! `--jobs N` runs the semispace sizes concurrently (each is an
//! independent control + collected pair on the engine).

use cachegc_core::report::{Cell, Table};
use cachegc_core::{CollectorSpec, ExperimentConfig, Runner, FAST, SLOW};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};
use crate::human_bytes;

pub static EXPERIMENT: Experiment = Experiment {
    name: "a2_semispace_sweep",
    title: "A2: Cheney semispace-size sweep, compile workload",
    about: "Cheney semispace-size sweep (compile workload)",
    default_scale: 4,
    cells: 10,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    cfg.cache_sizes = vec![64 << 10, 1 << 20];

    let semispaces: Vec<u32> = vec![512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20];
    let results = runner.map(&semispaces, |inner, &semi| {
        let spec = CollectorSpec::Cheney {
            semispace_bytes: semi,
        };
        eprintln!("running with {} semispaces ...", human_bytes(semi));
        inner.comparison(Workload::Compile.scaled(scale), &cfg, spec)
    });

    let mut table = Table::new(
        "semispace",
        &[
            "semispace",
            "collections",
            "copied_bytes",
            "slow_64k",
            "fast_64k",
            "slow_1m",
            "fast_1m",
        ],
    );
    let mut notes = Vec::new();
    for (&semi, result) in semispaces.iter().zip(&results) {
        let cmp = match result {
            Ok(c) => c,
            Err(e) => {
                notes.push(format!("{:>10}  failed: {e}", human_bytes(semi)));
                continue;
            }
        };
        table.row(vec![
            Cell::Bytes(semi.into()),
            cmp.collected.gc.collections.into(),
            cmp.collected.gc.bytes_copied.into(),
            Cell::Pct(cmp.gc_overhead(64 << 10, 64, &SLOW)),
            Cell::Pct(cmp.gc_overhead(64 << 10, 64, &FAST)),
            Cell::Pct(cmp.gc_overhead(1 << 20, 64, &SLOW)),
            Cell::Pct(cmp.gc_overhead(1 << 20, 64, &FAST)),
        ]);
    }
    notes.push("expectation: larger semispaces => fewer collections => lower O_gc,".into());
    notes.push("approaching the no-collection control; §6's 'collect rarely' advice.".into());
    Sweep {
        tables: vec![table],
        notes,
        ..Sweep::default()
    }
}
