//! E1 — the §3 test-program table: lines, bytes allocated, instructions
//! executed, and data references for each program, run without collection.
//!
//! The five programs are independent trace passes, so `--jobs N` runs up
//! to N of them concurrently (`--jobs 1` is the sequential oracle).

use std::time::Instant;

use cachegc_core::report::{Cell, Table};
use cachegc_core::Runner;
use cachegc_trace::RefCounter;
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};
use crate::{GridReport, GridRun};

pub static EXPERIMENT: Experiment = Experiment {
    name: "e1_programs",
    title: "E1: test programs (§3 table)",
    about: "the §3 test-program table",
    default_scale: 4,
    cells: 5,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let t0 = Instant::now();
    let outs = runner.map(&Workload::ALL, |inner, w| {
        let t = Instant::now();
        let (stats, sinks) = inner
            .sinks(w.scaled(scale), None, vec![RefCounter::new()])
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let counter = sinks.into_iter().next().expect("one counter");
        (stats, counter, t.elapsed())
    });
    let total_wall = t0.elapsed();

    let mut table = Table::new(
        "programs",
        &[
            "program",
            "analog",
            "lines",
            "alloc_bytes",
            "insns",
            "refs",
            "refs_per_insn",
        ],
    );
    let mut runs = Vec::new();
    for (w, (stats, counter, wall)) in Workload::ALL.iter().zip(&outs) {
        let insns = stats.instructions.program();
        let refs = counter.total();
        table.row(vec![
            w.name().into(),
            w.paper_analog().into(),
            w.lines().into(),
            stats.allocated_bytes.into(),
            insns.into(),
            refs.into(),
            Cell::Float(refs as f64 / insns as f64, 3),
        ]);
        runs.push(GridRun {
            workload: w.name().into(),
            scale,
            events: refs,
            cells: 1,
            wall: *wall,
        });
    }
    Sweep {
        tables: vec![table],
        notes: vec![
            "paper: orbit 15k lines/263mb, imps 42k/1.8gb, lp 2.5k/216mb,".into(),
            "       nbody .6k/747mb, gambit 15k/527mb; refs/insns ≈ 0.26-0.29".into(),
        ],
        grid: Some(GridReport {
            binary: "e1_programs".into(),
            jobs: runner.engine().jobs,
            runs,
            total_wall,
        }),
        ..Sweep::default()
    }
}
