//! E10 — the §7 block-behavior census:
//!
//! * multi-cycle dynamic blocks: ≥90 % active in ≤4 allocation cycles;
//! * most dynamic blocks referenced 32–63 times (64-byte blocks);
//! * 59–155 busy static blocks (<0.02 % of active blocks) taking ~75 % of
//!   all references, including the stack and the runtime's hot vector.
//!
//! `--jobs N` runs the five programs concurrently; each pass goes through
//! the experiment engine (`Runner::sinks`).

use cachegc_analysis::BlockTracker;
use cachegc_core::report::{Cell, Table};
use cachegc_core::Runner;
use cachegc_trace::Region;
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};

pub static EXPERIMENT: Experiment = Experiment {
    name: "e10_block_stats",
    title: "E10: block behavior census, 64k cache / 64b blocks (§7)",
    about: "the §7 block-behavior census (64k cache / 64b blocks)",
    default_scale: 2,
    cells: 5,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let reports = runner.map(&Workload::ALL, |inner, w| {
        eprintln!("running {} ...", w.name());
        let (_, sinks) = inner
            .sinks(w.scaled(scale), None, vec![BlockTracker::new(64 << 10, 64)])
            .unwrap();
        sinks.into_iter().next().expect("one tracker").finish()
    });

    let mut table = Table::new(
        "census",
        &[
            "program",
            "med_refs",
            "mc_le4",
            "busy",
            "busy_stack",
            "busy_static",
            "busy_refs",
        ],
    );
    for (w, r) in Workload::ALL.iter().zip(&reports) {
        let busy_stack = r.busy.iter().filter(|b| b.region == Region::Stack).count();
        let busy_static = r.busy.iter().filter(|b| b.region == Region::Static).count();
        table.row(vec![
            w.name().into(),
            r.median_dynamic_refs().into(),
            Cell::Pct(r.multi_cycle_active_le(4)),
            r.busy.len().into(),
            busy_stack.into(),
            busy_static.into(),
            Cell::Pct(r.busy_refs_fraction()),
        ]);
    }
    Sweep {
        tables: vec![table],
        notes: vec![
            "paper shape: >=90% of multi-cycle blocks active in <=4 cycles; dynamic blocks"
                .into(),
            "mostly referenced 32-63 times; 59-155 busy (mostly static/stack) blocks take ~75% of refs."
                .into(),
        ],
        ..Sweep::default()
    }
}
