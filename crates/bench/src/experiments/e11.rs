//! E11 — the §7 cache-activity graphs: cache blocks in ascending
//! reference-count order, each with its local miss ratio, plus the
//! cumulative miss / reference / miss-ratio curves. Four panels as in the
//! paper: compile at 64 KB, prove at 64 KB (the thrash-prone program),
//! rewrite at 64 KB (misses spread wide), and compile at 128 KB (the
//! larger cache tightens everything).
//!
//! Both compile panels ride *one* trace pass as a heterogeneous
//! [`Instrument`] set; `--jobs`/`--schedule` drive the engine and the
//! three workloads run concurrently.

use cachegc_analysis::{Activity, ActivityTracker, Instrument};
use cachegc_core::report::{Cell, Table};
use cachegc_core::{CacheConfig, Runner};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};
use crate::human_bytes;

/// One workload's panels: the cache sizes it is decomposed at.
const GROUPS: [(Workload, &[u32]); 3] = [
    (Workload::Compile, &[64 << 10, 128 << 10]),
    (Workload::Prove, &[64 << 10]),
    (Workload::Rewrite, &[64 << 10]),
];

pub static EXPERIMENT: Experiment = Experiment {
    name: "e11_cache_activity",
    title: "E11: cache-activity decomposition (§7 figures)",
    about: "the §7 cache-activity decomposition (four panels)",
    default_scale: 2,
    cells: 3,
    sweep,
};

fn panel(w: Workload, cache_bytes: u32, act: &Activity, summary: &mut Table, deciles: &mut Table) {
    let name = format!("{}@{}", w.name(), human_bytes(cache_bytes));
    summary.row(vec![
        Cell::text(name.clone()),
        Cell::Float(act.global_miss_ratio, 4),
        Cell::Float(act.max_cum_jump(), 4),
        act.worst_case_blocks(0.25).into(),
        act.best_case_blocks(0.01).into(),
    ]);
    // Sample the cumulative curves at deciles of the block ordering.
    let n = act.entries.len();
    for decile in [50, 80, 90, 95, 99, 100] {
        let i = (n * decile / 100).saturating_sub(1);
        let e = &act.entries[i];
        deciles.row(vec![
            Cell::text(name.clone()),
            decile.into(),
            e.refs.into(),
            Cell::Pct(e.cum_ref_fraction),
            Cell::Pct(e.cum_miss_fraction),
            Cell::Float(e.cum_miss_ratio, 4),
        ]);
    }
}

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let activities: Vec<Vec<Activity>> = runner.map(&GROUPS, |inner, &(w, sizes)| {
        eprintln!(
            "running {} ({} panels in one pass) ...",
            w.name(),
            sizes.len()
        );
        let instruments: Vec<Instrument> = sizes
            .iter()
            .map(|&s| ActivityTracker::new(CacheConfig::direct_mapped(s, 64)).into())
            .collect();
        let (_, out) = inner
            .instruments(w.scaled(scale), None, instruments)
            .unwrap();
        out.into_iter()
            .map(|i| i.into_activity().expect("activity instrument"))
            .collect()
    });

    let mut summary = Table::new(
        "activity",
        &[
            "panel",
            "global_miss_ratio",
            "max_cum_jump",
            "worst_case",
            "best_case",
        ],
    );
    let mut deciles = Table::new(
        "deciles",
        &["panel", "pct", "refs", "cum_refs", "cum_miss", "cum_ratio"],
    );
    for (&(w, sizes), acts) in GROUPS.iter().zip(&activities) {
        for (&size, act) in sizes.iter().zip(acts) {
            panel(w, size, act, &mut summary, &mut deciles);
        }
    }
    Sweep {
        tables: vec![summary, deciles],
        notes: vec![
            "paper shape: most refs and misses concentrate in the most-referenced blocks;".into(),
            "best-case blocks pull the final cumulative miss ratio down (orbit: 0.027->0.017);"
                .into(),
            "thrashing appears as a jump in the cumulative curve; 128k beats 64k everywhere."
                .into(),
        ],
        ..Sweep::default()
    }
}
