//! E12 — the §5 write-overhead check: the cost of writing dirty blocks
//! back to memory in a write-back cache, as a fraction of idealized run
//! time. The paper's preliminary measurements: slow processor almost
//! always < 1 %, fast processor < 3 % for caches of 1 MB or more.
//!
//! `--jobs N` runs the five programs concurrently and shards each grid
//! across worker threads.

use cachegc_core::report::{Cell, Table};
use cachegc_core::{write_back_overhead, writeback_cycles, ExperimentConfig, Runner, FAST, SLOW};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};
use crate::human_bytes;

pub static EXPERIMENT: Experiment = Experiment {
    name: "e12_write_overhead",
    title: "E12: write-back write overheads (§5), 64b blocks",
    about: "write-back write overheads (§5), 64b blocks",
    default_scale: 4,
    cells: 5,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];

    let reports = runner.map(&Workload::ALL, |inner, w| {
        eprintln!("running {} ...", w.name());
        inner.control(w.scaled(scale), &cfg).unwrap()
    });

    let mut cols = vec!["program".to_string(), "cpu".to_string()];
    cols.extend(cfg.cache_sizes.iter().map(|&s| human_bytes(s)));
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = Table::new("writeback", &cols);
    for (w, r) in Workload::ALL.iter().zip(&reports) {
        for cpu in [&SLOW, &FAST] {
            let wb = writeback_cycles(&r.memory, cpu, 64);
            let mut row = vec![Cell::text(w.name()), Cell::text(cpu.name)];
            row.extend(cfg.cache_sizes.iter().map(|&size| {
                let cell = r.cell(size, 64).unwrap();
                Cell::Pct(write_back_overhead(cell.stats.writebacks(), wb, r.i_prog))
            }));
            table.row(row);
        }
    }
    Sweep {
        tables: vec![table],
        notes: vec!["paper shape: slow <1% almost always; fast <3% for caches >=1m.".into()],
        ..Sweep::default()
    }
}
