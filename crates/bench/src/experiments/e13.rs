//! E13 — the §8 conjecture: *allocation can be faster than mutation*.
//!
//! The paper closes by conjecturing that a mostly-functional program that
//! "rides the allocation wave" — loading from just-allocated data in front
//! of the crest and storing fresh results just behind it — can out-perform
//! an imperative program whose objects are updated in place, because the
//! functional program's references are concentrated where the cache is
//! already warm, while the imperative program's locality is a matter of
//! chance.
//!
//! We measure the same computation on the *same data structure*: a
//! 4,096-pair list transformed over many generations — functional:
//! rebuild the list each generation (pure allocation, the old generation
//! becomes garbage); imperative: `set-car!` every pair of one long-lived
//! list in place. Both walk 48 KB of pairs per generation; the functional
//! version also allocates 48 KB per generation, which write-validate
//! makes free at the cache level.
//!
//! The cache grid of each variant runs through the packet engine
//! ([`Runner::drive`], under `--jobs`/`--schedule`).

use cachegc_core::report::{Cell, Table};
use cachegc_core::{miss_penalty_cycles, Cache, ExperimentConfig, PacketKind, Runner, FAST, SLOW};
use cachegc_gc::NoCollector;
use cachegc_trace::Context;
use cachegc_vm::Machine;

use super::{Experiment, Sweep};
use crate::human_bytes;

pub static EXPERIMENT: Experiment = Experiment {
    name: "e13_allocation_vs_mutation",
    title: "E13: allocation vs mutation (§8 conjecture 3)",
    about: "allocation vs mutation (§8 conjecture 3)",
    default_scale: 4,
    cells: 2,
    sweep,
};

fn functional(gens: u32) -> String {
    format!(
        "
(define (build n)
  (let loop ((i 0) (acc '()))
    (if (= i n) acc (loop (+ i 1) (cons i acc)))))
(define (evolve l)
  (if (null? l) '() (cons (+ (car l) 1) (evolve (cdr l)))))
(let loop ((g 0) (l (build 4096)) (sum 0))
  (if (= g {gens})
      sum
      (loop (+ g 1) (evolve l) (+ sum (car l)))))
"
    )
}

fn imperative(gens: u32) -> String {
    format!(
        "
(define (build n)
  (let loop ((i 0) (acc '()))
    (if (= i n) acc (loop (+ i 1) (cons i acc)))))
(define l (build 4096))
(define (evolve! l)
  (if (null? l) 'done
      (begin (set-car! l (+ (car l) 1)) (evolve! (cdr l)))))
(let loop ((g 0) (sum 0))
  (if (= g {gens})
      sum
      (begin (evolve! l) (loop (+ g 1) (+ sum (car l))))))
"
    )
}

fn measure(name: &str, src: &str, cfg: &ExperimentConfig, runner: &Runner, table: &mut Table) {
    // One pass: the grid rides the engine; reference and instruction
    // volumes come from the first cache's statistics and the machine.
    let sinks: Vec<Cache> = cfg.configs().into_iter().map(Cache::new).collect();
    let (i_prog, caches) = runner.drive(PacketKind::VmExecute, sinks, |fan| {
        let mut m = Machine::new(NoCollector::new(), fan);
        m.run_program(src).expect("runs");
        m.counters().program()
    });
    let refs = caches[0].stats().refs_by(Context::Mutator);

    eprintln!("{name}: {refs} refs, {i_prog} instructions");
    for cpu in [&SLOW, &FAST] {
        let mut row = vec![Cell::text(name), Cell::text(cpu.name)];
        row.extend(caches.iter().map(|cache| {
            let p = miss_penalty_cycles(&cfg.memory, cpu, cache.config().block);
            Cell::Pct((cache.stats().fetches() * p) as f64 / i_prog as f64)
        }));
        table.row(row);
    }
}

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    // E13's variants are ad-hoc Scheme sources, not registered workloads,
    // so there is no scenario key for them — both passes stay live.
    let gens = 150 * scale;
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    cfg.cache_sizes = vec![32 << 10, 64 << 10, 256 << 10, 1 << 20];

    let mut cols = vec!["variant".to_string(), "cpu".to_string()];
    cols.extend(cfg.cache_sizes.iter().map(|&s| human_bytes(s)));
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = Table::new("overhead", &cols);
    // The passes bypass the store-keyed terminals (no scenario key), so
    // progress is ticked by hand — one tick per variant, matching
    // `cells: 2`.
    measure("functional", &functional(gens), &cfg, runner, &mut table);
    if let Some(progress) = runner.ctx().progress {
        progress.tick(runner.ctx().store);
    }
    measure("imperative", &imperative(gens), &cfg, runner, &mut table);
    if let Some(progress) = runner.ctx().progress {
        progress.tick(runner.ctx().store);
    }
    Sweep {
        tables: vec![table],
        notes: vec![
            "reading: the functional version's working set is twice the imperative".into(),
            "version's (old + new generation vs one list), so mutation wins while the".into(),
            "list fits in cache and the two tie once neither does extra work — i.e.,".into(),
            "the conjecture holds only where the imperative program's locality is poor;".into(),
            "against a compact, reused imperative structure, allocation is not faster.".into(),
        ],
        ..Sweep::default()
    }
}
