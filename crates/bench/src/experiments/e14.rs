//! E14 — the collector zoo: every collection design in the tree (Cheney
//! semispace, generational with a large and with an aggressive
//! cache-sized nursery, Immix-style mark-region, and non-moving
//! mark-sweep) run over the same program under the §5 cache lens, plus
//! the §7 block-lifetime analysis for each design and for the
//! collection-disabled control.
//!
//! The interesting contrasts:
//!
//! * the compacting collectors pay `M_gc` for copying but reuse a small
//!   bump region; mark-sweep touches only live data plus headers but
//!   spreads allocation across the whole heap;
//! * Immix sits between: bump allocation into reclaimed lines, motion
//!   only for fragmented blocks, so `ΔI_prog` (table rehashing) appears
//!   only when evacuation actually moved something;
//! * mark-sweep never moves objects, so its `ΔI_prog` is exactly the
//!   zero the paper predicts for non-moving collection.
//!
//! `--jobs N` runs the block-lifetime passes concurrently; each
//! comparison's control and collected passes run through the engine.

use cachegc_analysis::BlockTracker;
use cachegc_core::report::{Cell, Table};
use cachegc_core::{CollectorSpec, ExperimentConfig, Runner, FAST, SLOW};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};
use crate::human_bytes;

pub static EXPERIMENT: Experiment = Experiment {
    name: "e14_collector_zoo",
    title: "E14: the collector zoo under the cache lens (§5, §7)",
    about: "five collector designs: cache overheads and block lifetimes",
    default_scale: 2,
    cells: 16,
    sweep,
};

/// The zoo. Heaps are sized so every design collects at scale 1: the
/// Immix and mark-sweep heaps match the Cheney collector's total
/// footprint (two 2 MB semispaces).
const SPECS: [CollectorSpec; 5] = [
    CollectorSpec::Cheney {
        semispace_bytes: 2 << 20,
    },
    CollectorSpec::Generational {
        nursery_bytes: 1 << 20,
        old_bytes: 24 << 20,
    },
    CollectorSpec::Generational {
        nursery_bytes: 256 << 10,
        old_bytes: 24 << 20,
    },
    CollectorSpec::Immix {
        heap_bytes: 4 << 20,
    },
    CollectorSpec::MarkSweep {
        heap_bytes: 4 << 20,
    },
];

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let cfg = ExperimentConfig::paper();
    let w = Workload::Lambda.scaled(scale);

    let mut gc_table = Table::new(
        "collections",
        &[
            "collector",
            "collections",
            "minor",
            "major",
            "bytes_copied",
            "bytes_swept",
            "lines_reclaimed",
        ],
    );
    let mut cols = vec!["collector".to_string(), "cpu".to_string()];
    cols.extend(cfg.cache_sizes.iter().map(|&s| human_bytes(s)));
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut ogc_table = Table::new("ogc", &cols);
    for spec in SPECS {
        eprintln!("running lambda under {} ...", spec.name());
        let cmp = runner
            .comparison(w, &cfg, spec)
            .unwrap_or_else(|e| panic!("{e}"));
        gc_table.row(vec![
            spec.name().into(),
            cmp.collected.gc.collections.into(),
            cmp.collected.gc.minor_collections.into(),
            cmp.collected.gc.major_collections.into(),
            cmp.collected.gc.bytes_copied.into(),
            cmp.collected.gc.bytes_swept.into(),
            cmp.collected.gc.lines_reclaimed.into(),
        ]);
        for cpu in [&SLOW, &FAST] {
            let mut row = vec![Cell::text(spec.name()), Cell::text(cpu.name)];
            row.extend(
                cfg.cache_sizes
                    .iter()
                    .map(|&size| Cell::Pct(cmp.gc_overhead(size, 64, cpu))),
            );
            ogc_table.row(row);
        }
    }

    // §7 lens: how each design reshapes dynamic-block lifetimes. The
    // control row is the allocation pattern with no collector at all.
    let designs: Vec<Option<CollectorSpec>> = std::iter::once(None)
        .chain(SPECS.into_iter().map(Some))
        .collect();
    let reports = runner.map(&designs, |inner, spec| {
        let (_, sinks) = inner
            .sinks(w, *spec, vec![BlockTracker::new(64 << 10, 64)])
            .unwrap_or_else(|e| panic!("{e}"));
        sinks.into_iter().next().expect("one tracker").finish()
    });
    let mut blocks_table = Table::new(
        "blocks",
        &[
            "collector",
            "dyn_blocks",
            "med_refs",
            "one_cycle",
            "busy_refs",
        ],
    );
    for (spec, r) in designs.iter().zip(&reports) {
        blocks_table.row(vec![
            Cell::text(spec.map_or_else(|| "none".to_string(), |s| s.name())),
            r.dynamic_blocks.into(),
            r.median_dynamic_refs().into(),
            Cell::Pct(r.one_cycle_fraction()),
            Cell::Pct(r.busy_refs_fraction()),
        ]);
    }

    Sweep {
        tables: vec![gc_table, ogc_table, blocks_table],
        notes: vec![
            "paper shape: compacting designs pay M_gc at small caches; mark-sweep".into(),
            "has zero bytes_copied and zero GC-induced program work; Immix copies".into(),
            "only out of fragmented blocks, so its bytes_copied sits far below".into(),
            "Cheney's while its lines_reclaimed accounts for the rest.".into(),
        ],
        ..Sweep::default()
    }
}
