//! E2 — the §5 miss-penalty table: cycles to service a miss for each block
//! size on the slow (30 ns) and fast (2 ns) processors, with the
//! Przybylski memory model. The table is static (no workload runs), so
//! `--scale` and `--jobs` are accepted but have nothing to do.

use cachegc_core::report::Table;
use cachegc_core::{miss_penalty_cycles, writeback_cycles, MainMemory, Runner, FAST, SLOW};

use super::{Experiment, Sweep};

pub static EXPERIMENT: Experiment = Experiment {
    name: "e2_penalties",
    title: "E2: miss penalties (§5 table)",
    about: "the §5 miss-penalty table",
    default_scale: 1,
    cells: 0,
    sweep,
};

fn sweep(_scale: u32, _runner: &Runner) -> Sweep {
    let mem = MainMemory::przybylski();
    let mut table = Table::new("penalties", &["cost", "b16", "b32", "b64", "b128", "b256"]);
    for cpu in [&SLOW, &FAST] {
        let mut row = vec![format!("{} penalty (cycles)", cpu.name).into()];
        row.extend([16u32, 32, 64, 128, 256].map(|b| miss_penalty_cycles(&mem, cpu, b).into()));
        table.row(row);
    }
    for cpu in [&SLOW, &FAST] {
        let mut row = vec![format!("{} writeback", cpu.name).into()];
        row.extend([16u32, 32, 64, 128, 256].map(|b| writeback_cycles(&mem, cpu, b).into()));
        table.row(row);
    }
    Sweep {
        tables: vec![table],
        notes: vec![
            "paper (derived from its memory model): slow 8/9/11/15/23, fast 120/135/165/225/345"
                .into(),
        ],
        ..Sweep::default()
    }
}
