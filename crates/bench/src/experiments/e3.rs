//! E3 — the §5 control-experiment figure: average cache overhead across
//! the five programs, with no garbage collection, for every cache size
//! (32 KB – 4 MB) and block size (16 – 256 B), on both processors.
//!
//! Expected shape (paper): larger caches and smaller blocks always win;
//! slow processor < 5 % even at 32 KB/16 B; fast processor needs ~1 MB
//! for a similar overhead.
//!
//! `--jobs N` splits the work two ways: the five programs run
//! concurrently, and within each pass the 40-cell cache grid is sharded
//! across crew workers as drain packets (under `--schedule`). `--jobs 1`
//! is the sequential oracle; per-cell statistics are bit-identical
//! either way.

use std::time::Instant;

use cachegc_core::report::{Cell, Table};
use cachegc_core::{ExperimentConfig, Processor, Runner, FAST, SLOW};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};
use crate::{human_bytes, GridReport, GridRun};

pub static EXPERIMENT: Experiment = Experiment {
    name: "e3_overhead_sweep",
    title: "E3: average cache overhead, no GC (§5 figure)",
    about: "average cache overhead without GC (§5 figure)",
    default_scale: 4,
    cells: 5,
    sweep,
};

fn cpu_table(cpu: &Processor, cfg: &ExperimentConfig, f: impl Fn(u32, u32) -> f64) -> Table {
    let mut cols = vec!["block".to_string()];
    cols.extend(cfg.cache_sizes.iter().map(|&s| human_bytes(s)));
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = Table::new(cpu.name, &cols);
    for &block in &cfg.block_sizes {
        let mut row = vec![Cell::text(format!("{block}b"))];
        row.extend(
            cfg.cache_sizes
                .iter()
                .map(|&size| Cell::Pct(f(size, block))),
        );
        table.row(row);
    }
    table
}

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let cfg = ExperimentConfig::paper();
    // Outer parallelism over programs, inner over grid cells.
    let t0 = Instant::now();
    let timed: Vec<_> = runner.map(&Workload::ALL, |inner, w| {
        eprintln!("running {} ...", w.name());
        let t = Instant::now();
        let r = inner
            .control(w.scaled(scale), &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        (r, t.elapsed())
    });
    let total_wall = t0.elapsed();
    let reports: Vec<_> = timed.iter().map(|(r, _)| r).collect();

    let mut tables = Vec::new();
    for cpu in [&SLOW, &FAST] {
        tables.push(cpu_table(cpu, &cfg, |size, block| {
            reports
                .iter()
                .map(|r| {
                    let cell = r.cell(size, block).expect("simulated");
                    r.cache_overhead(cell, cpu)
                })
                .sum::<f64>()
                / reports.len() as f64
        }));
    }

    let runs = Workload::ALL
        .iter()
        .zip(&timed)
        .map(|(w, (r, wall))| GridRun {
            workload: w.name().into(),
            scale,
            events: r.refs,
            cells: r.cells.len(),
            wall: *wall,
        })
        .collect();
    Sweep {
        tables,
        notes: vec![
            "paper shape: monotone improvement with cache size; smaller blocks better;".into(),
            "slow/32k/16b < 5%; fast needs ~1m for < 5%.".into(),
        ],
        grid: Some(GridReport {
            binary: "e3_overhead_sweep".into(),
            jobs: runner.engine().jobs,
            runs,
            total_wall,
        }),
        ..Sweep::default()
    }
}
