//! E4 — the §5 write-miss-policy comparison: how much fetch-on-write
//! increases average cache overhead relative to write-validate.
//!
//! Expected shape (paper): the penalty of fetch-on-write varies inversely
//! with block size and is nearly independent of cache size; on the slow
//! processor it costs at most ~1 % extra, on the fast processor from ~4 %
//! (256 B blocks) to ~20 % (16 B blocks).
//!
//! `--jobs N` runs the five programs concurrently and shards each
//! program's two policy grids across worker threads.

use cachegc_core::report::{Cell, Table};
use cachegc_core::{ExperimentConfig, Runner, WriteMissPolicy, FAST, SLOW};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};
use crate::human_bytes;

pub static EXPERIMENT: Experiment = Experiment {
    name: "e4_write_policy",
    title: "E4: fetch-on-write vs write-validate (§5)",
    about: "fetch-on-write vs write-validate (§5)",
    default_scale: 4,
    cells: 10,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let sizes = vec![32 << 10, 256 << 10, 1 << 20];
    let mut cfg_wv = ExperimentConfig::paper();
    cfg_wv.cache_sizes = sizes.clone();
    let cfg_fow = cfg_wv
        .clone()
        .with_write_miss(WriteMissPolicy::FetchOnWrite);

    let runs = runner.map(&Workload::ALL, |inner, w| {
        // With a trace store attached, the write-validate pass records
        // the scenario and the fetch-on-write grid replays it — one VM
        // execution drives both policy grids.
        eprintln!("running {} (both policies) ...", w.name());
        let wv = inner.control(w.scaled(scale), &cfg_wv).unwrap();
        let fow = inner.control(w.scaled(scale), &cfg_fow).unwrap();
        (wv, fow)
    });

    let mut cols = vec!["block".to_string()];
    cols.extend(sizes.iter().map(|&s| human_bytes(s)));
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut tables = Vec::new();
    for cpu in [&SLOW, &FAST] {
        let mut table = Table::new(cpu.name, &cols);
        for &block in &cfg_wv.block_sizes {
            let mut row = vec![Cell::text(format!("{block}b"))];
            row.extend(sizes.iter().map(|&size| {
                let delta: f64 = runs
                    .iter()
                    .map(|(wv, fow)| {
                        let a = wv.cache_overhead(wv.cell(size, block).unwrap(), cpu);
                        let b = fow.cache_overhead(fow.cell(size, block).unwrap(), cpu);
                        b - a
                    })
                    .sum::<f64>()
                    / runs.len() as f64;
                Cell::Pct(delta)
            }));
            table.row(row);
        }
        tables.push(table);
    }
    Sweep {
        tables,
        notes: vec![
            "paper shape: increase depends inversely on block size, ~independent of cache size;"
                .into(),
            "slow: ≲1%; fast: ~4% (256b) to ~20% (16b).".into(),
        ],
        ..Sweep::default()
    }
}
