//! E5 — the §6 figure: garbage-collection overhead of the Cheney semispace
//! collector versus cache size at 64-byte blocks, on both processors.
//!
//! Expected shape (paper, with 16 MB semispaces against multi-hundred-MB
//! allocation): compile/nbody/rewrite stay low (< 4 % slow, < 8 % fast);
//! nbody can go *negative* in mid-size caches when the collector happens
//! to separate thrashing blocks; prove (imps) is volatile when it
//! thrashes; lambda (lp) is ≥ 40 % because its live structure grows
//! monotonically and Cheney recopies it at every collection.
//!
//! Scaling substitution: the paper's 16 MB semispaces serve programs that
//! allocate hundreds of MB; we default to 2 MB semispaces against tens of
//! MB of allocation, preserving the collections-per-byte-allocated regime.
//! Override with `CACHEGC_SEMISPACE` (bytes).
//!
//! `--jobs N` runs workloads concurrently and, inside each comparison,
//! the control and collected passes on separate threads with the 8-cell
//! grid sharded across workers. `--jobs 1` is the sequential oracle.

use std::time::Instant;

use cachegc_core::report::{Cell, Table};
use cachegc_core::{CollectorSpec, ExperimentConfig, Runner, FAST, SLOW};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};
use crate::{human_bytes, GridReport, GridRun};

pub static EXPERIMENT: Experiment = Experiment {
    name: "e5_gc_overhead",
    title: "E5: O_gc with Cheney semispaces, 64b blocks (§6 figure)",
    about: "O_gc of the Cheney collector vs cache size (§6 figure)",
    default_scale: 4,
    cells: 10,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let semispace: u32 = std::env::var("CACHEGC_SEMISPACE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2 << 20);
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    eprintln!("Cheney semispaces: {}", human_bytes(semispace));

    let spec = CollectorSpec::Cheney {
        semispace_bytes: semispace,
    };
    let t0 = Instant::now();
    let results = runner.map(&Workload::ALL, |inner, w| {
        eprintln!("running {} (control + collected) ...", w.name());
        let t = Instant::now();
        let r = inner.comparison(w.scaled(scale), &cfg, spec);
        (r, t.elapsed())
    });
    let total_wall = t0.elapsed();

    let mut gc_table = Table::new(
        "collections",
        &[
            "program",
            "analog",
            "collections",
            "bytes_copied",
            "i_gc",
            "delta_i_prog",
        ],
    );
    let mut cols = vec!["program".to_string(), "cpu".to_string()];
    cols.extend(cfg.cache_sizes.iter().map(|&s| human_bytes(s)));
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut ogc_table = Table::new("ogc", &cols);

    let mut notes = Vec::new();
    let mut runs = Vec::new();
    for (w, (result, wall)) in Workload::ALL.iter().zip(&results) {
        let cmp = match result {
            Ok(c) => c,
            Err(e) => {
                notes.push(format!(
                    "{:10} failed: {e} (semispace too small for its live data)",
                    w.name()
                ));
                continue;
            }
        };
        gc_table.row(vec![
            w.name().into(),
            w.paper_analog().into(),
            cmp.collected.gc.collections.into(),
            cmp.collected.gc.bytes_copied.into(),
            cmp.collected.i_gc.into(),
            cmp.collected.delta_i_prog.into(),
        ]);
        for cpu in [&SLOW, &FAST] {
            let mut row = vec![Cell::text(w.name()), Cell::text(cpu.name)];
            row.extend(
                cfg.cache_sizes
                    .iter()
                    .map(|&size| Cell::Pct(cmp.gc_overhead(size, 64, cpu))),
            );
            ogc_table.row(row);
        }
        runs.push(GridRun {
            workload: w.name().into(),
            scale,
            events: cmp.control.refs,
            cells: cmp.control.cells.len() + cmp.collected.cells.len(),
            wall: *wall,
        });
    }
    notes.push(
        "paper shape: orbit/nbody/gambit ≤4% slow, ≤7.7% fast; nbody negative at 64-128k;".into(),
    );
    notes.push("imps volatile (thrashing); lp uniformly ≥40%.".into());
    Sweep {
        tables: vec![gc_table, ogc_table],
        notes,
        grid: Some(GridReport {
            binary: "e5_gc_overhead".into(),
            jobs: runner.engine().jobs,
            runs,
            total_wall,
        }),
        ..Sweep::default()
    }
}
