//! E6 — the §6 argument: lp's pathological Cheney overhead disappears
//! under a generational collector, which stops recopying the long-lived,
//! monotonically growing structure at every collection.
//!
//! `--jobs N` runs each comparison's control and collected passes as
//! separate packets with the grid sharded across crew workers.

use cachegc_core::report::{Cell, Table};
use cachegc_core::{CollectorSpec, ExperimentConfig, Runner, FAST, SLOW};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};
use crate::human_bytes;

pub static EXPERIMENT: Experiment = Experiment {
    name: "e6_generational",
    title: "E6: lambda (lp) under Cheney vs generational (§6)",
    about: "lambda under Cheney vs generational collection (§6)",
    default_scale: 4,
    cells: 4,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    cfg.cache_sizes = vec![64 << 10, 256 << 10, 1 << 20];

    let w = Workload::Lambda.scaled(scale);
    let specs = [
        CollectorSpec::Cheney {
            semispace_bytes: 2 << 20,
        },
        CollectorSpec::Generational {
            nursery_bytes: 1 << 20,
            old_bytes: 24 << 20,
        },
    ];
    let mut gc_table = Table::new(
        "collections",
        &["collector", "collections", "minor", "major", "bytes_copied"],
    );
    let mut cols = vec!["collector".to_string(), "cpu".to_string()];
    cols.extend(cfg.cache_sizes.iter().map(|&s| human_bytes(s)));
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut ogc_table = Table::new("ogc", &cols);
    for spec in specs {
        eprintln!("running lambda under {} ...", spec.name());
        let cmp = runner
            .comparison(w, &cfg, spec)
            .unwrap_or_else(|e| panic!("{e}"));
        gc_table.row(vec![
            spec.name().into(),
            cmp.collected.gc.collections.into(),
            cmp.collected.gc.minor_collections.into(),
            cmp.collected.gc.major_collections.into(),
            cmp.collected.gc.bytes_copied.into(),
        ]);
        for cpu in [&SLOW, &FAST] {
            let mut row = vec![Cell::text(spec.name()), Cell::text(cpu.name)];
            row.extend(
                cfg.cache_sizes
                    .iter()
                    .map(|&size| Cell::Pct(cmp.gc_overhead(size, 64, cpu))),
            );
            ogc_table.row(row);
        }
    }
    Sweep {
        tables: vec![gc_table, ogc_table],
        notes: vec![
            "paper shape: Cheney ≥40% for lp; 'a simple generational collector would".into(),
            "avoid this problem' — the generational rows should be far lower.".into(),
        ],
        ..Sweep::default()
    }
}
