//! E7 — the §6 argument against *aggressive* collection: a generational
//! collector whose nursery is sized to the cache collects far more often
//! and copies far more not-yet-dead data; the extra copying cost swamps
//! whatever cache-overhead improvement it can buy.
//!
//! Sweeps the nursery from cache-sized (aggressive, à la Wilson et al.)
//! up to infrequent, and reports collections, bytes promoted, and O_gc.
//! `--jobs N` runs the nursery sizes concurrently (each is an independent
//! control + collected pair).

use cachegc_core::report::{Cell, Table};
use cachegc_core::{CollectorSpec, ExperimentConfig, Runner, FAST, SLOW};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};
use crate::human_bytes;

pub static EXPERIMENT: Experiment = Experiment {
    name: "e7_aggressive",
    title: "E7: aggressive vs infrequent generational collection (§6), 64k cache",
    about: "aggressive vs infrequent generational collection (§6)",
    default_scale: 4,
    cells: 10,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let cache_size = 64 << 10;
    let mut cfg = ExperimentConfig::paper();
    cfg.block_sizes = vec![64];
    cfg.cache_sizes = vec![cache_size];

    let nurseries: Vec<u32> = vec![64 << 10, 128 << 10, 256 << 10, 1 << 20, 4 << 20];
    let comparisons = runner.map(&nurseries, |inner, &nursery| {
        let spec = CollectorSpec::Generational {
            nursery_bytes: nursery,
            old_bytes: 24 << 20,
        };
        eprintln!("running compile with nursery {} ...", human_bytes(nursery));
        inner
            .comparison(Workload::Compile.scaled(scale), &cfg, spec)
            .unwrap_or_else(|e| panic!("{e}"))
    });

    let mut table = Table::new(
        "aggressive",
        &[
            "nursery",
            "minors",
            "promoted_bytes",
            "copied_bytes",
            "ogc_slow",
            "ogc_fast",
            "total_fast",
        ],
    );
    for (&nursery, cmp) in nurseries.iter().zip(&comparisons) {
        let o_slow = cmp.gc_overhead(cache_size, 64, &SLOW);
        let o_fast = cmp.gc_overhead(cache_size, 64, &FAST);
        let total_fast = cmp.control_overhead(cache_size, 64, &FAST) + o_fast;
        table.row(vec![
            Cell::Bytes(nursery.into()),
            cmp.collected.gc.minor_collections.into(),
            cmp.collected.gc.bytes_promoted.into(),
            cmp.collected.gc.bytes_copied.into(),
            Cell::Pct(o_slow),
            Cell::Pct(o_fast),
            Cell::Pct(total_fast),
        ]);
    }
    Sweep {
        tables: vec![table],
        notes: vec![
            "paper shape: a cache-sized (aggressive) nursery collects more often, leaves".into(),
            "less time for objects to die, promotes more, and costs more than it saves;".into(),
            "overheads should fall as the nursery grows.".into(),
        ],
        ..Sweep::default()
    }
}
