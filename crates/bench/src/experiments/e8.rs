//! E8 — the §7 cache-miss sweep plot: misses over time, one row per cache
//! block of a 64 KB cache with 64-byte blocks, for a run of the compile
//! workload without collection. The allocation pointer appears as broken
//! diagonal lines sweeping the cache.
//!
//! The full-resolution plot comes back as an artifact (`e8_sweep.txt`)
//! and a downsampled excerpt as a note. The trace pass goes through the
//! experiment engine (`Runner::sinks`), so `--jobs`/`--schedule` apply.

use cachegc_analysis::SweepPlot;
use cachegc_core::report::{Cell, Table};
use cachegc_core::{CacheConfig, Runner};
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};

pub static EXPERIMENT: Experiment = Experiment {
    name: "e8_sweep_plot",
    title: "E8: cache-miss sweep plot, compile, 64k/64b (§7)",
    about: "the §7 cache-miss sweep plot (compile, 64k/64b)",
    default_scale: 1,
    cells: 1,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let cfg = CacheConfig::direct_mapped(64 << 10, 64);
    eprintln!("running compile ...");
    let (_, sinks) = runner
        .sinks(
            Workload::Compile.scaled(scale),
            None,
            vec![SweepPlot::new(cfg, 1024)],
        )
        .unwrap();
    let plot = sinks.into_iter().next().expect("one plot");

    let full = plot.render_ascii(4000);
    let mut table = Table::new(
        "sweep",
        &["workload", "columns", "cache_blocks", "dot_fraction"],
    );
    table.row(vec![
        "compile".into(),
        plot.width().into(),
        plot.height().into(),
        Cell::Float(plot.fraction_of_cells_with_dots(), 4),
    ]);

    // Downsample to an ~100x32 excerpt for the terminal.
    let (w, h) = (plot.width(), plot.height());
    let (cols, rows) = (100.min(w), 32.min(h));
    let mut excerpt = format!(
        "full plot in e8_sweep.txt\n\ndownsampled excerpt ({cols}x{rows}); '*' = >=1 miss; block 0 at the bottom:"
    );
    for ry in (0..rows).rev() {
        excerpt.push('\n');
        for rx in 0..cols {
            let mut dot = false;
            for y in (ry * h / rows)..((ry + 1) * h / rows) {
                for x in (rx * w / cols)..((rx + 1) * w / cols) {
                    dot |= plot.dot(x, y);
                }
            }
            excerpt.push(if dot { '*' } else { ' ' });
        }
    }
    Sweep {
        tables: vec![table],
        notes: vec![
            excerpt,
            String::new(),
            "paper shape: broken diagonal allocation-miss lines sweeping the cache;".into(),
            "slope follows the allocation rate; thrashing would appear as horizontal stripes."
                .into(),
        ],
        artifacts: vec![("e8_sweep.txt".into(), full)],
        ..Sweep::default()
    }
}
