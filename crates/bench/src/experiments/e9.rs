//! E9 — the §7 lifetime figure: the cumulative distribution of
//! dynamic-block lifetimes (64-byte blocks) for each program, with the
//! fraction of one-cycle blocks in a 64 KB cache marked on each curve.
//!
//! `--jobs N` runs the five programs concurrently; each pass goes through
//! the experiment engine (`Runner::sinks`).

use cachegc_analysis::BlockTracker;
use cachegc_core::report::{Cell, Table};
use cachegc_core::Runner;
use cachegc_workloads::Workload;

use super::{Experiment, Sweep};

const POWERS: [u32; 7] = [14, 16, 18, 20, 22, 24, 26];

pub static EXPERIMENT: Experiment = Experiment {
    name: "e9_lifetimes",
    title: "E9: dynamic-block lifetime CDF, 64b blocks (§7 figure)",
    about: "dynamic-block lifetime CDF, 64b blocks (§7 figure)",
    default_scale: 2,
    cells: 5,
    sweep,
};

fn sweep(scale: u32, runner: &Runner) -> Sweep {
    let reports = runner.map(&Workload::ALL, |inner, w| {
        eprintln!("running {} ...", w.name());
        let (_, sinks) = inner
            .sinks(w.scaled(scale), None, vec![BlockTracker::new(64 << 10, 64)])
            .unwrap();
        sinks.into_iter().next().expect("one tracker").finish()
    });

    let mut cols = vec!["program".to_string(), "dyn_blocks".to_string()];
    cols.extend(POWERS.iter().map(|p| format!("le_2p{p}")));
    cols.push("one_cycle".to_string());
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = Table::new("lifetimes", &cols);
    for (w, report) in Workload::ALL.iter().zip(&reports) {
        let mut row = vec![Cell::text(w.name()), report.dynamic_blocks.into()];
        row.extend(
            POWERS
                .iter()
                .map(|&p| Cell::Pct(report.lifetime_cdf(1 << p))),
        );
        row.push(Cell::Pct(report.one_cycle_fraction()));
        table.row(row);
    }
    Sweep {
        tables: vec![table],
        notes: vec![
            "paper shape: about half (or more) of dynamic blocks live <=64k references;".into(),
            "at least half, often >80%, are one-cycle blocks in a 64k cache.".into(),
        ],
        ..Sweep::default()
    }
}
