//! The experiment sweeps as callable library functions.
//!
//! Each of the paper's tables and figures used to live only inside a
//! `src/bin/` `main`; the golden-results harness needs to *call* them and
//! capture their [`Table`]s, so the sweep logic lives here and every
//! binary is a thin shim over [`run_main`]. A sweep is a pure function of
//! `(scale, ctx)` — progress goes to stderr, everything user-visible
//! comes back in the [`Sweep`]: the typed tables, the paper-shape notes
//! printed after them, side-channel artifacts (e.g. E8's full-resolution
//! plot), and the optional `BENCH_grid.json` performance record.
//!
//! The [`Runner`] carries the engine configuration and, optionally, a
//! shared [`TraceStore`](cachegc_core::TraceStore): sweeps drive their
//! passes through the runner's terminals, so a store attached by the
//! caller (the CLI's `--trace-cache`, or `golden_check` spanning one
//! store across all sixteen sweeps) makes each unique `(workload, scale,
//! collector)` scenario execute its VM once and replay everywhere else.
//!
//! [`ALL`] is the registry the `golden_check` binary iterates.

use std::path::PathBuf;
use std::sync::Arc;

use cachegc_core::report::{Cell, Table};
use cachegc_core::telemetry::{probe, Counter};
use cachegc_core::{
    chrome_trace_json, Manifest, ManifestConfig, Progress, Runner, Telemetry, TimelineRecorder,
};

use crate::cli::MetricsArg;
use crate::{header, ExperimentArgs, GridReport};

mod a1;
mod a2;
mod e1;
mod e10;
mod e11;
mod e12;
mod e13;
mod e14;
mod e2;
mod e3;
mod e4;
mod e5;
mod e6;
mod e7;
mod e8;
mod e9;

/// Everything one experiment sweep produces.
#[derive(Debug, Default)]
pub struct Sweep {
    /// The experiment's result tables, in report order.
    pub tables: Vec<Table>,
    /// Paper-shape commentary printed after the tables.
    pub notes: Vec<String>,
    /// Side-channel files `(path, contents)` the CLI shim writes (the
    /// golden harness ignores them).
    pub artifacts: Vec<(String, String)>,
    /// Performance-trajectory record for `BENCH_grid.json`, if this sweep
    /// measures one.
    pub grid: Option<GridReport>,
}

/// One registered experiment: identity, CLI text, and its sweep function.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Binary name, e.g. `e4_write_policy`; also keys golden file names.
    pub name: &'static str,
    /// Header line printed before the sweep runs.
    pub title: &'static str,
    /// One-line description for `--help`.
    pub about: &'static str,
    /// Default `--scale`.
    pub default_scale: u32,
    /// Driver passes one sweep makes (each is one [`Progress`] tick):
    /// calls into the [`Runner`] terminals, plus any passes the sweep
    /// ticks by hand. Zero for static experiments.
    pub cells: usize,
    /// The sweep itself.
    pub sweep: fn(u32, &Runner) -> Sweep,
}

/// Every experiment binary, in the order EXPERIMENTS.md documents them.
pub static ALL: [Experiment; 16] = [
    e1::EXPERIMENT,
    e2::EXPERIMENT,
    e3::EXPERIMENT,
    e4::EXPERIMENT,
    e5::EXPERIMENT,
    e6::EXPERIMENT,
    e7::EXPERIMENT,
    e8::EXPERIMENT,
    e9::EXPERIMENT,
    e10::EXPERIMENT,
    e11::EXPERIMENT,
    e12::EXPERIMENT,
    e13::EXPERIMENT,
    e14::EXPERIMENT,
    a1::EXPERIMENT,
    a2::EXPERIMENT,
];

/// Look up a registered experiment by binary name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.name == name)
}

/// The whole CLI shim: parse the uniform arguments, run the sweep, render
/// the tables, print the notes, write artifacts and `--csv` output, and
/// append the grid record. Every `src/bin/` main calls this and nothing
/// else.
pub fn run_main(exp: &Experiment) {
    let args = ExperimentArgs::parse(exp.name, exp.about, exp.default_scale);
    header(&format!(
        "{}, scale {}, jobs {}",
        exp.title, args.scale, args.jobs
    ));
    let store = args.trace_store();
    // `--trace-export` needs a span-capturing registry even when
    // `--metrics off` leaves the manifest unwritten.
    let telemetry = (args.metrics.enabled() || args.trace_export.enabled()).then(|| {
        Arc::new(if args.trace_export.enabled() {
            Telemetry::with_spans()
        } else {
            Telemetry::new()
        })
    });
    let timeline = args
        .timeline
        .enabled()
        .then(|| TimelineRecorder::new(args.timeline.spec()));
    let progress = args.progress.then(|| Progress::stderr(exp.name, exp.cells));
    let mut runner = Runner::new(args.engine());
    if let Some(store) = &store {
        runner = runner.with_store(store);
    }
    if let Some(telemetry) = &telemetry {
        runner = runner.with_telemetry(telemetry);
    }
    if let Some(timeline) = &timeline {
        runner = runner.with_timeline(timeline);
    }
    if let Some(progress) = &progress {
        runner = runner.with_progress(progress);
    }
    let sweep = {
        // The shard makes the main thread's probes land in the registry;
        // worker threads attach their own inside the engine drivers. The
        // per-experiment phase drops first (declaration order), while the
        // shard is still attached.
        let _shard = telemetry.as_ref().map(|t| t.attach());
        if args.jobs_clamped() {
            probe!(Counter::JobsClamped);
            let msg = format!(
                "requested {} jobs, machine has {}: running {} workers",
                args.jobs_requested, args.jobs, args.jobs
            );
            match &telemetry {
                Some(t) => t.warn(&msg),
                None => eprintln!("warning: {msg}"),
            }
        }
        let _exp_phase = telemetry.is_some().then(|| probe::phase_cpu(exp.name));
        (exp.sweep)(args.scale, &runner)
    };
    for t in &sweep.tables {
        println!();
        print!("{}", t.render());
    }
    if !sweep.notes.is_empty() {
        println!();
        for n in &sweep.notes {
            println!("{n}");
        }
    }
    for (path, contents) in &sweep.artifacts {
        match std::fs::write(path, contents) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    args.write_csv(&sweep.tables.iter().collect::<Vec<_>>());
    if let Some(grid) = &sweep.grid {
        grid.write();
    }
    if let Some(store) = &store {
        eprintln!("trace cache: {}", store.stats());
    }
    // The timeline and trace exports are stderr/file side channels: the
    // result tables on stdout stay byte-identical with the flags on.
    if let (Some(recorder), Some(path)) = (&timeline, args.timeline.path(exp.name)) {
        match recorder.write_jsonl(exp.name, &path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        eprint!("{}", recorder.summary_table());
    }
    if let Some(telemetry) = &telemetry {
        let snapshot = telemetry.snapshot();
        if let Some(path) = args.trace_export.path(exp.name) {
            let trace = chrome_trace_json(&snapshot);
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(&path, trace) {
                Ok(()) => eprintln!(
                    "wrote {} ({} spans on {} threads)",
                    path.display(),
                    snapshot.spans.len(),
                    snapshot.threads.len()
                ),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        let manifest = Manifest::gather(
            ManifestConfig {
                experiment: exp.name.to_string(),
                scale: args.scale,
                jobs: args.jobs,
                jobs_requested: args.jobs_requested,
                schedule: args.schedule.name().to_string(),
                trace_cache: args.trace_cache.describe(),
            },
            &snapshot,
            store.as_ref(),
        );
        match &args.metrics {
            // `--trace-export` alone keeps the registry alive without a
            // metrics sink; nothing else to emit.
            MetricsArg::Off => {}
            MetricsArg::Table => {
                for t in timing_tables(&manifest) {
                    println!();
                    print!("{}", t.render());
                }
            }
            MetricsArg::Json(path) => {
                let path = path
                    .clone()
                    .unwrap_or_else(|| default_manifest_path(exp.name));
                match manifest.write(&path) {
                    Ok(()) => eprintln!("wrote {}", path.display()),
                    Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
                }
            }
        }
        let warnings = snapshot.counter(Counter::Warnings);
        if warnings > 0 {
            eprintln!(
                "{}: {warnings} warning{} during this run (details above)",
                exp.name,
                if warnings == 1 { "" } else { "s" }
            );
        }
    }
}

/// Where `--metrics json` lands without an explicit path.
pub fn default_manifest_path(experiment: &str) -> PathBuf {
    PathBuf::from("results/manifest").join(format!("{experiment}.json"))
}

/// Render a gathered [`Manifest`] as the human `--metrics table` view:
/// one table of phase timings, one of the nonzero counters.
fn timing_tables(manifest: &Manifest) -> Vec<Table> {
    let mut phases = Table::new("phases", &["phase", "count", "wall_ms", "cpu_ms"]);
    for (name, stats) in &manifest.phases {
        phases.row(vec![
            Cell::text(name.clone()),
            stats.count.into(),
            Cell::Float(stats.wall_ns as f64 / 1e6, 3),
            Cell::Float(stats.cpu_ns as f64 / 1e6, 3),
        ]);
    }
    let mut counters = Table::new("counters", &["counter", "value"]);
    for &(name, value) in &manifest.counters {
        if value > 0 {
            counters.row(vec![Cell::text(name), value.into()]);
        }
    }
    vec![phases, counters]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for e in &ALL {
            assert!(std::ptr::eq(find(e.name).unwrap(), e));
            assert_eq!(ALL.iter().filter(|o| o.name == e.name).count(), 1);
        }
        assert!(find("e99_nonsense").is_none());
    }

    #[test]
    fn jobs_split_covers_edges() {
        use cachegc_core::EngineConfig;
        assert_eq!(Runner::new(EngineConfig::jobs(8)).split_jobs(5), (5, 1));
        assert_eq!(Runner::new(EngineConfig::jobs(8)).split_jobs(2), (2, 4));
        assert_eq!(Runner::new(EngineConfig::jobs(1)).split_jobs(5), (1, 1));
        // The runner a `map` task receives keeps the store reference.
        let store = cachegc_core::TraceStore::unbounded();
        let runner = Runner::new(EngineConfig::jobs(4)).with_store(&store);
        let seen = runner.map(&[0u8, 1], |inner, _| inner.ctx().store.is_some());
        assert_eq!(seen, vec![true, true]);
    }

    #[test]
    fn static_experiment_sweeps_run_quickly() {
        // E2 is workload-free; exercise the library path end to end.
        let sweep = (e2::EXPERIMENT.sweep)(1, &Runner::sequential());
        assert_eq!(sweep.tables.len(), 1);
        assert_eq!(sweep.tables[0].name(), "penalties");
        assert_eq!(sweep.tables[0].len(), 4);
    }
}
