//! Golden-results regression harness.
//!
//! Every experiment's tables are checked into `results/expected/` as CSV
//! (one file per table, named `<experiment>__<table>.csv`), regenerated at
//! a fixed, cheap configuration: `--scale 1 --jobs 2 --schedule ws`. The
//! `golden_check` binary reruns every sweep in-process through
//! [`crate::experiments::ALL`] and diffs the live tables cell-by-cell
//! against the goldens, so a regression in the §5 penalty tables or the
//! §7 miss decompositions fails CI naming the exact table, row, and
//! column that drifted instead of shipping silently.
//!
//! Comparison is typed: `Int`/`Count`/`Bytes`/`Text` cells must match
//! exactly; `Float`/`Pct` cells compare under a relative epsilon
//! ([`Tolerance`]), with non-finite values equal only to the empty cell
//! they serialize as. The sweeps are deterministic (the parallel engine is
//! property-tested bit-identical to its sequential oracle), so in practice
//! even the float cells match byte for byte and `--bless` regenerates the
//! goldens reproducibly.

use std::fmt;
use std::path::{Path, PathBuf};

use cachegc_core::report::{Cell, Table};
use cachegc_core::{EngineConfig, PacketKind, Runner, Schedule};

use crate::experiments::Experiment;

/// Directory the goldens live in, relative to the repository root.
pub const GOLDEN_DIR: &str = "results/expected";

/// The fixed configuration goldens are defined at.
pub fn golden_engine() -> EngineConfig {
    EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing)
}

/// The fixed `--scale` goldens are defined at.
pub const GOLDEN_SCALE: u32 = 1;

/// Relative-epsilon tolerance for `Float`/`Pct` cells. Everything else is
/// always compared exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Two floats `a`, `b` match when `|a-b| <= rel_eps * max(|a|,|b|)`,
    /// or exactly when `rel_eps` is zero.
    pub rel_eps: f64,
}

impl Tolerance {
    /// Exact comparison for every cell type.
    pub const EXACT: Tolerance = Tolerance { rel_eps: 0.0 };
}

impl Default for Tolerance {
    /// Absorbs last-digit formatting jitter, nothing more: the sweeps are
    /// deterministic, so goldens normally match exactly.
    fn default() -> Self {
        Tolerance { rel_eps: 1e-9 }
    }
}

/// True if `a` and `b` match under the relative epsilon.
pub fn approx_eq(a: f64, b: f64, rel_eps: f64) -> bool {
    a == b || (a - b).abs() <= rel_eps * a.abs().max(b.abs())
}

/// One way a live table deviates from its golden.
#[derive(Debug, Clone, PartialEq)]
pub enum Drift {
    /// The golden file is missing or unreadable.
    MissingGolden {
        /// Where the golden was expected.
        path: PathBuf,
        /// Why it could not be read.
        reason: String,
    },
    /// The column headers changed.
    Columns {
        /// Golden columns.
        expected: Vec<String>,
        /// Live columns.
        actual: Vec<String>,
    },
    /// The number of data rows changed.
    RowCount {
        /// Golden row count.
        expected: usize,
        /// Live row count.
        actual: usize,
    },
    /// One cell's value drifted.
    Cell {
        /// Zero-based data-row index.
        row: usize,
        /// The first cell of that row, as a human row label.
        row_label: String,
        /// Column name.
        column: String,
        /// Golden value (CSV form).
        expected: String,
        /// Live value (CSV form).
        actual: String,
    },
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drift::MissingGolden { path, reason } => {
                write!(
                    f,
                    "no golden at {} ({reason}); run `golden_check --bless` to create it",
                    path.display()
                )
            }
            Drift::Columns { expected, actual } => {
                write!(
                    f,
                    "columns changed: expected [{}], got [{}]",
                    expected.join(", "),
                    actual.join(", ")
                )
            }
            Drift::RowCount { expected, actual } => {
                write!(f, "row count changed: expected {expected}, got {actual}")
            }
            Drift::Cell {
                row,
                row_label,
                column,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "row {row} ('{row_label}'), column '{column}': expected {expected:?}, got {actual:?}"
                )
            }
        }
    }
}

/// True if a live cell matches its golden under the typed rules: the
/// *live* cell's variant picks the rule, because the golden side has been
/// through CSV and no longer distinguishes `Count` from `Bytes` or `Pct`
/// from `Float`.
pub fn cells_match(expected: &Cell, actual: &Cell, tol: &Tolerance) -> bool {
    match actual {
        Cell::Float(v, _) | Cell::Pct(v) => {
            if !v.is_finite() {
                // Non-finite serializes as the empty cell.
                return matches!(expected, Cell::Missing);
            }
            match expected.as_f64() {
                Some(e) => approx_eq(e, *v, tol.rel_eps),
                None => false,
            }
        }
        _ => expected.csv() == actual.csv(),
    }
}

/// Diff a live table against its golden, cell by cell. Column drift
/// short-circuits (positional comparison would be noise); row-count drift
/// is reported and the common prefix still diffed.
pub fn diff_tables(expected: &Table, actual: &Table, tol: &Tolerance) -> Vec<Drift> {
    let mut drifts = Vec::new();
    if expected.columns() != actual.columns() {
        drifts.push(Drift::Columns {
            expected: expected.columns().to_vec(),
            actual: actual.columns().to_vec(),
        });
        return drifts;
    }
    if expected.len() != actual.len() {
        drifts.push(Drift::RowCount {
            expected: expected.len(),
            actual: actual.len(),
        });
    }
    for (r, (erow, arow)) in expected.rows().iter().zip(actual.rows()).enumerate() {
        for (c, (e, a)) in erow.iter().zip(arow).enumerate() {
            if !cells_match(e, a, tol) {
                drifts.push(Drift::Cell {
                    row: r,
                    row_label: arow[0].render(),
                    column: actual.columns()[c].clone(),
                    expected: e.csv(),
                    actual: a.csv(),
                });
            }
        }
    }
    drifts
}

/// Where one table's golden lives: `<dir>/<experiment>__<table>.csv`.
pub fn golden_path(dir: &Path, experiment: &str, table: &str) -> PathBuf {
    dir.join(format!("{experiment}__{table}.csv"))
}

/// Diff every table of one experiment against its goldens. Returns
/// `(table name, drifts)` pairs for tables that deviated.
pub fn check_tables(
    dir: &Path,
    experiment: &str,
    tables: &[Table],
    tol: &Tolerance,
) -> Vec<(String, Vec<Drift>)> {
    check_tables_on(&Runner::sequential(), dir, experiment, tables, tol)
}

/// [`check_tables`], with each table's golden read and diff running as a
/// [`PacketKind::GoldenDiff`] packet on the runner's crew (inline when the
/// runner is sequential).
pub fn check_tables_on(
    runner: &Runner,
    dir: &Path,
    experiment: &str,
    tables: &[Table],
    tol: &Tolerance,
) -> Vec<(String, Vec<Drift>)> {
    runner
        .map_with(PacketKind::GoldenDiff, tables, |_, table| {
            let path = golden_path(dir, experiment, table.name());
            let drifts = match Table::read_csv(&path) {
                Ok(golden) => diff_tables(&golden, table, tol),
                Err(e) => vec![Drift::MissingGolden {
                    path: path.clone(),
                    reason: e.to_string(),
                }],
            };
            (table.name().to_string(), drifts)
        })
        .into_iter()
        .filter(|(_, drifts)| !drifts.is_empty())
        .collect()
}

/// Write every table of one experiment as its golden, creating `dir` as
/// needed. Returns the paths written.
///
/// # Errors
///
/// Any I/O error from creating directories or writing a file.
pub fn bless_tables(
    dir: &Path,
    experiment: &str,
    tables: &[Table],
) -> std::io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    for table in tables {
        let path = golden_path(dir, experiment, table.name());
        table.write_csv(&path)?;
        written.push(path);
    }
    Ok(written)
}

/// Run one experiment's sweep at the golden configuration (or an
/// override) and return its tables. The runner carries the engine and,
/// optionally, a [`cachegc_core::TraceStore`] shared across experiments
/// so each unique scenario's VM runs at most once per `golden_check`.
pub fn run_sweep(exp: &Experiment, scale: u32, runner: &Runner) -> Vec<Table> {
    (exp.sweep)(scale, runner).tables
}

/// Validate a run-manifest document for `golden_check --manifest`: the
/// generic schema/invariant checks of
/// [`cachegc_core::validate_manifest`], plus the stricter demands a real
/// sweep's manifest must meet — the VM executed at least once
/// (`vm_execute` has spans) or the store warm-started from spill
/// segments, the crew engine ran and reported per-worker stats, a store
/// that reports hits replayed, and every in-flight recording reservation
/// was resolved by the end of the run.
///
/// # Errors
///
/// A human-readable message naming the first violated property.
pub fn check_manifest(text: &str) -> Result<(), String> {
    cachegc_core::validate_manifest(text)?;
    let doc = cachegc_core::json::parse(text)?;
    let phase_count = |name: &str| {
        doc.get("phases")
            .and_then(|p| p.get(name))
            .and_then(|p| p.get("count"))
            .and_then(cachegc_core::json::Json::as_u64)
            .unwrap_or(0)
    };
    let store_field = |key: &str| {
        doc.get("store")
            .and_then(|s| s.get(key))
            .and_then(cachegc_core::json::Json::as_u64)
            .unwrap_or(0)
    };
    // A warm-started run can legitimately never touch the VM: every
    // scenario re-materializes from its spill segment instead.
    if phase_count("vm_execute") == 0 && store_field("spill_loads") == 0 {
        return Err(
            "manifest: no vm_execute spans and no spill loads — the sweep never ran a VM".into(),
        );
    }
    let engine = doc.get("engine");
    let engine_runs = engine
        .and_then(|e| e.get("runs"))
        .and_then(cachegc_core::json::Json::as_u64)
        .unwrap_or(0);
    if engine_runs == 0 {
        return Err("manifest: engine.runs is zero — no crew pass was recorded".into());
    }
    let workers = engine
        .and_then(|e| e.get("workers"))
        .and_then(cachegc_core::json::Json::as_arr)
        .map_or(0, <[_]>::len);
    if workers == 0 {
        return Err("manifest: engine.workers is empty — no per-worker stats recorded".into());
    }
    let hits = store_field("hits");
    if hits > 0 && phase_count("replay") == 0 {
        return Err(format!(
            "manifest: store reports {hits} hits but no replay spans"
        ));
    }
    // A finished run has resolved every recording flight: leftover
    // reserved bytes mean a ticket leaked its in-flight charge.
    let reserved = store_field("reserved");
    if reserved > 0 {
        return Err(format!(
            "manifest: store still reserves {reserved} in-flight bytes after the run"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(v: f64) -> Table {
        let mut t = Table::new("t", &["label", "count", "value"]);
        t.row(vec![Cell::text("row0"), Cell::Count(7), Cell::Float(v, 4)]);
        t.row(vec![
            Cell::text("row1"),
            Cell::Bytes(64 << 10),
            Cell::Pct(0.25),
        ]);
        t
    }

    /// The golden side of a diff is always a table that has been through
    /// CSV, variant-collapsed; simulate that.
    fn through_csv(t: &Table) -> Table {
        Table::from_csv(t.name(), &t.to_csv()).unwrap()
    }

    #[test]
    fn identical_tables_have_no_drift_even_at_zero_tolerance() {
        let t = table(0.123456789);
        assert!(diff_tables(&through_csv(&t), &t, &Tolerance::EXACT).is_empty());
        assert!(diff_tables(&t, &t, &Tolerance::EXACT).is_empty());
    }

    #[test]
    fn single_cell_drift_is_pinpointed() {
        let golden = through_csv(&table(0.5));
        let live = table(0.75);
        let drifts = diff_tables(&golden, &live, &Tolerance::default());
        assert_eq!(drifts.len(), 1);
        match &drifts[0] {
            Drift::Cell {
                row,
                row_label,
                column,
                expected,
                actual,
            } => {
                assert_eq!((*row, column.as_str()), (0, "value"));
                assert_eq!(row_label, "row0");
                assert_eq!((expected.as_str(), actual.as_str()), ("0.5", "0.75"));
            }
            other => panic!("unexpected drift {other:?}"),
        }
        let msg = drifts[0].to_string();
        assert!(msg.contains("row 0") && msg.contains("'value'"), "{msg}");
    }

    #[test]
    fn float_tolerance_is_relative_and_typed() {
        let golden = through_csv(&table(1.0));
        let mut live = table(1.0 + 1e-12);
        assert!(diff_tables(&golden, &live, &Tolerance::default()).is_empty());
        assert_eq!(diff_tables(&golden, &live, &Tolerance::EXACT).len(), 1);
        // Exact cell types get no epsilon: a count off by one is a drift
        // no matter the tolerance.
        live = table(1.0);
        live.set_cell(0, 1, Cell::Count(8));
        assert_eq!(
            diff_tables(&golden, &live, &Tolerance { rel_eps: 1e3 }).len(),
            1
        );
    }

    #[test]
    fn non_finite_floats_match_only_the_empty_cell() {
        let mut live = table(0.5);
        live.set_cell(0, 2, Cell::Float(f64::NAN, 4));
        let golden = through_csv(&live);
        assert!(diff_tables(&golden, &live, &Tolerance::EXACT).is_empty());
        assert_eq!(
            diff_tables(&through_csv(&table(0.5)), &live, &Tolerance::default()).len(),
            1
        );
    }

    #[test]
    fn structural_drift_is_reported() {
        let t = table(0.5);
        let mut extra = table(0.5);
        extra.row(vec![
            Cell::text("row2"),
            Cell::Count(0),
            Cell::Float(0.0, 4),
        ]);
        let drifts = diff_tables(&through_csv(&t), &extra, &Tolerance::default());
        assert!(matches!(
            drifts[0],
            Drift::RowCount {
                expected: 2,
                actual: 3
            }
        ));
        let other = Table::new("t", &["different", "columns"]);
        let drifts = diff_tables(&through_csv(&t), &other, &Tolerance::default());
        assert!(matches!(drifts[0], Drift::Columns { .. }));
    }

    #[test]
    fn manifest_check_demands_vm_execute_and_replay() {
        use std::sync::Arc;

        use cachegc_core::telemetry::{probe, EngineReport};
        use cachegc_core::{Manifest, ManifestConfig, Telemetry, TraceStore};

        let cfg = || ManifestConfig {
            experiment: "e4_write_policy".into(),
            scale: 1,
            jobs: 2,
            jobs_requested: 2,
            schedule: "work-stealing".into(),
            trace_cache: "off".into(),
        };
        // An empty manifest is schema-valid but strictly rejected: the
        // sweep never ran a VM.
        let telemetry = Arc::new(Telemetry::new());
        let empty = Manifest::gather(cfg(), &telemetry.snapshot(), None).to_json();
        assert!(cachegc_core::validate_manifest(&empty).is_ok());
        let err = check_manifest(&empty).unwrap_err();
        assert!(err.contains("vm_execute"), "{err}");

        {
            let _shard = telemetry.attach();
            let _span = probe::phase("vm_execute");
        }
        // A VM span alone is still rejected: no crew pass reported.
        let no_engine = Manifest::gather(cfg(), &telemetry.snapshot(), None).to_json();
        let err = check_manifest(&no_engine).unwrap_err();
        assert!(err.contains("engine.runs"), "{err}");
        telemetry.record_engine(&EngineReport {
            schedule: "work-stealing",
            jobs: 2,
            sinks: 2,
            chunks_published: 1,
            events_published: 8,
            backpressure_ns: 0,
            queue_depth_hwm: 1,
            workers: vec![Default::default(); 2],
        });
        let store = TraceStore::unbounded();
        let ran = Manifest::gather(cfg(), &telemetry.snapshot(), Some(&store)).to_json();
        check_manifest(&ran).unwrap();

        // A store that reports hits needs replay spans to back them.
        let hit = ran.replacen("\"hits\": 0", "\"hits\": 1", 1);
        assert_ne!(hit, ran, "the store block is present and editable");
        let err = check_manifest(&hit).unwrap_err();
        assert!(err.contains("replay"), "{err}");

        // Garbage is rejected by the generic layer first.
        assert!(check_manifest("{}").is_err());
        assert!(check_manifest("not json").is_err());
    }

    #[test]
    fn bless_then_check_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("cachegc_golden_test");
        let _ = std::fs::remove_dir_all(&dir);
        let tables = vec![table(0.5)];
        let written = bless_tables(&dir, "e0_demo", &tables).unwrap();
        assert_eq!(written, vec![dir.join("e0_demo__t.csv")]);
        assert!(check_tables(&dir, "e0_demo", &tables, &Tolerance::EXACT).is_empty());
        // Perturb one cell: the check names the table and the cell.
        let mut live = vec![table(0.5)];
        live[0].set_cell(1, 1, Cell::Bytes(128 << 10));
        let failures = check_tables(&dir, "e0_demo", &live, &Tolerance::default());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "t");
        assert!(
            matches!(&failures[0].1[0], Drift::Cell { row: 1, column, .. } if column == "count")
        );
        // A missing golden is a failure, not a silent pass.
        let failures = check_tables(&dir, "e99_absent", &live, &Tolerance::default());
        assert!(matches!(&failures[0].1[0], Drift::MissingGolden { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
