//! A small wall-clock benchmark harness.
//!
//! The workspace pins no external registry crates (hermetic builds), so
//! this stands in for criterion: per-benchmark warm-up, repeated sampling,
//! and a median-of-samples report with optional throughput. Medians are
//! robust to the occasional descheduled sample; these are coarse
//! regenerator benchmarks, not microsecond-level statistics.

use std::time::{Duration, Instant};

/// Sampling stops after this much measured time per benchmark...
const TARGET_TOTAL: Duration = Duration::from_millis(400);
/// ...or after this many samples, whichever comes first.
const MAX_SAMPLES: usize = 40;
/// Always take at least this many samples.
const MIN_SAMPLES: usize = 5;

/// One benchmark's results.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark label.
    pub name: String,
    /// Samples taken (after one warm-up run).
    pub samples: usize,
    /// Median sample time.
    pub median: Duration,
    /// Fastest sample time.
    pub min: Duration,
    /// Events per sample, for throughput reporting.
    pub events_per_iter: Option<u64>,
}

impl Summary {
    /// Events per second at the median sample time, if a throughput was
    /// declared.
    pub fn events_per_sec(&self) -> Option<f64> {
        let e = self.events_per_iter?;
        Some(e as f64 / self.median.as_secs_f64())
    }

    fn print(&self) {
        let rate = match self.events_per_sec() {
            Some(r) if r >= 1e6 => format!("  {:8.1} Mevents/s", r / 1e6),
            Some(r) => format!("  {:8.1} kevents/s", r / 1e3),
            None => String::new(),
        };
        println!(
            "{:40} median {:>10.3?}  min {:>10.3?}  ({} samples){}",
            self.name, self.median, self.min, self.samples, rate
        );
    }
}

/// Run `routine` repeatedly and report its median wall time. The routine
/// owns its own setup; use [`bench_with_setup`] when setup must be
/// excluded from the measurement.
pub fn bench(name: &str, events_per_iter: Option<u64>, mut routine: impl FnMut()) -> Summary {
    bench_with_setup(name, events_per_iter, || (), move |()| routine())
}

/// As [`bench`], but `setup` runs before every sample outside the timed
/// region (criterion's `iter_batched`).
pub fn bench_with_setup<T>(
    name: &str,
    events_per_iter: Option<u64>,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(T),
) -> Summary {
    routine(setup()); // warm-up, untimed
    let mut samples = Vec::with_capacity(MAX_SAMPLES);
    let mut total = Duration::ZERO;
    while samples.len() < MIN_SAMPLES || (total < TARGET_TOTAL && samples.len() < MAX_SAMPLES) {
        let input = setup();
        let start = Instant::now();
        routine(input);
        let dt = start.elapsed();
        total += dt;
        samples.push(dt);
    }
    samples.sort_unstable();
    let summary = Summary {
        name: name.to_string(),
        samples: samples.len(),
        median: samples[samples.len() / 2],
        min: samples[0],
        events_per_iter,
    };
    summary.print();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let mut runs = 0u64;
        let s = bench("spin", Some(1000), || {
            runs += 1;
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert!(s.samples >= MIN_SAMPLES);
        assert!(runs as usize >= s.samples, "one warmup plus samples");
        assert!(s.min <= s.median);
        assert!(s.events_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn setup_is_not_timed() {
        // A slow setup with an instant routine: median must reflect the
        // routine, not the setup.
        let s = bench_with_setup(
            "setup_heavy",
            None,
            || std::hint::black_box((0..2_000_000u64).sum::<u64>()),
            |_| {},
        );
        assert!(s.median < Duration::from_millis(5));
    }
}
