//! Shared helpers for the experiment regenerators.
//!
//! Each table and figure in the paper's evaluation has a binary in
//! `src/bin/` that reruns the measurement and prints the same rows or
//! series the paper reports (see EXPERIMENTS.md for the index). All
//! binaries accept a workload scale through the `CACHEGC_SCALE`
//! environment variable or a `--scale N` argument; the default is a
//! minutes-long run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Workload scale from `--scale N` or `CACHEGC_SCALE` (default `default`).
pub fn scale_arg(default: u32) -> u32 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    std::env::var("CACHEGC_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Format a fraction as a signed percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", 100.0 * x)
}

/// Format a byte count as `32k` / `4m`.
pub fn human_bytes(b: u32) -> String {
    if b >= 1 << 20 {
        format!("{}m", b >> 20)
    } else {
        format!("{}k", b >> 10)
    }
}

/// Format a count with thousands separators.
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Print a header plus an underline.
pub fn header(title: &str) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(pct(0.0534), "+5.34%");
        assert_eq!(pct(-0.001), "-0.10%");
        assert_eq!(human_bytes(32 << 10), "32k");
        assert_eq!(human_bytes(4 << 20), "4m");
        assert_eq!(commas(1234567), "1,234,567");
        assert_eq!(commas(42), "42");
    }
}
