//! Shared helpers for the experiment regenerators.
//!
//! Each table and figure in the paper's evaluation has a binary in
//! `src/bin/` that reruns the measurement and prints the same rows or
//! series the paper reports (see EXPERIMENTS.md for the index). Every
//! binary parses the same command line through
//! [`cli::ExperimentArgs`] — `--scale`, `--jobs`, `--schedule`, `--csv` —
//! builds its rows as [`cachegc_core::report::Table`]s, and persists them
//! as CSV when `--csv` is passed.
//!
//! The sweeps themselves are library functions in [`experiments`] (the
//! binaries are shims over [`experiments::run_main`]), which is what lets
//! the [`golden`] regression harness run every experiment in-process and
//! diff its tables against the checked-in goldens in `results/expected/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod golden;
pub mod harness;
mod report;
pub mod trend;

pub use cli::ExperimentArgs;
pub use report::{GridReport, GridRun, ReplayBaseline, ReplayReport, ReplayRun, TelemetryReport};

/// Format a fraction as a signed percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", 100.0 * x)
}

/// Format a byte count as `32k` / `4m`.
pub fn human_bytes(b: u32) -> String {
    cachegc_core::report::human_bytes(b.into())
}

/// Format a count with thousands separators.
pub fn commas(n: u64) -> String {
    cachegc_core::report::commas(n)
}

/// Print a header plus an underline.
pub fn header(title: &str) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(pct(0.0534), "+5.34%");
        assert_eq!(pct(-0.001), "-0.10%");
        assert_eq!(human_bytes(32 << 10), "32k");
        assert_eq!(human_bytes(4 << 20), "4m");
        assert_eq!(commas(1234567), "1,234,567");
        assert_eq!(commas(42), "42");
    }
}
