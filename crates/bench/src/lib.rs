//! Shared helpers for the experiment regenerators.
//!
//! Each table and figure in the paper's evaluation has a binary in
//! `src/bin/` that reruns the measurement and prints the same rows or
//! series the paper reports (see EXPERIMENTS.md for the index). All
//! binaries accept a workload scale through the `CACHEGC_SCALE`
//! environment variable or a `--scale N` argument; the default is a
//! minutes-long run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
mod report;

pub use report::{GridReport, GridRun};

/// Workload scale from `--scale N` or `CACHEGC_SCALE` (default `default`).
pub fn scale_arg(default: u32) -> u32 {
    arg_or_env("--scale", "CACHEGC_SCALE").unwrap_or(default)
}

/// Worker threads from `--jobs N` or `CACHEGC_JOBS`; defaults to this
/// machine's available parallelism. `--jobs 1` is the sequential oracle:
/// it takes exactly the single-threaded code paths.
pub fn jobs_arg() -> usize {
    arg_or_env("--jobs", "CACHEGC_JOBS")
        .unwrap_or_else(cachegc_core::default_jobs)
        .max(1)
}

fn arg_or_env<T: std::str::FromStr>(flag: &str, env: &str) -> Option<T> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return Some(v);
            }
        }
    }
    std::env::var(env).ok().and_then(|v| v.parse().ok())
}

/// Format a fraction as a signed percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", 100.0 * x)
}

/// Format a byte count as `32k` / `4m`.
pub fn human_bytes(b: u32) -> String {
    if b >= 1 << 20 {
        format!("{}m", b >> 20)
    } else {
        format!("{}k", b >> 10)
    }
}

/// Format a count with thousands separators.
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Print a header plus an underline.
pub fn header(title: &str) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(pct(0.0534), "+5.34%");
        assert_eq!(pct(-0.001), "-0.10%");
        assert_eq!(human_bytes(32 << 10), "32k");
        assert_eq!(human_bytes(4 << 20), "4m");
        assert_eq!(commas(1234567), "1,234,567");
        assert_eq!(commas(42), "42");
    }
}
