//! `BENCH_grid.json`: a machine-readable performance trajectory record.
//!
//! Every sweep binary appends one record describing its grid run —
//! workload, grid shape, `--jobs`, wall time, and simulated-event
//! throughput — so successive PRs can track how fast the paper-scale
//! experiment engine is without re-parsing human-readable tables. The
//! JSON is written by hand (no serde in the hermetic build).

use std::fmt::Write as _;
use std::time::Duration;

/// One workload's pass through the cache grid.
#[derive(Debug, Clone)]
pub struct GridRun {
    /// Workload short name (`compile`, `prove`, ...).
    pub workload: String,
    /// Workload scale knob.
    pub scale: u32,
    /// Trace events (data references) in the pass.
    pub events: u64,
    /// Cache-grid cells the pass drove.
    pub cells: usize,
    /// Wall-clock time for the pass.
    pub wall: Duration,
}

impl GridRun {
    /// Cell-events per second: every event is simulated once per cell, so
    /// this is the engine's aggregate simulation throughput.
    pub fn cell_events_per_sec(&self) -> f64 {
        (self.events as f64 * self.cells as f64) / self.wall.as_secs_f64().max(1e-9)
    }
}

/// A sweep binary's whole run.
#[derive(Debug, Clone)]
pub struct GridReport {
    /// Which binary produced this (e.g. `e3_overhead_sweep`).
    pub binary: String,
    /// `--jobs` in effect.
    pub jobs: usize,
    /// Per-workload passes.
    pub runs: Vec<GridRun>,
    /// Wall-clock time for the whole binary's measurement section.
    pub total_wall: Duration,
}

impl GridReport {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"cachegc-bench-grid-v1\",");
        let _ = writeln!(s, "  \"binary\": {},", json_str(&self.binary));
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(
            s,
            "  \"total_wall_secs\": {:.6},",
            self.total_wall.as_secs_f64()
        );
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": {}, \"scale\": {}, \"events\": {}, \"cells\": {}, \
                 \"wall_secs\": {:.6}, \"cell_events_per_sec\": {:.1}}}",
                json_str(&r.workload),
                r.scale,
                r.events,
                r.cells,
                r.wall.as_secs_f64(),
                r.cell_events_per_sec(),
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the report to `CACHEGC_BENCH_JSON` (default `BENCH_grid.json`
    /// in the current directory). Failures are reported, not fatal: the
    /// record is a side channel, never worth killing a long sweep over.
    pub fn write(&self) {
        let path = std::env::var("CACHEGC_BENCH_JSON").unwrap_or_else(|_| "BENCH_grid.json".into());
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let report = GridReport {
            binary: "e3_overhead_sweep".into(),
            jobs: 8,
            runs: vec![GridRun {
                workload: "compile".into(),
                scale: 4,
                events: 1_000_000,
                cells: 40,
                wall: Duration::from_millis(500),
            }],
            total_wall: Duration::from_millis(512),
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"cachegc-bench-grid-v1\""));
        assert!(json.contains("\"binary\": \"e3_overhead_sweep\""));
        assert!(json.contains("\"jobs\": 8"));
        assert!(json.contains("\"workload\": \"compile\""));
        assert!(json.contains("\"cells\": 40"));
        // 1M events × 40 cells / 0.5 s = 80M cell-events/s.
        assert!(json.contains("\"cell_events_per_sec\": 80000000.0"));
    }

    #[test]
    fn json_strings_escape() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("n\nl"), "\"n\\u000al\"");
    }
}
