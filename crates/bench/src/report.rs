//! `BENCH_grid.json` / `BENCH_replay.json`: machine-readable performance
//! trajectory records.
//!
//! Every sweep binary appends one record describing its grid run —
//! workload, grid shape, `--jobs`, wall time, and simulated-event
//! throughput — so successive PRs can track how fast the paper-scale
//! experiment engine is without re-parsing human-readable tables; the
//! `trace_replay` bench records live-VM vs replay event rates the same
//! way. The JSON is written by hand (no serde in the hermetic build).

use std::fmt::Write as _;
use std::time::Duration;

/// One workload's pass through the cache grid.
#[derive(Debug, Clone)]
pub struct GridRun {
    /// Workload short name (`compile`, `prove`, ...).
    pub workload: String,
    /// Workload scale knob.
    pub scale: u32,
    /// Trace events (data references) in the pass.
    pub events: u64,
    /// Cache-grid cells the pass drove.
    pub cells: usize,
    /// Wall-clock time for the pass.
    pub wall: Duration,
}

impl GridRun {
    /// Cell-events per second: every event is simulated once per cell, so
    /// this is the engine's aggregate simulation throughput.
    pub fn cell_events_per_sec(&self) -> f64 {
        (self.events as f64 * self.cells as f64) / self.wall.as_secs_f64().max(1e-9)
    }
}

/// A sweep binary's whole run.
#[derive(Debug, Clone)]
pub struct GridReport {
    /// Which binary produced this (e.g. `e3_overhead_sweep`).
    pub binary: String,
    /// `--jobs` in effect.
    pub jobs: usize,
    /// Per-workload passes.
    pub runs: Vec<GridRun>,
    /// Wall-clock time for the whole binary's measurement section.
    pub total_wall: Duration,
}

impl GridReport {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"cachegc-bench-grid-v1\",");
        let _ = writeln!(s, "  \"binary\": {},", json_str(&self.binary));
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(
            s,
            "  \"total_wall_secs\": {:.6},",
            self.total_wall.as_secs_f64()
        );
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": {}, \"scale\": {}, \"events\": {}, \"cells\": {}, \
                 \"wall_secs\": {:.6}, \"cell_events_per_sec\": {:.1}}}",
                json_str(&r.workload),
                r.scale,
                r.events,
                r.cells,
                r.wall.as_secs_f64(),
                r.cell_events_per_sec(),
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the report to `CACHEGC_BENCH_JSON` (default `BENCH_grid.json`
    /// in the current directory). Failures are reported, not fatal: the
    /// record is a side channel, never worth killing a long sweep over.
    pub fn write(&self) {
        let path = std::env::var("CACHEGC_BENCH_JSON").unwrap_or_else(|_| "BENCH_grid.json".into());
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

/// One workload's live-VM vs trace-replay comparison.
#[derive(Debug, Clone)]
pub struct ReplayRun {
    /// Workload short name (`compile`, `prove`, ...).
    pub workload: String,
    /// Workload scale knob.
    pub scale: u32,
    /// Trace events (data references) in the recorded stream.
    pub events: u64,
    /// Encoded trace size in bytes.
    pub trace_bytes: u64,
    /// Events per second generating the trace live from the VM.
    pub live_events_per_sec: f64,
    /// Events per second replaying the recorded trace.
    pub replay_events_per_sec: f64,
}

impl ReplayRun {
    /// Encoded bytes per event — the codec's compactness (the in-memory
    /// [`cachegc_core::Recorder`] event is 8 bytes).
    pub fn bytes_per_event(&self) -> f64 {
        self.trace_bytes as f64 / (self.events.max(1)) as f64
    }

    /// How many times faster replay delivers events than the live VM.
    pub fn speedup(&self) -> f64 {
        self.replay_events_per_sec / self.live_events_per_sec.max(1e-9)
    }
}

/// The `trace_replay` bench's whole run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-workload comparisons.
    pub runs: Vec<ReplayRun>,
}

impl ReplayReport {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"cachegc-bench-replay-v1\",");
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": {}, \"scale\": {}, \"events\": {}, \
                 \"trace_bytes\": {}, \"bytes_per_event\": {:.3}, \
                 \"live_events_per_sec\": {:.1}, \"replay_events_per_sec\": {:.1}, \
                 \"speedup\": {:.2}}}",
                json_str(&r.workload),
                r.scale,
                r.events,
                r.trace_bytes,
                r.bytes_per_event(),
                r.live_events_per_sec,
                r.replay_events_per_sec,
                r.speedup(),
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the report to `CACHEGC_BENCH_JSON` (default
    /// `BENCH_replay.json` in the current directory). Failures are
    /// reported, not fatal, same as [`GridReport::write`].
    pub fn write(&self) {
        let path =
            std::env::var("CACHEGC_BENCH_JSON").unwrap_or_else(|_| "BENCH_replay.json".into());
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

/// The `telemetry_overhead` bench's result: the same full sweep timed
/// with telemetry off and on, proving the probes stay within the <2 %
/// overhead budget DESIGN.md commits to.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Experiment the sweep ran (e.g. `e4_write_policy`).
    pub experiment: String,
    /// Workload scale of the sweep.
    pub scale: u32,
    /// `--jobs` in effect.
    pub jobs: usize,
    /// Samples per variant (after warm-up).
    pub samples: usize,
    /// Median sweep time with telemetry off.
    pub baseline: Duration,
    /// Median sweep time with telemetry gathered and a manifest built.
    pub telemetry: Duration,
}

impl TelemetryReport {
    /// Enabled-overhead fraction: `telemetry / baseline - 1` (negative
    /// when the difference drowns in run-to-run noise).
    pub fn overhead_fraction(&self) -> f64 {
        self.telemetry.as_secs_f64() / self.baseline.as_secs_f64().max(1e-9) - 1.0
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"cachegc-bench-telemetry-v1\",");
        let _ = writeln!(s, "  \"experiment\": {},", json_str(&self.experiment));
        let _ = writeln!(s, "  \"scale\": {},", self.scale);
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(
            s,
            "  \"baseline_secs\": {:.6},",
            self.baseline.as_secs_f64()
        );
        let _ = writeln!(
            s,
            "  \"telemetry_secs\": {:.6},",
            self.telemetry.as_secs_f64()
        );
        let _ = writeln!(
            s,
            "  \"overhead_fraction\": {:.6}",
            self.overhead_fraction()
        );
        s.push_str("}\n");
        s
    }

    /// Write the report to `CACHEGC_BENCH_JSON` (default
    /// `BENCH_telemetry.json` in the current directory). Failures are
    /// reported, not fatal, same as [`GridReport::write`].
    pub fn write(&self) {
        let path =
            std::env::var("CACHEGC_BENCH_JSON").unwrap_or_else(|_| "BENCH_telemetry.json".into());
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let report = GridReport {
            binary: "e3_overhead_sweep".into(),
            jobs: 8,
            runs: vec![GridRun {
                workload: "compile".into(),
                scale: 4,
                events: 1_000_000,
                cells: 40,
                wall: Duration::from_millis(500),
            }],
            total_wall: Duration::from_millis(512),
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"cachegc-bench-grid-v1\""));
        assert!(json.contains("\"binary\": \"e3_overhead_sweep\""));
        assert!(json.contains("\"jobs\": 8"));
        assert!(json.contains("\"workload\": \"compile\""));
        assert!(json.contains("\"cells\": 40"));
        // 1M events × 40 cells / 0.5 s = 80M cell-events/s.
        assert!(json.contains("\"cell_events_per_sec\": 80000000.0"));
    }

    #[test]
    fn replay_json_shape_is_stable() {
        let report = ReplayReport {
            runs: vec![ReplayRun {
                workload: "rewrite".into(),
                scale: 1,
                events: 2_000_000,
                trace_bytes: 3_000_000,
                live_events_per_sec: 10_000_000.0,
                replay_events_per_sec: 50_000_000.0,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"cachegc-bench-replay-v1\""));
        assert!(json.contains("\"workload\": \"rewrite\""));
        assert!(json.contains("\"bytes_per_event\": 1.500"));
        assert!(json.contains("\"speedup\": 5.00"));
    }

    #[test]
    fn telemetry_json_shape_is_stable() {
        let report = TelemetryReport {
            experiment: "e4_write_policy".into(),
            scale: 1,
            jobs: 2,
            samples: 5,
            baseline: Duration::from_millis(1000),
            telemetry: Duration::from_millis(1010),
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"cachegc-bench-telemetry-v1\""));
        assert!(json.contains("\"experiment\": \"e4_write_policy\""));
        assert!(json.contains("\"baseline_secs\": 1.000000"));
        assert!(json.contains("\"overhead_fraction\": 0.010000"));
        assert!((report.overhead_fraction() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn json_strings_escape() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("n\nl"), "\"n\\u000al\"");
    }
}
