//! `BENCH_grid.json` / `BENCH_replay.json`: machine-readable performance
//! trajectory records.
//!
//! Every sweep binary appends one record describing its grid run —
//! workload, grid shape, `--jobs`, wall time, and simulated-event
//! throughput — so successive PRs can track how fast the paper-scale
//! experiment engine is without re-parsing human-readable tables; the
//! `trace_replay` bench records live-VM vs replay event rates the same
//! way. The JSON is written by hand (no serde in the hermetic build).

use std::fmt::Write as _;
use std::time::Duration;

/// One workload's pass through the cache grid.
#[derive(Debug, Clone)]
pub struct GridRun {
    /// Workload short name (`compile`, `prove`, ...).
    pub workload: String,
    /// Workload scale knob.
    pub scale: u32,
    /// Trace events (data references) in the pass.
    pub events: u64,
    /// Cache-grid cells the pass drove.
    pub cells: usize,
    /// Wall-clock time for the pass.
    pub wall: Duration,
}

impl GridRun {
    /// Cell-events per second: every event is simulated once per cell, so
    /// this is the engine's aggregate simulation throughput.
    pub fn cell_events_per_sec(&self) -> f64 {
        (self.events as f64 * self.cells as f64) / self.wall.as_secs_f64().max(1e-9)
    }
}

/// A sweep binary's whole run.
#[derive(Debug, Clone)]
pub struct GridReport {
    /// Which binary produced this (e.g. `e3_overhead_sweep`).
    pub binary: String,
    /// `--jobs` in effect.
    pub jobs: usize,
    /// Per-workload passes.
    pub runs: Vec<GridRun>,
    /// Wall-clock time for the whole binary's measurement section.
    pub total_wall: Duration,
}

impl GridReport {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"cachegc-bench-grid-v1\",");
        let _ = writeln!(s, "  \"binary\": {},", json_str(&self.binary));
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(
            s,
            "  \"total_wall_secs\": {:.6},",
            self.total_wall.as_secs_f64()
        );
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": {}, \"scale\": {}, \"events\": {}, \"cells\": {}, \
                 \"wall_secs\": {:.6}, \"cell_events_per_sec\": {:.1}}}",
                json_str(&r.workload),
                r.scale,
                r.events,
                r.cells,
                r.wall.as_secs_f64(),
                r.cell_events_per_sec(),
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the report to `CACHEGC_BENCH_JSON` (default `BENCH_grid.json`
    /// in the current directory). Failures are reported, not fatal: the
    /// record is a side channel, never worth killing a long sweep over.
    pub fn write(&self) {
        let path = std::env::var("CACHEGC_BENCH_JSON").unwrap_or_else(|_| "BENCH_grid.json".into());
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

/// One workload's live-VM vs trace-replay comparison.
#[derive(Debug, Clone)]
pub struct ReplayRun {
    /// Workload short name (`compile`, `prove`, ...).
    pub workload: String,
    /// Workload scale knob.
    pub scale: u32,
    /// Trace events (data references) in the recorded stream.
    pub events: u64,
    /// Encoded trace size in bytes.
    pub trace_bytes: u64,
    /// Events per second generating the trace live from the VM.
    pub live_events_per_sec: f64,
    /// Events per second replaying the recorded trace into one sink
    /// through the per-event scalar decoder (the v1 metric).
    pub replay_events_per_sec: f64,
    /// Decode-only throughput of the scalar decoder (events into a null
    /// sink), separating codec cost from sink cost.
    pub decode_scalar_events_per_sec: f64,
    /// Decode-only throughput of the SWAR batch decoder.
    pub decode_batch_events_per_sec: f64,
    /// Configurations in the simulated grid the end-to-end rows drive.
    pub grid_cells: usize,
    /// End-to-end cell-events per second of the scalar grid path: one
    /// scalar decode driving a `Vec<Cache>` fanout (events × cells /
    /// wall).
    pub grid_scalar_cell_events_per_sec: f64,
    /// End-to-end cell-events per second of the batch kernel: one SWAR
    /// batch decode driving every `GridCache` lane.
    pub grid_batch_cell_events_per_sec: f64,
}

/// A prior `cachegc-bench-replay-v1` run carried forward so the v2 file
/// preserves the recorded performance trajectory.
#[derive(Debug, Clone)]
pub struct ReplayBaseline {
    /// Workload short name.
    pub workload: String,
    /// Workload scale knob.
    pub scale: u32,
    /// Trace events in the recorded stream.
    pub events: u64,
    /// Encoded trace size in bytes.
    pub trace_bytes: u64,
    /// v1 live-VM events per second.
    pub live_events_per_sec: f64,
    /// v1 single-sink replay events per second.
    pub replay_events_per_sec: f64,
}

impl ReplayRun {
    /// Encoded bytes per event — the codec's compactness (the in-memory
    /// [`cachegc_core::Recorder`] event is 8 bytes).
    pub fn bytes_per_event(&self) -> f64 {
        self.trace_bytes as f64 / (self.events.max(1)) as f64
    }

    /// How many times faster replay delivers events than the live VM.
    pub fn speedup(&self) -> f64 {
        self.replay_events_per_sec / self.live_events_per_sec.max(1e-9)
    }
}

/// The `trace_replay` bench's whole run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-workload comparisons.
    pub runs: Vec<ReplayRun>,
    /// The v1 trajectory this file replaces, carried forward verbatim.
    pub baseline_v1: Vec<ReplayBaseline>,
}

impl ReplayReport {
    /// Extract the v1 baseline trajectory from a prior `BENCH_replay.json`
    /// text: a v1 file contributes its `runs`, a v2 file passes its own
    /// `baseline_v1` through, anything unreadable contributes nothing.
    pub fn baseline_from(text: &str) -> Vec<ReplayBaseline> {
        let Ok(doc) = cachegc_core::json::parse(text) else {
            return Vec::new();
        };
        let rows = match doc.get("schema").and_then(|s| s.as_str()) {
            Some("cachegc-bench-replay-v1") => doc.get("runs"),
            Some("cachegc-bench-replay-v2") => doc.get("baseline_v1"),
            _ => None,
        };
        let num = |row: &cachegc_core::json::Json, key: &str| match row.get(key) {
            Some(cachegc_core::json::Json::Num(n)) => *n,
            _ => 0.0,
        };
        rows.and_then(|r| r.as_arr())
            .map(|rows| {
                rows.iter()
                    .filter_map(|row| {
                        Some(ReplayBaseline {
                            workload: row.get("workload")?.as_str()?.to_string(),
                            scale: row.get("scale")?.as_u64()? as u32,
                            events: row.get("events")?.as_u64()?,
                            trace_bytes: row.get("trace_bytes")?.as_u64()?,
                            live_events_per_sec: num(row, "live_events_per_sec"),
                            replay_events_per_sec: num(row, "replay_events_per_sec"),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"cachegc-bench-replay-v2\",");
        s.push_str("  \"baseline_v1\": [\n");
        for (i, b) in self.baseline_v1.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": {}, \"scale\": {}, \"events\": {}, \
                 \"trace_bytes\": {}, \"live_events_per_sec\": {:.1}, \
                 \"replay_events_per_sec\": {:.1}}}",
                json_str(&b.workload),
                b.scale,
                b.events,
                b.trace_bytes,
                b.live_events_per_sec,
                b.replay_events_per_sec,
            );
            s.push_str(if i + 1 < self.baseline_v1.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": {}, \"scale\": {}, \"events\": {}, \
                 \"trace_bytes\": {}, \"bytes_per_event\": {:.3}, \
                 \"live_events_per_sec\": {:.1}, \"replay_events_per_sec\": {:.1}, \
                 \"speedup\": {:.2}, \
                 \"decode_scalar_events_per_sec\": {:.1}, \
                 \"decode_batch_events_per_sec\": {:.1}, \
                 \"grid_cells\": {}, \
                 \"grid_scalar_cell_events_per_sec\": {:.1}, \
                 \"grid_batch_cell_events_per_sec\": {:.1}, \
                 \"grid_batch_speedup\": {:.2}}}",
                json_str(&r.workload),
                r.scale,
                r.events,
                r.trace_bytes,
                r.bytes_per_event(),
                r.live_events_per_sec,
                r.replay_events_per_sec,
                r.speedup(),
                r.decode_scalar_events_per_sec,
                r.decode_batch_events_per_sec,
                r.grid_cells,
                r.grid_scalar_cell_events_per_sec,
                r.grid_batch_cell_events_per_sec,
                r.grid_batch_cell_events_per_sec / r.grid_scalar_cell_events_per_sec.max(1e-9),
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the report to `CACHEGC_BENCH_JSON` (default
    /// `BENCH_replay.json` in the current directory). Failures are
    /// reported, not fatal, same as [`GridReport::write`].
    pub fn write(&self) {
        let path =
            std::env::var("CACHEGC_BENCH_JSON").unwrap_or_else(|_| "BENCH_replay.json".into());
        self.write_to(&path);
    }

    /// Serialize to `path` (for callers that resolve the path themselves,
    /// e.g. to anchor it at the workspace root regardless of cwd).
    pub fn write_to(&self, path: &str) {
        match std::fs::write(path, self.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

/// The `telemetry_overhead` bench's result: the same full sweep timed
/// with telemetry off and on, proving the probes stay within the <2 %
/// overhead budget DESIGN.md commits to.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Experiment the sweep ran (e.g. `e4_write_policy`).
    pub experiment: String,
    /// Workload scale of the sweep.
    pub scale: u32,
    /// `--jobs` in effect.
    pub jobs: usize,
    /// Samples per variant (after warm-up).
    pub samples: usize,
    /// Median sweep time with telemetry off.
    pub baseline: Duration,
    /// Median sweep time with telemetry gathered and a manifest built.
    pub telemetry: Duration,
}

impl TelemetryReport {
    /// Enabled-overhead fraction: `telemetry / baseline - 1` (negative
    /// when the difference drowns in run-to-run noise).
    pub fn overhead_fraction(&self) -> f64 {
        self.telemetry.as_secs_f64() / self.baseline.as_secs_f64().max(1e-9) - 1.0
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"cachegc-bench-telemetry-v1\",");
        let _ = writeln!(s, "  \"experiment\": {},", json_str(&self.experiment));
        let _ = writeln!(s, "  \"scale\": {},", self.scale);
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(
            s,
            "  \"baseline_secs\": {:.6},",
            self.baseline.as_secs_f64()
        );
        let _ = writeln!(
            s,
            "  \"telemetry_secs\": {:.6},",
            self.telemetry.as_secs_f64()
        );
        let _ = writeln!(
            s,
            "  \"overhead_fraction\": {:.6}",
            self.overhead_fraction()
        );
        s.push_str("}\n");
        s
    }

    /// Write the report to `CACHEGC_BENCH_JSON` (default
    /// `BENCH_telemetry.json` in the current directory). Failures are
    /// reported, not fatal, same as [`GridReport::write`].
    pub fn write(&self) {
        let path =
            std::env::var("CACHEGC_BENCH_JSON").unwrap_or_else(|_| "BENCH_telemetry.json".into());
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let report = GridReport {
            binary: "e3_overhead_sweep".into(),
            jobs: 8,
            runs: vec![GridRun {
                workload: "compile".into(),
                scale: 4,
                events: 1_000_000,
                cells: 40,
                wall: Duration::from_millis(500),
            }],
            total_wall: Duration::from_millis(512),
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"cachegc-bench-grid-v1\""));
        assert!(json.contains("\"binary\": \"e3_overhead_sweep\""));
        assert!(json.contains("\"jobs\": 8"));
        assert!(json.contains("\"workload\": \"compile\""));
        assert!(json.contains("\"cells\": 40"));
        // 1M events × 40 cells / 0.5 s = 80M cell-events/s.
        assert!(json.contains("\"cell_events_per_sec\": 80000000.0"));
    }

    #[test]
    fn replay_json_shape_is_stable() {
        let report = ReplayReport {
            runs: vec![ReplayRun {
                workload: "rewrite".into(),
                scale: 1,
                events: 2_000_000,
                trace_bytes: 3_000_000,
                live_events_per_sec: 10_000_000.0,
                replay_events_per_sec: 50_000_000.0,
                decode_scalar_events_per_sec: 250_000_000.0,
                decode_batch_events_per_sec: 500_000_000.0,
                grid_cells: 40,
                grid_scalar_cell_events_per_sec: 400_000_000.0,
                grid_batch_cell_events_per_sec: 800_000_000.0,
            }],
            baseline_v1: vec![ReplayBaseline {
                workload: "rewrite".into(),
                scale: 1,
                events: 1_900_000,
                trace_bytes: 2_900_000,
                live_events_per_sec: 9_000_000.0,
                replay_events_per_sec: 45_000_000.0,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"cachegc-bench-replay-v2\""));
        assert!(json.contains("\"workload\": \"rewrite\""));
        assert!(json.contains("\"bytes_per_event\": 1.500"));
        assert!(json.contains("\"speedup\": 5.00"));
        assert!(json.contains("\"decode_batch_events_per_sec\": 500000000.0"));
        assert!(json.contains("\"grid_cells\": 40"));
        assert!(json.contains("\"grid_batch_speedup\": 2.00"));
        assert!(json.contains("\"baseline_v1\""));
        assert!(json.contains("\"replay_events_per_sec\": 45000000.0"));
    }

    #[test]
    fn replay_baseline_survives_v1_and_v2_files() {
        let v1 = r#"{
  "schema": "cachegc-bench-replay-v1",
  "runs": [
    {"workload": "compile", "scale": 1, "events": 100, "trace_bytes": 270,
     "bytes_per_event": 2.700, "live_events_per_sec": 10.0,
     "replay_events_per_sec": 50.0, "speedup": 5.00}
  ]
}"#;
        let base = ReplayReport::baseline_from(v1);
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].workload, "compile");
        assert_eq!(base[0].events, 100);
        assert_eq!(base[0].replay_events_per_sec, 50.0);
        // A v2 file passes its baseline through unchanged, so repeated
        // v2 writes never lose the original v1 trajectory.
        let report = ReplayReport {
            runs: Vec::new(),
            baseline_v1: base,
        };
        let again = ReplayReport::baseline_from(&report.to_json());
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].events, 100);
        // Garbage contributes nothing.
        assert!(ReplayReport::baseline_from("not json").is_empty());
        assert!(ReplayReport::baseline_from("{\"schema\": \"other\"}").is_empty());
    }

    #[test]
    fn telemetry_json_shape_is_stable() {
        let report = TelemetryReport {
            experiment: "e4_write_policy".into(),
            scale: 1,
            jobs: 2,
            samples: 5,
            baseline: Duration::from_millis(1000),
            telemetry: Duration::from_millis(1010),
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"cachegc-bench-telemetry-v1\""));
        assert!(json.contains("\"experiment\": \"e4_write_policy\""));
        assert!(json.contains("\"baseline_secs\": 1.000000"));
        assert!(json.contains("\"overhead_fraction\": 0.010000"));
        assert!((report.overhead_fraction() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn json_strings_escape() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("n\nl"), "\"n\\u000al\"");
    }
}
