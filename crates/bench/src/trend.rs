//! Bench-trajectory trends: parse the checked-in `BENCH_*.json`
//! records, assert their schemas, and report latest-vs-previous deltas.
//!
//! The trajectory files are append-by-overwrite — every bench run
//! replaces the whole record — so without a reader the history is
//! write-only: a PR that silently halves replay throughput still ships a
//! syntactically fine JSON file. The `bench_trend` binary (and the CI
//! step behind it) closes that loop: it refuses unknown schemas outright
//! and, when given the previous revision of a file (CI extracts it from
//! the parent commit), prints the per-row throughput deltas so the
//! change is visible at review time. Deltas are *reported*, not gated:
//! CI machines are too noisy for hard thresholds, reviewers are not.

use cachegc_core::json::{self, Json};

/// Which trajectory record a file claims to be, keyed by its `schema`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchKind {
    /// `BENCH_grid.json`: cache-grid throughput (`cachegc-bench-grid-v1`).
    Grid,
    /// `BENCH_replay.json`: live-vs-replay rates
    /// (`cachegc-bench-replay-v2`).
    Replay,
    /// `BENCH_telemetry.json`: probe overhead
    /// (`cachegc-bench-telemetry-v1`).
    Telemetry,
}

impl BenchKind {
    /// Map a trajectory file name to its kind.
    pub fn of(file_name: &str) -> Option<BenchKind> {
        match file_name {
            "BENCH_grid.json" => Some(BenchKind::Grid),
            "BENCH_replay.json" => Some(BenchKind::Replay),
            "BENCH_telemetry.json" => Some(BenchKind::Telemetry),
            _ => None,
        }
    }

    /// The exact schema string the file must declare.
    pub fn schema(&self) -> &'static str {
        match self {
            BenchKind::Grid => "cachegc-bench-grid-v1",
            BenchKind::Replay => "cachegc-bench-replay-v2",
            BenchKind::Telemetry => "cachegc-bench-telemetry-v1",
        }
    }

    /// Every kind with its canonical file name, in report order.
    pub const ALL: [(BenchKind, &'static str); 3] = [
        (BenchKind::Grid, "BENCH_grid.json"),
        (BenchKind::Replay, "BENCH_replay.json"),
        (BenchKind::Telemetry, "BENCH_telemetry.json"),
    ];
}

/// Parse `text`, assert its schema matches `kind`, and return the report
/// lines: one header plus one delta line per comparable row. `prev` is
/// the previous revision of the same file (its schema is checked too);
/// without it only the current rows are listed.
///
/// # Errors
///
/// A parse failure or schema mismatch in either revision, with the
/// offending schema named.
pub fn trend(kind: BenchKind, text: &str, prev: Option<&str>) -> Result<Vec<String>, String> {
    let doc = parse_checked(kind, text, "current")?;
    let prev = match prev {
        Some(p) => Some(parse_checked(kind, p, "previous")?),
        None => None,
    };
    Ok(match kind {
        BenchKind::Grid => grid_lines(&doc, prev.as_ref()),
        BenchKind::Replay => replay_lines(&doc, prev.as_ref()),
        BenchKind::Telemetry => telemetry_lines(&doc, prev.as_ref()),
    })
}

fn parse_checked(kind: BenchKind, text: &str, which: &str) -> Result<Json, String> {
    let doc = json::parse(text).map_err(|e| format!("{which}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{which}: no schema string"))?;
    if schema != kind.schema() {
        return Err(format!(
            "{which}: schema '{schema}' is not '{}'",
            kind.schema()
        ));
    }
    Ok(doc)
}

/// `(now, prev)` formatted as a relative delta, `n/a` when the baseline
/// is degenerate.
fn pct(now: f64, prev: f64) -> String {
    if !prev.is_finite() || prev.abs() < 1e-12 {
        return "n/a".into();
    }
    format!("{:+.1}%", (now / prev - 1.0) * 100.0)
}

/// Humanize an events-per-second rate.
fn rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G/s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M/s", v / 1e6)
    } else {
        format!("{:.0}/s", v)
    }
}

fn num(row: &Json, key: &str) -> f64 {
    row.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Find the row in `rows` matching `row`'s workload and scale.
fn matching<'a>(rows: Option<&'a [Json]>, row: &Json) -> Option<&'a Json> {
    let key = |r: &Json| {
        Some((
            r.get("workload")?.as_str()?.to_string(),
            r.get("scale")?.as_u64()?,
        ))
    };
    let want = key(row)?;
    rows?.iter().find(|r| key(r).as_ref() == Some(&want))
}

fn grid_lines(doc: &Json, prev: Option<&Json>) -> Vec<String> {
    let runs = doc.get("runs").and_then(Json::as_arr).unwrap_or(&[]);
    let prev_runs = prev.and_then(|p| p.get("runs")).and_then(Json::as_arr);
    let mut out = vec![format!(
        "grid: {} runs, jobs {}, {:.1}s total",
        runs.len(),
        doc.get("jobs").and_then(Json::as_u64).unwrap_or(0),
        num(doc, "total_wall_secs"),
    )];
    for r in runs {
        let now = num(r, "cell_events_per_sec");
        let delta = match matching(prev_runs, r) {
            Some(p) => {
                let was = num(p, "cell_events_per_sec");
                format!("{} (prev {}, {})", rate(now), rate(was), pct(now, was))
            }
            None => format!("{} (no previous row)", rate(now)),
        };
        out.push(format!(
            "  {}: {} cell-events",
            r.get("workload").and_then(Json::as_str).unwrap_or("?"),
            delta
        ));
    }
    out
}

fn replay_lines(doc: &Json, prev: Option<&Json>) -> Vec<String> {
    let runs = doc.get("runs").and_then(Json::as_arr).unwrap_or(&[]);
    // Previous revision when CI has one; the file's own carried-forward
    // v1 trajectory otherwise, so a lone file still reports a delta.
    let (prev_runs, against) = match prev.and_then(|p| p.get("runs")).and_then(Json::as_arr) {
        Some(rows) => (Some(rows), "prev"),
        None => (doc.get("baseline_v1").and_then(Json::as_arr), "v1 baseline"),
    };
    let mut out = vec![format!("replay: {} runs (vs {against})", runs.len())];
    for r in runs {
        let now = num(r, "replay_events_per_sec");
        let line = match matching(prev_runs, r) {
            Some(p) => {
                let was = num(p, "replay_events_per_sec");
                format!(
                    "{} ({} {}, {})",
                    rate(now),
                    against,
                    rate(was),
                    pct(now, was)
                )
            }
            None => format!("{} (no {against} row)", rate(now)),
        };
        out.push(format!(
            "  {}: replay {}, batch grid {} cell-events",
            r.get("workload").and_then(Json::as_str).unwrap_or("?"),
            line,
            rate(num(r, "grid_batch_cell_events_per_sec")),
        ));
    }
    out
}

fn telemetry_lines(doc: &Json, prev: Option<&Json>) -> Vec<String> {
    let overhead = num(doc, "overhead_fraction");
    let mut line = format!(
        "telemetry: {} overhead {:+.2}% ({} samples)",
        doc.get("experiment").and_then(Json::as_str).unwrap_or("?"),
        overhead * 100.0,
        doc.get("samples").and_then(Json::as_u64).unwrap_or(0),
    );
    if let Some(p) = prev {
        line.push_str(&format!(
            " [prev {:+.2}%]",
            num(p, "overhead_fraction") * 100.0
        ));
    }
    vec![line]
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRID: &str = r#"{
  "schema": "cachegc-bench-grid-v1", "binary": "parallel_grid", "jobs": 4,
  "total_wall_secs": 10.0,
  "runs": [{"workload": "rewrite/jobs=4", "scale": 1, "events": 100,
            "cells": 40, "wall_secs": 1.0, "cell_events_per_sec": 50000000.0}]
}"#;

    #[test]
    fn grid_reports_deltas_against_previous() {
        let prev = GRID.replace("50000000.0", "40000000.0");
        let lines = trend(BenchKind::Grid, GRID, Some(&prev)).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("1 runs"));
        assert!(lines[1].contains("50.0M/s"));
        assert!(lines[1].contains("prev 40.0M/s"));
        assert!(lines[1].contains("+25.0%"));
        // Without a previous revision the row still prints.
        let solo = trend(BenchKind::Grid, GRID, None).unwrap();
        assert!(solo[1].contains("no previous row"));
    }

    #[test]
    fn replay_falls_back_to_its_own_v1_baseline() {
        let text = r#"{
  "schema": "cachegc-bench-replay-v2",
  "baseline_v1": [{"workload": "compile", "scale": 1, "events": 1,
                   "trace_bytes": 1, "live_events_per_sec": 1.0,
                   "replay_events_per_sec": 100000000.0}],
  "runs": [{"workload": "compile", "scale": 1, "events": 1, "trace_bytes": 1,
            "live_events_per_sec": 2.0, "replay_events_per_sec": 150000000.0,
            "grid_batch_cell_events_per_sec": 2000000000.0}]
}"#;
        let lines = trend(BenchKind::Replay, text, None).unwrap();
        assert!(lines[0].contains("vs v1 baseline"));
        assert!(lines[1].contains("+50.0%"));
        assert!(lines[1].contains("2.00G/s"));
    }

    #[test]
    fn telemetry_reports_overhead() {
        let t = r#"{"schema": "cachegc-bench-telemetry-v1",
                    "experiment": "e4_write_policy", "samples": 5,
                    "overhead_fraction": 0.0123}"#;
        let p = r#"{"schema": "cachegc-bench-telemetry-v1",
                    "experiment": "e4_write_policy", "samples": 5,
                    "overhead_fraction": -0.02}"#;
        let lines = trend(BenchKind::Telemetry, t, Some(p)).unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("+1.23%"));
        assert!(lines[0].contains("[prev -2.00%]"));
    }

    #[test]
    fn wrong_or_missing_schemas_are_refused() {
        let err = trend(
            BenchKind::Grid,
            r#"{"schema": "cachegc-bench-replay-v2"}"#,
            None,
        )
        .unwrap_err();
        assert!(err.contains("cachegc-bench-grid-v1"), "{err}");
        assert!(trend(BenchKind::Grid, "{}", None)
            .unwrap_err()
            .contains("no schema"));
        assert!(trend(BenchKind::Grid, "nonsense", None).is_err());
        // A bad *previous* revision is an error too, not silently ignored.
        let err = trend(BenchKind::Grid, GRID, Some("{}")).unwrap_err();
        assert!(err.contains("previous"), "{err}");
        // Real checked-in shapes map to kinds.
        assert_eq!(BenchKind::of("BENCH_grid.json"), Some(BenchKind::Grid));
        assert_eq!(BenchKind::of("BENCH_other.json"), None);
    }
}
