//! Experiment runners: one trace pass drives a whole grid of caches.

use cachegc_gc::{
    CheneyCollector, GcStats, GenerationalCollector, ImmixCollector, MarkSweepCollector,
    NoCollector,
};
use cachegc_sim::{
    miss_penalty_cycles, Cache, CacheConfig, CacheStats, MainMemory, Processor, WriteMissPolicy,
};
use cachegc_trace::{Context, Fanout};
use cachegc_vm::VmError;
use cachegc_workloads::WorkloadInstance;

use crate::overhead::{cache_overhead, gc_overhead};

/// The cache-configuration grid an experiment sweeps (§4's design space).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Cache capacities in bytes.
    pub cache_sizes: Vec<u32>,
    /// Block sizes in bytes.
    pub block_sizes: Vec<u32>,
    /// Write-miss policy for every cache in the grid.
    pub write_miss: WriteMissPolicy,
    /// Main-memory timing.
    pub memory: MainMemory,
}

impl ExperimentConfig {
    /// The paper's full grid: 32 KB – 4 MB, 16 – 256 byte blocks,
    /// write-validate.
    pub fn paper() -> Self {
        ExperimentConfig {
            cache_sizes: vec![
                32 << 10,
                64 << 10,
                128 << 10,
                256 << 10,
                512 << 10,
                1 << 20,
                2 << 20,
                4 << 20,
            ],
            block_sizes: vec![16, 32, 64, 128, 256],
            write_miss: WriteMissPolicy::WriteValidate,
            memory: MainMemory::przybylski(),
        }
    }

    /// A small grid for tests and examples.
    pub fn quick() -> Self {
        ExperimentConfig {
            cache_sizes: vec![32 << 10, 256 << 10],
            block_sizes: vec![64],
            write_miss: WriteMissPolicy::WriteValidate,
            memory: MainMemory::przybylski(),
        }
    }

    /// Same grid with a different write-miss policy.
    pub fn with_write_miss(mut self, policy: WriteMissPolicy) -> Self {
        self.write_miss = policy;
        self
    }

    /// All cache configurations in the grid.
    pub fn configs(&self) -> Vec<CacheConfig> {
        let mut out = Vec::new();
        for &size in &self.cache_sizes {
            for &block in &self.block_sizes {
                out.push(CacheConfig::direct_mapped(size, block).with_write_miss(self.write_miss));
            }
        }
        out
    }

    fn caches(&self) -> Fanout<Cache> {
        Fanout::new(self.configs().into_iter().map(Cache::new).collect())
    }
}

/// One cache configuration's results from a run.
#[derive(Debug, Clone)]
pub struct CacheCell {
    /// The configuration.
    pub config: CacheConfig,
    /// Full simulation statistics (per-block counters included).
    pub stats: CacheStats,
}

/// The §5 control experiment: one workload, collection disabled, the whole
/// cache grid simulated in a single trace pass.
#[derive(Debug)]
pub struct ControlReport {
    /// The workload that ran.
    pub instance: WorkloadInstance,
    /// Program data references.
    pub refs: u64,
    /// `I_prog`.
    pub i_prog: u64,
    /// Dynamic bytes allocated.
    pub allocated: u64,
    /// Memory timing used for penalties.
    pub memory: MainMemory,
    /// One cell per cache configuration.
    pub cells: Vec<CacheCell>,
}

impl ControlReport {
    /// The cell for a given geometry, if it was simulated.
    pub fn cell(&self, size: u32, block: u32) -> Option<&CacheCell> {
        self.cells
            .iter()
            .find(|c| c.config.size == size && c.config.block == block)
    }

    /// `O_cache` for one cell on one processor.
    pub fn cache_overhead(&self, cell: &CacheCell, cpu: &Processor) -> f64 {
        let p = miss_penalty_cycles(&self.memory, cpu, cell.config.block);
        cache_overhead(cell.stats.fetches_by(Context::Mutator), p, self.i_prog)
    }
}

/// Run a workload with garbage collection disabled against the grid.
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_control(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
) -> Result<ControlReport, VmError> {
    let out = instance.run(NoCollector::new(), cfg.caches())?;
    Ok(control_report(
        instance,
        cfg,
        out.stats,
        cache_cells(out.sink.into_sinks()),
    ))
}

/// Finish a `Vec<Cache>` sink set into grid cells, preserving order.
pub(crate) fn cache_cells(caches: Vec<Cache>) -> Vec<CacheCell> {
    caches
        .into_iter()
        .map(|c| CacheCell {
            config: *c.config(),
            stats: c.into_stats(),
        })
        .collect()
}

/// Assemble a [`ControlReport`] from a finished control pass; shared by the
/// sequential and parallel drivers.
pub(crate) fn control_report(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    stats: cachegc_vm::RunStats,
    cells: Vec<CacheCell>,
) -> ControlReport {
    ControlReport {
        instance,
        refs: cells_refs(&cells),
        i_prog: stats.instructions.program(),
        allocated: stats.allocated_bytes,
        memory: cfg.memory,
        cells,
    }
}

fn cells_refs(cells: &[CacheCell]) -> u64 {
    cells
        .first()
        .map_or(0, |c| c.stats.refs_by(Context::Mutator))
}

/// Which collector to run (a closed set so reports stay object-simple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectorSpec {
    /// Cheney semispace collector with the given semispace size.
    Cheney {
        /// Bytes per semispace (the paper uses 16 MB).
        semispace_bytes: u32,
    },
    /// Two-generation compacting collector.
    Generational {
        /// Nursery bytes; cache-sized makes it the *aggressive* collector.
        nursery_bytes: u32,
        /// Old-generation semispace bytes.
        old_bytes: u32,
    },
    /// Immix-style mark-region collector (128-byte lines, 32 KB blocks,
    /// opportunistic evacuation of fragmented blocks).
    Immix {
        /// Total heap bytes (a multiple of the 32 KB block size).
        heap_bytes: u32,
    },
    /// Non-moving mark-sweep collector with segregated free lists.
    MarkSweep {
        /// Total heap bytes.
        heap_bytes: u32,
    },
}

impl CollectorSpec {
    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            CollectorSpec::Cheney { semispace_bytes } => {
                format!("cheney/{}", human(*semispace_bytes))
            }
            CollectorSpec::Generational {
                nursery_bytes,
                old_bytes,
            } => {
                format!("gen/{}+{}", human(*nursery_bytes), human(*old_bytes))
            }
            CollectorSpec::Immix { heap_bytes } => {
                format!("immix/{}", human(*heap_bytes))
            }
            CollectorSpec::MarkSweep { heap_bytes } => {
                format!("marksweep/{}", human(*heap_bytes))
            }
        }
    }
}

fn human(b: u32) -> String {
    if b >= 1 << 20 {
        format!("{}m", b >> 20)
    } else {
        format!("{}k", b >> 10)
    }
}

/// One cache configuration's results from a collected run.
#[derive(Debug, Clone)]
pub struct CollectedCell {
    /// The configuration.
    pub config: CacheConfig,
    /// Program fetches (`M_prog` under collection).
    pub m_prog: u64,
    /// Collector fetches (`M_gc`).
    pub m_gc: u64,
    /// Full statistics.
    pub stats: CacheStats,
}

/// A workload run under a collector, against the grid.
#[derive(Debug)]
pub struct CollectedRun {
    /// The workload that ran.
    pub instance: WorkloadInstance,
    /// Which collector.
    pub spec: CollectorSpec,
    /// `I_prog` in the collected run.
    pub i_prog: u64,
    /// `I_gc`.
    pub i_gc: u64,
    /// `ΔI_prog`: collection-induced program work (table rehashing,
    /// write-barrier instructions).
    pub delta_i_prog: u64,
    /// Collector statistics.
    pub gc: GcStats,
    /// One cell per cache configuration.
    pub cells: Vec<CollectedCell>,
}

impl CollectedRun {
    /// The cell for a given geometry, if simulated.
    pub fn cell(&self, size: u32, block: u32) -> Option<&CollectedCell> {
        self.cells
            .iter()
            .find(|c| c.config.size == size && c.config.block == block)
    }
}

/// Run a workload under the given collector against the grid.
///
/// # Errors
///
/// Propagates any [`VmError`] from the program (including
/// [`VmError::OutOfMemory`] if the heap is too small for the workload).
pub fn run_collected(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    spec: CollectorSpec,
) -> Result<CollectedRun, VmError> {
    let out = match spec {
        CollectorSpec::Cheney { semispace_bytes } => {
            let out = instance.run(CheneyCollector::new(semispace_bytes), cfg.caches())?;
            (out.stats, out.sink.into_sinks())
        }
        CollectorSpec::Generational {
            nursery_bytes,
            old_bytes,
        } => {
            let out = instance.run(
                GenerationalCollector::new(nursery_bytes, old_bytes),
                cfg.caches(),
            )?;
            (out.stats, out.sink.into_sinks())
        }
        CollectorSpec::Immix { heap_bytes } => {
            let out = instance.run(ImmixCollector::new(heap_bytes), cfg.caches())?;
            (out.stats, out.sink.into_sinks())
        }
        CollectorSpec::MarkSweep { heap_bytes } => {
            let out = instance.run(MarkSweepCollector::new(heap_bytes), cfg.caches())?;
            (out.stats, out.sink.into_sinks())
        }
    };
    Ok(collected_run(instance, spec, out.0, cache_cells(out.1)))
}

/// Assemble a [`CollectedRun`] from a finished collected pass; shared by
/// the sequential and parallel drivers.
pub(crate) fn collected_run(
    instance: WorkloadInstance,
    spec: CollectorSpec,
    stats: cachegc_vm::RunStats,
    cells: Vec<CacheCell>,
) -> CollectedRun {
    let cells = cells
        .into_iter()
        .map(|cell| CollectedCell {
            config: cell.config,
            m_prog: cell.stats.fetches_by(Context::Mutator),
            m_gc: cell.stats.fetches_by(Context::Collector),
            stats: cell.stats,
        })
        .collect();
    CollectedRun {
        instance,
        spec,
        i_prog: stats.instructions.program(),
        i_gc: stats.instructions.collector(),
        delta_i_prog: stats.instructions.gc_induced(),
        gc: stats.gc,
        cells,
    }
}

/// A paired control/collected run of the same workload, from which `O_gc`
/// is computed (§6 needs both: `ΔM_prog` is a difference of miss counts).
#[derive(Debug)]
pub struct GcComparison {
    /// The collection-disabled control run.
    pub control: ControlReport,
    /// The collected run.
    pub collected: CollectedRun,
}

impl GcComparison {
    /// Run both experiments for one workload.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from either run.
    pub fn run(
        instance: WorkloadInstance,
        cfg: &ExperimentConfig,
        spec: CollectorSpec,
    ) -> Result<GcComparison, VmError> {
        Ok(GcComparison {
            control: run_control(instance, cfg)?,
            collected: run_collected(instance, cfg, spec)?,
        })
    }

    /// `O_gc` for one cache geometry on one processor.
    ///
    /// # Panics
    ///
    /// Panics if the geometry was not simulated.
    pub fn gc_overhead(&self, size: u32, block: u32, cpu: &Processor) -> f64 {
        let base = self
            .control
            .cell(size, block)
            .expect("geometry not simulated");
        let coll = self
            .collected
            .cell(size, block)
            .expect("geometry not simulated");
        let p = miss_penalty_cycles(&self.control.memory, cpu, block);
        let delta_m = coll.m_prog as i64 - base.stats.fetches_by(Context::Mutator) as i64;
        gc_overhead(
            coll.m_gc,
            delta_m,
            p,
            self.collected.i_gc,
            self.collected.delta_i_prog,
            self.collected.i_prog,
        )
    }

    /// `O_cache` of the control run for the same geometry/processor, for
    /// side-by-side reporting.
    pub fn control_overhead(&self, size: u32, block: u32, cpu: &Processor) -> f64 {
        let cell = self
            .control
            .cell(size, block)
            .expect("geometry not simulated");
        self.control.cache_overhead(cell, cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FAST, SLOW};
    use cachegc_workloads::Workload;

    #[test]
    fn quick_control_run_produces_cells() {
        let cfg = ExperimentConfig::quick();
        let r = run_control(Workload::Rewrite.scaled(1), &cfg).unwrap();
        assert_eq!(r.cells.len(), 2);
        assert!(r.refs > 100_000);
        assert!(r.i_prog > r.refs);
        // Bigger cache never has more fetches.
        let small = r.cell(32 << 10, 64).unwrap();
        let big = r.cell(256 << 10, 64).unwrap();
        assert!(big.stats.fetches() <= small.stats.fetches());
        // Overheads are finite and the fast processor suffers more.
        let os = r.cache_overhead(small, &SLOW);
        let of = r.cache_overhead(small, &FAST);
        assert!(os > 0.0 && of > os);
    }

    #[test]
    fn collected_run_attributes_gc() {
        let cfg = ExperimentConfig::quick();
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let cmp = GcComparison::run(Workload::Compile.scaled(1), &cfg, spec).unwrap();
        assert!(
            cmp.collected.gc.collections > 0,
            "heap small enough to force GC"
        );
        assert!(cmp.collected.i_gc > 0);
        let cell = cmp.collected.cell(32 << 10, 64).unwrap();
        assert!(cell.m_gc > 0, "collector misses attributed");
        let o = cmp.gc_overhead(32 << 10, 64, &SLOW);
        assert!(o.is_finite());
    }

    #[test]
    fn generational_spec_runs() {
        let cfg = ExperimentConfig::quick();
        let spec = CollectorSpec::Generational {
            nursery_bytes: 128 << 10,
            old_bytes: 8 << 20,
        };
        let run = run_collected(Workload::Rewrite.scaled(1), &cfg, spec).unwrap();
        assert!(run.gc.minor_collections > 0);
        assert_eq!(run.spec.name(), "gen/128k+8m");
    }

    #[test]
    fn config_grid_enumerates_products() {
        let cfg = ExperimentConfig::paper();
        assert_eq!(cfg.configs().len(), 40);
        assert_eq!(ExperimentConfig::quick().configs().len(), 2);
    }
}
