//! A minimal JSON reader for validating run manifests.
//!
//! The workspace's JSON *writers* are hand-rolled format strings (see
//! [`crate::report`] and the manifest in [`crate::telemetry`]); this is
//! the matching reader, just enough for `golden_check --manifest` to
//! check structure and invariants without an external dependency.
//! Numbers are parsed as `f64`, which is exact for every integer the
//! manifest emits in practice (counters fit 2^53 comfortably).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (the manifest's writers
    /// emit sorted keys anyway).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.get(key)
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// A human-readable message with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json: {msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any
                            // manifest producer; reject them plainly.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unsupported \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) => {
                    // Consume one UTF-8 character (the input is a &str,
                    // so boundaries are trustworthy); decode only its
                    // own bytes — revalidating the whole tail here made
                    // parsing quadratic on megabyte documents.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    out.push(s.chars().next().unwrap());
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_manifest_shaped_document() {
        let doc = r#"{
          "schema": "cachegc-manifest-v1",
          "counters": {"vm_runs": 5, "gc_bytes_copied": 1048576},
          "phases": {"vm_execute": {"count": 5, "wall_ns": 123, "hist": {"20": 5}}},
          "workers": [{"events": 10, "steals": 0}],
          "empty": [], "none": null, "flag": true, "neg": -1.5
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("cachegc-manifest-v1")
        );
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("vm_runs"))
                .and_then(Json::as_u64),
            Some(5)
        );
        let hist = v
            .get("phases")
            .and_then(|p| p.get("vm_execute"))
            .and_then(|p| p.get("hist"))
            .unwrap();
        assert_eq!(hist.get("20").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("workers").and_then(Json::as_arr).unwrap().len(), 1);
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert_eq!(
            v.get("neg").and_then(Json::as_u64),
            None,
            "negative is not u64"
        );
        assert_eq!(v.get("neg"), Some(&Json::Num(-1.5)));
    }

    #[test]
    fn strings_unescape() {
        let v = parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\":1}extra",
            "\"unterminated",
            "{\"a\":01x}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
    }
}
