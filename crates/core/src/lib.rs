//! The experiment harness: the paper's metrics and measurement procedures.
//!
//! This crate glues the substrates together and exposes the quantities the
//! paper reports:
//!
//! * [`cache_overhead`] — `O_cache = M_prog · P / I_prog` (§5).
//! * [`gc_overhead`] — `O_gc = ((M_gc + ΔM_prog) · P + I_gc + ΔI_prog) /
//!   I_prog` (§6), where `ΔM_prog` may be negative (the collector can
//!   *improve* the program's locality, as it does for nbody).
//! * [`run_control`] — the §5 control experiment: run a workload with
//!   collection disabled against a grid of cache configurations in one
//!   trace pass.
//! * [`run_collected`] — the §6 experiment: the same workload under a
//!   chosen collector ([`CollectorSpec`]), attributing misses and
//!   instructions to program vs collector.
//! * [`GcComparison`] — pairs the two runs and computes `O_gc`.
//!
//! # Example
//!
//! ```
//! use cachegc_core::{run_control, ExperimentConfig, SLOW};
//! use cachegc_workloads::Workload;
//!
//! let cfg = ExperimentConfig::quick();
//! let report = run_control(Workload::Rewrite.scaled(1), &cfg).unwrap();
//! let cell = &report.cells[0];
//! let o = report.cache_overhead(cell, &SLOW);
//! assert!(o >= 0.0);
//! ```

// `deny` rather than `forbid`: the spill module's mmap readback is the
// one scoped `#[allow(unsafe_code)]` exception in the workspace.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
pub mod json;
mod overhead;
pub mod report;
mod runner;
pub mod sched;
mod spill;
mod store;
pub mod telemetry;
mod timeline;

pub use experiment::{
    run_collected, run_control, CacheCell, CollectedCell, CollectedRun, CollectorSpec,
    ControlReport, ExperimentConfig, GcComparison,
};
pub use overhead::{cache_overhead, gc_overhead, write_back_overhead};
pub use runner::{default_jobs, Runner};
pub use sched::{
    CrewReport, EngineConfig, PacketFanout, PacketKind, ReplayKernel, Schedule, Scheduler, Stage,
    DEFAULT_CHUNK_EVENTS,
};
pub use store::{
    scenario_label, Acquired, HitSource, OfferOutcome, RecordTicket, RunCtx, ScenarioGauges,
    StoreStats, StoredTrace, TraceStore,
};
pub use telemetry::{
    chrome_trace_json, validate_chrome_trace, validate_manifest, ChromeTraceSummary, Manifest,
    ManifestConfig, ManifestStore, Progress, Telemetry,
};
pub use timeline::{
    validate_timeline, TimelineRecorder, TimelineRun, TimelineSpec, TIMELINE_SCHEMA,
};

// Re-export what downstream experiment code needs, so benches and examples
// can depend on this crate alone.
pub use cachegc_analysis::{
    activity, Activity, ActivityTracker, BlockReport, BlockTracker, Instrument, SweepPlot,
    Timeline, TimelineReport, TimelineWindow,
};
pub use cachegc_sim::{
    miss_penalty_cycles, writeback_cycles, Cache, CacheConfig, CacheStats, GridCache, MainMemory,
    Processor, SetAssocCache, WriteHitPolicy, WriteMissPolicy, FAST, SLOW,
};
pub use cachegc_trace::{BatchDecodeStats, EventBatch, RecordedTrace, Recorder, EVENT_BATCH};
pub use cachegc_vm::RunStats;
