//! The paper's overhead formulas (§5, §6).

/// `O_cache = M_prog · P / I_prog` (§5): time spent waiting for the
/// program's misses, as a fraction of the idealized running time in which
/// every instruction completes in one cycle and no misses occur.
///
/// `m_prog` counts *fetching* misses — the ones that stall the processor.
/// Under write-validate, write misses install a tag without fetching and
/// cost nothing here; that is the policy's entire benefit.
///
/// ```
/// use cachegc_core::cache_overhead;
/// assert_eq!(cache_overhead(1_000, 8, 1_000_000), 0.008);
/// ```
pub fn cache_overhead(m_prog: u64, penalty_cycles: u64, i_prog: u64) -> f64 {
    assert!(i_prog > 0, "idealized running time is zero");
    (m_prog * penalty_cycles) as f64 / i_prog as f64
}

/// `O_gc = ((M_gc + ΔM_prog) · P + I_gc + ΔI_prog) / I_prog` (§6).
///
/// `ΔM_prog` is the *change* in the program's own miss count relative to
/// the same run without collection; it can be negative when the collector
/// improves the program's locality by moving objects (nbody in the paper),
/// which can make the whole overhead negative.
///
/// ```
/// use cachegc_core::gc_overhead;
/// // A collector that removes more program misses than it costs.
/// let o = gc_overhead(100, -10_000, 10, 5_000, 0, 10_000_000);
/// assert!(o < 0.0);
/// ```
pub fn gc_overhead(
    m_gc: u64,
    delta_m_prog: i64,
    penalty_cycles: u64,
    i_gc: u64,
    delta_i_prog: u64,
    i_prog: u64,
) -> f64 {
    assert!(i_prog > 0, "idealized running time is zero");
    let miss_cycles = (m_gc as i64 + delta_m_prog) * penalty_cycles as i64;
    (miss_cycles + i_gc as i64 + delta_i_prog as i64) as f64 / i_prog as f64
}

/// Write overhead of a write-back cache: time spent writing dirty blocks
/// back to memory, as a fraction of the idealized running time. The paper
/// reports preliminary measurements of "almost always less than one
/// percent" (slow) and "less than three percent" (fast, ≥ 1 MB caches).
pub fn write_back_overhead(writebacks: u64, writeback_cycles: u64, i_prog: u64) -> f64 {
    assert!(i_prog > 0, "idealized running time is zero");
    (writebacks * writeback_cycles) as f64 / i_prog as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_overhead_is_linear_in_misses_and_penalty() {
        assert_eq!(cache_overhead(0, 8, 100), 0.0);
        assert_eq!(
            cache_overhead(50, 8, 100) * 2.0,
            cache_overhead(100, 8, 100)
        );
        assert_eq!(cache_overhead(50, 16, 100), cache_overhead(100, 8, 100));
    }

    #[test]
    fn gc_overhead_signs() {
        // Pure cost: positive.
        assert!(gc_overhead(1000, 0, 10, 5000, 100, 1_000_000) > 0.0);
        // Collector removes enough program misses to pay for itself.
        assert!(gc_overhead(10, -1_000_000, 10, 100, 0, 1_000_000) < 0.0);
        // Zero-cost collector: zero overhead.
        assert_eq!(gc_overhead(0, 0, 10, 0, 0, 1_000_000), 0.0);
    }

    #[test]
    fn run_time_composition() {
        // Running time = (O_cache + O_gc + 1) * I_prog.
        let i_prog = 2_000_000u64;
        let oc = cache_overhead(10_000, 11, i_prog);
        let og = gc_overhead(2_000, 500, 11, 40_000, 1_000, i_prog);
        let cycles = (oc + og + 1.0) * i_prog as f64;
        assert!(cycles > i_prog as f64);
    }

    #[test]
    #[should_panic(expected = "idealized")]
    fn zero_instructions_rejected() {
        cache_overhead(1, 1, 0);
    }
}
