//! Parallel experiment drivers.
//!
//! Three independent levels of parallelism, all built on std threads:
//!
//! 1. **Grid sharding** — [`run_control_engine`] / [`run_collected_engine`]
//!    (and their `_jobs` shorthands) replace the sequential
//!    [`cachegc_trace::Fanout`] with a [`ParallelFanout`] that spreads the
//!    cache grid's cells across worker threads, under either
//!    [`Schedule`](cachegc_trace::Schedule). One trace pass still drives
//!    every cell; per-cell results are bit-identical to the sequential path
//!    (see the determinism notes on [`ParallelFanout`] and the property
//!    tests in the workspace root).
//! 2. **Pass parallelism** — [`GcComparison::run_engine`] runs the control
//!    and collected trace passes concurrently; they share nothing but the
//!    (immutable) workload source and configuration.
//! 3. **Workload parallelism** — [`par_map`] runs a per-workload loop
//!    (the experiment binaries' outer loop) on a bounded thread pool.
//!
//! Heterogeneous instrument sets — mixed cache simulators and §7 analyzers
//! — go through the generic [`run_sinks`] (or [`run_instruments`] for the
//! closed [`Instrument`] set); the grid drivers above are the homogeneous
//! special case. An [`EngineConfig`] with `jobs <= 1` and the round-robin
//! schedule always takes the sequential code path, which the binaries
//! expose as the `--jobs 1` oracle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cachegc_analysis::Instrument;
use cachegc_gc::{CheneyCollector, GenerationalCollector, NoCollector};
use cachegc_sim::Cache;
use cachegc_trace::{EngineConfig, Fanout, ParallelFanout, TraceSink};
use cachegc_vm::{RunStats, VmError};
use cachegc_workloads::WorkloadInstance;

use crate::experiment::{
    collected_run, control_report, run_collected, run_control, CollectedRun, CollectorSpec,
    ControlReport, ExperimentConfig, GcComparison,
};

/// Degree of parallelism this machine supports (a sensible `--jobs`
/// default). Falls back to 1 if the platform cannot say.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn engine_grid(cfg: &ExperimentConfig, engine: &EngineConfig) -> ParallelFanout<Cache> {
    ParallelFanout::with_engine(cfg.configs().into_iter().map(Cache::new).collect(), engine)
}

/// Replay `instance` into `sink` under the given collector (`None` is the
/// collection-disabled control configuration). The common trunk of every
/// driver below.
fn run_spec_sink<S: TraceSink>(
    instance: WorkloadInstance,
    spec: Option<CollectorSpec>,
    sink: S,
) -> Result<(RunStats, S), VmError> {
    match spec {
        None => {
            let out = instance.run(NoCollector::new(), sink)?;
            Ok((out.stats, out.sink))
        }
        Some(CollectorSpec::Cheney { semispace_bytes }) => {
            let out = instance.run(CheneyCollector::new(semispace_bytes), sink)?;
            Ok((out.stats, out.sink))
        }
        Some(CollectorSpec::Generational {
            nursery_bytes,
            old_bytes,
        }) => {
            let out = instance.run(GenerationalCollector::new(nursery_bytes, old_bytes), sink)?;
            Ok((out.stats, out.sink))
        }
    }
}

/// Replay a workload into an arbitrary sink set — the general engine entry
/// point. A sequential `engine` uses the in-thread [`Fanout`]; otherwise
/// the sinks are spread across a [`ParallelFanout`] under the engine's
/// schedule. Per-sink results are bit-identical either way.
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_sinks<S>(
    instance: WorkloadInstance,
    spec: Option<CollectorSpec>,
    sinks: Vec<S>,
    engine: &EngineConfig,
) -> Result<(RunStats, Vec<S>), VmError>
where
    S: TraceSink + Send + 'static,
{
    if engine.is_sequential() {
        let (stats, fan) = run_spec_sink(instance, spec, Fanout::new(sinks))?;
        Ok((stats, fan.into_sinks()))
    } else {
        let (stats, fan) =
            run_spec_sink(instance, spec, ParallelFanout::with_engine(sinks, engine))?;
        Ok((stats, fan.into_sinks()))
    }
}

/// [`run_sinks`] for the closed heterogeneous [`Instrument`] set — mixed
/// cache geometries, organizations, and §7 analyzers in one trace pass.
/// Results come back in input order.
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_instruments(
    instance: WorkloadInstance,
    spec: Option<CollectorSpec>,
    instruments: Vec<Instrument>,
    engine: &EngineConfig,
) -> Result<(RunStats, Vec<Instrument>), VmError> {
    run_sinks(instance, spec, instruments, engine)
}

/// [`run_control`] with the cache grid driven by `engine`. A sequential
/// engine is exactly the sequential [`run_control`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_control_engine(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    engine: &EngineConfig,
) -> Result<ControlReport, VmError> {
    if engine.is_sequential() {
        return run_control(instance, cfg);
    }
    let (stats, fan) = run_spec_sink(instance, None, engine_grid(cfg, engine))?;
    Ok(control_report(instance, cfg, stats, fan.into_sinks()))
}

/// [`run_control_engine`] with a default (round-robin) engine of `jobs`
/// workers. `jobs <= 1` is exactly the sequential [`run_control`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_control_jobs(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    jobs: usize,
) -> Result<ControlReport, VmError> {
    run_control_engine(instance, cfg, &EngineConfig::jobs(jobs))
}

/// [`run_collected`] with the cache grid driven by `engine`. A sequential
/// engine is exactly the sequential [`run_collected`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_collected_engine(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    spec: CollectorSpec,
    engine: &EngineConfig,
) -> Result<CollectedRun, VmError> {
    if engine.is_sequential() {
        return run_collected(instance, cfg, spec);
    }
    let (stats, fan) = run_spec_sink(instance, Some(spec), engine_grid(cfg, engine))?;
    Ok(collected_run(instance, spec, stats, fan.into_sinks()))
}

/// [`run_collected_engine`] with a default (round-robin) engine of `jobs`
/// workers. `jobs <= 1` is exactly the sequential [`run_collected`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_collected_jobs(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    spec: CollectorSpec,
    jobs: usize,
) -> Result<CollectedRun, VmError> {
    run_collected_engine(instance, cfg, spec, &EngineConfig::jobs(jobs))
}

impl GcComparison {
    /// [`GcComparison::run`] with the control and collected passes on
    /// separate threads, each pass sharding its grid under `engine` with
    /// half the worker budget. A sequential engine is exactly the
    /// sequential [`GcComparison::run`].
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from either run.
    pub fn run_engine(
        instance: WorkloadInstance,
        cfg: &ExperimentConfig,
        spec: CollectorSpec,
        engine: &EngineConfig,
    ) -> Result<GcComparison, VmError> {
        if engine.is_sequential() {
            return GcComparison::run(instance, cfg, spec);
        }
        let mut shard = *engine;
        shard.jobs = (engine.jobs / 2).max(1);
        let (control, collected) = std::thread::scope(|s| {
            let control = s.spawn(|| run_control_engine(instance, cfg, &shard));
            let collected = s.spawn(|| run_collected_engine(instance, cfg, spec, &shard));
            (
                control.join().expect("control pass panicked"),
                collected.join().expect("collected pass panicked"),
            )
        });
        Ok(GcComparison {
            control: control?,
            collected: collected?,
        })
    }

    /// [`GcComparison::run_engine`] with a default (round-robin) engine of
    /// `jobs` workers. `jobs <= 1` is exactly the sequential
    /// [`GcComparison::run`].
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from either run.
    pub fn run_jobs(
        instance: WorkloadInstance,
        cfg: &ExperimentConfig,
        spec: CollectorSpec,
        jobs: usize,
    ) -> Result<GcComparison, VmError> {
        GcComparison::run_engine(instance, cfg, spec, &EngineConfig::jobs(jobs))
    }
}

/// Apply `f` to every item on a pool of at most `threads` threads,
/// preserving input order in the results. `threads <= 1` runs inline.
///
/// This is the driver for the experiment binaries' per-workload loops:
/// each of the paper's five programs is an independent trace pass.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker stored result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_analysis::{ActivityTracker, BlockTracker, SweepPlot};
    use cachegc_sim::{CacheConfig, SetAssocCache};
    use cachegc_trace::Schedule;
    use cachegc_workloads::Workload;

    fn grids_equal(a: &[crate::CacheCell], b: &[crate::CacheCell]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.config, y.config, "same grid order");
            assert_eq!(x.stats, y.stats, "{}: stats bit-identical", x.config);
        }
    }

    #[test]
    fn parallel_control_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let seq = run_control(w, &cfg).unwrap();
        let par = run_control_jobs(w, &cfg, 4).unwrap();
        assert_eq!(seq.refs, par.refs);
        assert_eq!(seq.i_prog, par.i_prog);
        assert_eq!(seq.allocated, par.allocated);
        grids_equal(&seq.cells, &par.cells);
    }

    #[test]
    fn work_stealing_control_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let seq = run_control(w, &cfg).unwrap();
        let engine = EngineConfig::jobs(3).with_schedule(Schedule::WorkStealing);
        let par = run_control_engine(w, &cfg, &engine).unwrap();
        assert_eq!(seq.refs, par.refs);
        grids_equal(&seq.cells, &par.cells);
    }

    #[test]
    fn parallel_collected_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Compile.scaled(1);
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let seq = run_collected(w, &cfg, spec).unwrap();
        let par = run_collected_jobs(w, &cfg, spec, 4).unwrap();
        assert_eq!(seq.i_prog, par.i_prog);
        assert_eq!(seq.i_gc, par.i_gc);
        assert_eq!(seq.gc.collections, par.gc.collections);
        for (x, y) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(x.config, y.config);
            assert_eq!((x.m_prog, x.m_gc), (y.m_prog, y.m_gc));
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn comparison_run_jobs_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let spec = CollectorSpec::Generational {
            nursery_bytes: 128 << 10,
            old_bytes: 8 << 20,
        };
        let seq = GcComparison::run(w, &cfg, spec).unwrap();
        let par = GcComparison::run_jobs(w, &cfg, spec, 4).unwrap();
        grids_equal(&seq.control.cells, &par.control.cells);
        assert_eq!(
            seq.collected.gc.minor_collections,
            par.collected.gc.minor_collections
        );
        for (size, block) in [(32 << 10, 64), (256 << 10, 64)] {
            assert_eq!(
                seq.gc_overhead(size, block, &crate::FAST).to_bits(),
                par.gc_overhead(size, block, &crate::FAST).to_bits(),
                "overhead identical to the last bit"
            );
        }
    }

    fn mixed_instruments() -> Vec<Instrument> {
        let cfg = CacheConfig::direct_mapped(32 << 10, 64);
        vec![
            Cache::new(cfg).into(),
            SetAssocCache::new(cfg.with_assoc(2)).into(),
            BlockTracker::new(32 << 10, 64).into(),
            SweepPlot::new(cfg, 4096).into(),
            ActivityTracker::new(cfg).into(),
        ]
    }

    #[test]
    fn instruments_identical_under_every_schedule() {
        let w = Workload::Rewrite.scaled(1);
        let seq = EngineConfig::default();
        let (stats0, oracle) = run_instruments(w, None, mixed_instruments(), &seq).unwrap();
        for schedule in [Schedule::RoundRobin, Schedule::WorkStealing] {
            let engine = EngineConfig::jobs(3).with_schedule(schedule);
            let (stats, out) = run_instruments(w, None, mixed_instruments(), &engine).unwrap();
            assert_eq!(stats0.instructions.program(), stats.instructions.program());
            assert_eq!(
                oracle,
                out,
                "{}: instrument set bit-identical",
                schedule.name()
            );
        }
    }

    #[test]
    fn run_sinks_under_a_collector_attributes_contexts() {
        let w = Workload::Rewrite.scaled(1);
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let engine = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);
        let sinks = vec![Cache::new(CacheConfig::direct_mapped(32 << 10, 64))];
        let (stats, out) = run_sinks(w, Some(spec), sinks, &engine).unwrap();
        assert!(stats.gc.collections > 0, "heap small enough to force GC");
        assert!(
            out[0].stats().refs_by(cachegc_trace::Context::Collector) > 0,
            "collector references reach the sink"
        );
    }

    #[test]
    fn par_map_preserves_order_and_covers_all() {
        let items: Vec<u64> = (0..37).collect();
        let doubled = par_map(&items, 5, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Inline path.
        assert_eq!(par_map(&items, 1, |&x| x + 1)[36], 37);
        // More threads than items.
        assert_eq!(par_map(&[1u64, 2], 16, |&x| x).len(), 2);
        let empty: [u64; 0] = [];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
    }
}
