//! Parallel experiment drivers.
//!
//! Three independent levels of parallelism, all built on std threads:
//!
//! 1. **Grid sharding** — [`run_control_jobs`] / [`run_collected_jobs`]
//!    replace the sequential [`cachegc_trace::Fanout`] with a
//!    [`ParallelFanout`] that spreads the cache grid's cells across worker
//!    threads. One trace pass still drives every cell; per-cell results
//!    are bit-identical to the sequential path (see the determinism notes
//!    on [`ParallelFanout`] and the property tests in the workspace root).
//! 2. **Pass parallelism** — [`GcComparison::run_jobs`] runs the control
//!    and collected trace passes concurrently; they share nothing but the
//!    (immutable) workload source and configuration.
//! 3. **Workload parallelism** — [`par_map`] runs a per-workload loop
//!    (the experiment binaries' outer loop) on a bounded thread pool.
//!
//! `jobs <= 1` always takes the sequential code path, which the binaries
//! expose as the `--jobs 1` oracle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cachegc_gc::{CheneyCollector, GenerationalCollector, NoCollector};
use cachegc_sim::Cache;
use cachegc_trace::ParallelFanout;
use cachegc_vm::VmError;
use cachegc_workloads::WorkloadInstance;

use crate::experiment::{
    collected_run, control_report, run_collected, run_control, CollectedRun, CollectorSpec,
    ControlReport, ExperimentConfig, GcComparison,
};

/// Degree of parallelism this machine supports (a sensible `--jobs`
/// default). Falls back to 1 if the platform cannot say.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parallel_grid(cfg: &ExperimentConfig, jobs: usize) -> ParallelFanout<Cache> {
    ParallelFanout::new(cfg.configs().into_iter().map(Cache::new).collect(), jobs)
}

/// [`run_control`] with the cache grid sharded across `jobs` worker
/// threads. `jobs <= 1` is exactly the sequential [`run_control`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_control_jobs(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    jobs: usize,
) -> Result<ControlReport, VmError> {
    if jobs <= 1 {
        return run_control(instance, cfg);
    }
    let out = instance.run(NoCollector::new(), parallel_grid(cfg, jobs))?;
    Ok(control_report(
        instance,
        cfg,
        out.stats,
        out.sink.into_sinks(),
    ))
}

/// [`run_collected`] with the cache grid sharded across `jobs` worker
/// threads. `jobs <= 1` is exactly the sequential [`run_collected`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_collected_jobs(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    spec: CollectorSpec,
    jobs: usize,
) -> Result<CollectedRun, VmError> {
    if jobs <= 1 {
        return run_collected(instance, cfg, spec);
    }
    let (stats, caches) = match spec {
        CollectorSpec::Cheney { semispace_bytes } => {
            let out = instance.run(
                CheneyCollector::new(semispace_bytes),
                parallel_grid(cfg, jobs),
            )?;
            (out.stats, out.sink.into_sinks())
        }
        CollectorSpec::Generational {
            nursery_bytes,
            old_bytes,
        } => {
            let out = instance.run(
                GenerationalCollector::new(nursery_bytes, old_bytes),
                parallel_grid(cfg, jobs),
            )?;
            (out.stats, out.sink.into_sinks())
        }
    };
    Ok(collected_run(instance, spec, stats, caches))
}

impl GcComparison {
    /// [`GcComparison::run`] with the control and collected passes on
    /// separate threads, each pass sharding its grid across `jobs / 2`
    /// workers. `jobs <= 1` is exactly the sequential [`GcComparison::run`].
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from either run.
    pub fn run_jobs(
        instance: WorkloadInstance,
        cfg: &ExperimentConfig,
        spec: CollectorSpec,
        jobs: usize,
    ) -> Result<GcComparison, VmError> {
        if jobs <= 1 {
            return GcComparison::run(instance, cfg, spec);
        }
        let shard_jobs = (jobs / 2).max(1);
        let (control, collected) = std::thread::scope(|s| {
            let control = s.spawn(|| run_control_jobs(instance, cfg, shard_jobs));
            let collected = s.spawn(|| run_collected_jobs(instance, cfg, spec, shard_jobs));
            (
                control.join().expect("control pass panicked"),
                collected.join().expect("collected pass panicked"),
            )
        });
        Ok(GcComparison {
            control: control?,
            collected: collected?,
        })
    }
}

/// Apply `f` to every item on a pool of at most `threads` threads,
/// preserving input order in the results. `threads <= 1` runs inline.
///
/// This is the driver for the experiment binaries' per-workload loops:
/// each of the paper's five programs is an independent trace pass.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker stored result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_workloads::Workload;

    fn grids_equal(a: &[crate::CacheCell], b: &[crate::CacheCell]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.config, y.config, "same grid order");
            assert_eq!(x.stats, y.stats, "{}: stats bit-identical", x.config);
        }
    }

    #[test]
    fn parallel_control_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let seq = run_control(w, &cfg).unwrap();
        let par = run_control_jobs(w, &cfg, 4).unwrap();
        assert_eq!(seq.refs, par.refs);
        assert_eq!(seq.i_prog, par.i_prog);
        assert_eq!(seq.allocated, par.allocated);
        grids_equal(&seq.cells, &par.cells);
    }

    #[test]
    fn parallel_collected_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Compile.scaled(1);
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let seq = run_collected(w, &cfg, spec).unwrap();
        let par = run_collected_jobs(w, &cfg, spec, 4).unwrap();
        assert_eq!(seq.i_prog, par.i_prog);
        assert_eq!(seq.i_gc, par.i_gc);
        assert_eq!(seq.gc.collections, par.gc.collections);
        for (x, y) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(x.config, y.config);
            assert_eq!((x.m_prog, x.m_gc), (y.m_prog, y.m_gc));
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn comparison_run_jobs_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let spec = CollectorSpec::Generational {
            nursery_bytes: 128 << 10,
            old_bytes: 8 << 20,
        };
        let seq = GcComparison::run(w, &cfg, spec).unwrap();
        let par = GcComparison::run_jobs(w, &cfg, spec, 4).unwrap();
        grids_equal(&seq.control.cells, &par.control.cells);
        assert_eq!(
            seq.collected.gc.minor_collections,
            par.collected.gc.minor_collections
        );
        for (size, block) in [(32 << 10, 64), (256 << 10, 64)] {
            assert_eq!(
                seq.gc_overhead(size, block, &crate::FAST).to_bits(),
                par.gc_overhead(size, block, &crate::FAST).to_bits(),
                "overhead identical to the last bit"
            );
        }
    }

    #[test]
    fn par_map_preserves_order_and_covers_all() {
        let items: Vec<u64> = (0..37).collect();
        let doubled = par_map(&items, 5, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Inline path.
        assert_eq!(par_map(&items, 1, |&x| x + 1)[36], 37);
        // More threads than items.
        assert_eq!(par_map(&[1u64, 2], 16, |&x| x).len(), 2);
        let empty: [u64; 0] = [];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
    }
}
