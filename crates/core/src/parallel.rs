//! Parallel experiment drivers.
//!
//! Three independent levels of parallelism, all built on std threads:
//!
//! 1. **Grid sharding** — [`run_control_engine`] / [`run_collected_engine`]
//!    (and their `_jobs` shorthands) replace the sequential
//!    [`cachegc_trace::Fanout`] with a [`ParallelFanout`] that spreads the
//!    cache grid's cells across worker threads, under either
//!    [`Schedule`](cachegc_trace::Schedule). One trace pass still drives
//!    every cell; per-cell results are bit-identical to the sequential path
//!    (see the determinism notes on [`ParallelFanout`] and the property
//!    tests in the workspace root).
//! 2. **Pass parallelism** — [`GcComparison::run_engine`] runs the control
//!    and collected trace passes concurrently; they share nothing but the
//!    (immutable) workload source and configuration.
//! 3. **Workload parallelism** — [`par_map`] runs a per-workload loop
//!    (the experiment binaries' outer loop) on a bounded thread pool.
//!
//! Heterogeneous instrument sets — mixed cache simulators and §7 analyzers
//! — go through the generic [`run_sinks`] (or [`run_instruments`] for the
//! closed [`Instrument`] set); the grid drivers above are the homogeneous
//! special case. An [`EngineConfig`] with `jobs <= 1` and the round-robin
//! schedule always takes the sequential code path, which the binaries
//! expose as the `--jobs 1` oracle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cachegc_analysis::Instrument;
use cachegc_gc::{
    CheneyCollector, GenerationalCollector, ImmixCollector, MarkSweepCollector, NoCollector,
};
use cachegc_sim::Cache;
use cachegc_telemetry::{probe, Counter, EngineReport, WorkerStats};
use cachegc_trace::{EngineConfig, Fanout, ParallelFanout, RefCounter, TraceSink};
use cachegc_vm::{RunStats, VmError};
use cachegc_workloads::WorkloadInstance;

use crate::experiment::{
    collected_run, control_report, run_collected, run_control, CollectedRun, CollectorSpec,
    ControlReport, ExperimentConfig, GcComparison,
};
use crate::store::{scenario_label, OfferOutcome, RunCtx};

/// Degree of parallelism this machine supports (a sensible `--jobs`
/// default). Falls back to 1 if the platform cannot say.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn engine_grid(cfg: &ExperimentConfig, engine: &EngineConfig) -> ParallelFanout<Cache> {
    ParallelFanout::with_engine(cfg.configs().into_iter().map(Cache::new).collect(), engine)
}

/// Replay `instance` into `sink` under the given collector (`None` is the
/// collection-disabled control configuration). The common trunk of every
/// driver below.
fn run_spec_sink<S: TraceSink>(
    instance: WorkloadInstance,
    spec: Option<CollectorSpec>,
    sink: S,
) -> Result<(RunStats, S), VmError> {
    match spec {
        None => {
            let out = instance.run(NoCollector::new(), sink)?;
            Ok((out.stats, out.sink))
        }
        Some(CollectorSpec::Cheney { semispace_bytes }) => {
            let out = instance.run(CheneyCollector::new(semispace_bytes), sink)?;
            Ok((out.stats, out.sink))
        }
        Some(CollectorSpec::Generational {
            nursery_bytes,
            old_bytes,
        }) => {
            let out = instance.run(GenerationalCollector::new(nursery_bytes, old_bytes), sink)?;
            Ok((out.stats, out.sink))
        }
        Some(CollectorSpec::Immix { heap_bytes }) => {
            let out = instance.run(ImmixCollector::new(heap_bytes), sink)?;
            Ok((out.stats, out.sink))
        }
        Some(CollectorSpec::MarkSweep { heap_bytes }) => {
            let out = instance.run(MarkSweepCollector::new(heap_bytes), sink)?;
            Ok((out.stats, out.sink))
        }
    }
}

/// Replay a workload into an arbitrary sink set — the general engine entry
/// point. A sequential `engine` uses the in-thread [`Fanout`]; otherwise
/// the sinks are spread across a [`ParallelFanout`] under the engine's
/// schedule. Per-sink results are bit-identical either way.
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_sinks<S>(
    instance: WorkloadInstance,
    spec: Option<CollectorSpec>,
    sinks: Vec<S>,
    engine: &EngineConfig,
) -> Result<(RunStats, Vec<S>), VmError>
where
    S: TraceSink + Send + 'static,
{
    if engine.is_sequential() {
        let (stats, fan) = run_spec_sink(instance, spec, Fanout::new(sinks))?;
        Ok((stats, fan.into_sinks()))
    } else {
        let (stats, fan) =
            run_spec_sink(instance, spec, ParallelFanout::with_engine(sinks, engine))?;
        Ok((stats, fan.into_sinks()))
    }
}

/// [`run_sinks`] under a [`RunCtx`] — the trace-cache-aware engine entry
/// point. Three cases:
///
/// * No store attached: exactly [`run_sinks`].
/// * Store hit: the sinks are driven by a **sharded replay** of the
///   recorded trace — no VM, no broadcast channel; each worker
///   independently decodes the shared segments into its own sink subset.
///   The recorded [`RunStats`] are returned.
/// * Store miss: the pass runs live with a [`Recorder`] riding along on
///   the tuple sink, and the capture is offered back to the store (which
///   may decline it on budget grounds; see
///   [`TraceStore`](crate::TraceStore)).
///
/// Per-sink results are bit-identical across all three paths (replay is
/// event-for-event identical to the live run, property-tested in the
/// workspace root).
///
/// When the context carries a [`Telemetry`](crate::telemetry::Telemetry)
/// registry, this driver is also the instrumentation root: it attaches a
/// probe shard on the calling thread (so GC/VM probes light up for the
/// pass), times the `vm_execute` / `record` / `replay` / `sink_drain`
/// phases (`record` wraps the live run on the miss path, so those spans
/// overlap `vm_execute` by design), counts live VM runs and store
/// capture outcomes, and has the engine report per-worker observability.
/// A context carrying a [`Progress`](crate::telemetry::Progress) gets
/// one tick per completed pass. Neither changes any result bit.
///
/// # Errors
///
/// Propagates any [`VmError`] from the program (live paths only — replay
/// cannot fail).
pub fn run_sinks_ctx<S>(
    instance: WorkloadInstance,
    spec: Option<CollectorSpec>,
    sinks: Vec<S>,
    ctx: &RunCtx<'_>,
) -> Result<(RunStats, Vec<S>), VmError>
where
    S: TraceSink + Send + 'static,
{
    let _shard = ctx.telemetry.map(|t| t.attach());
    let result = run_sinks_ctx_inner(instance, spec, sinks, ctx);
    if result.is_ok() {
        if let Some(progress) = ctx.progress {
            progress.tick(ctx.store);
        }
    }
    result
}

/// Report a pass that did *not* ride a `ParallelFanout` — a sequential
/// fanout or a sharded replay — to the telemetry engine totals, so every
/// pass appears in the manifest's engine block whatever path drove it.
/// The `schedule` label distinguishes the paths (`sequential` / `replay`)
/// from the real engine schedules. Worker `i`'s `events` counts the
/// `(event, sink)` pairs it drove under the round-robin sink sharding
/// both paths use.
fn record_flat_engine(
    ctx: &RunCtx<'_>,
    schedule: &'static str,
    jobs: usize,
    n_sinks: usize,
    events: u64,
) {
    let Some(telemetry) = ctx.telemetry else {
        return;
    };
    let workers = (0..jobs)
        .map(|i| {
            let shard = (n_sinks / jobs) + usize::from(i < n_sinks % jobs);
            WorkerStats {
                events: events * shard as u64,
                chunks: 0,
                steals: 0,
                idle_ns: 0,
            }
        })
        .collect();
    telemetry.record_engine(&EngineReport {
        schedule,
        jobs,
        sinks: n_sinks,
        chunks_published: 0,
        events_published: events,
        backpressure_ns: 0,
        queue_depth_hwm: 0,
        workers,
    });
}

fn run_sinks_ctx_inner<S>(
    instance: WorkloadInstance,
    spec: Option<CollectorSpec>,
    sinks: Vec<S>,
    ctx: &RunCtx<'_>,
) -> Result<(RunStats, Vec<S>), VmError>
where
    S: TraceSink + Send + 'static,
{
    let Some(store) = ctx.store else {
        // Live pass, nothing to record.
        probe!(Counter::VmRuns);
        if ctx.engine.is_sequential() {
            if ctx.telemetry.is_some() {
                // A tally rides the tuple sink so the sequential pass can
                // report its event volume like the parallel engine does.
                let (stats, (tally, fan)) = {
                    let _vm = probe::phase_cpu("vm_execute");
                    run_spec_sink(instance, spec, (RefCounter::new(), Fanout::new(sinks)))?
                };
                let _drain = probe::phase("sink_drain");
                let sinks = fan.into_sinks();
                record_flat_engine(ctx, "sequential", 1, sinks.len(), tally.total());
                return Ok((stats, sinks));
            }
            let (stats, fan) = {
                let _vm = probe::phase_cpu("vm_execute");
                run_spec_sink(instance, spec, Fanout::new(sinks))?
            };
            let _drain = probe::phase("sink_drain");
            return Ok((stats, fan.into_sinks()));
        }
        let fan = ParallelFanout::with_engine_observed(sinks, &ctx.engine, ctx.telemetry.cloned());
        let (stats, fan) = {
            let _vm = probe::phase_cpu("vm_execute");
            run_spec_sink(instance, spec, fan)?
        };
        let _drain = probe::phase("sink_drain");
        return Ok((stats, fan.into_sinks()));
    };
    if let Some(stored) = store.lookup(instance, spec) {
        let n_sinks = sinks.len();
        let events = stored.trace.events();
        let sinks = {
            let _replay = probe::phase("replay");
            stored.trace.replay_sharded(sinks, ctx.engine.jobs)
        };
        let jobs = ctx.engine.jobs.clamp(1, n_sinks.max(1));
        record_flat_engine(ctx, "replay", jobs, n_sinks, events);
        return Ok((stored.stats, sinks));
    }
    // Miss: run live with a recorder riding along, then offer the capture
    // back to the store.
    probe!(Counter::VmRuns);
    let record_start = Instant::now();
    let _record = probe::phase("record");
    let recorder = store.recorder();
    let (stats, recorder, sinks) = if ctx.engine.is_sequential() {
        let (stats, (rec, fan)) = {
            let _vm = probe::phase_cpu("vm_execute");
            run_spec_sink(instance, spec, (recorder, Fanout::new(sinks)))?
        };
        let _drain = probe::phase("sink_drain");
        let sinks = fan.into_sinks();
        record_flat_engine(ctx, "sequential", 1, sinks.len(), rec.events());
        (stats, rec, sinks)
    } else {
        let fan = ParallelFanout::with_engine_observed(sinks, &ctx.engine, ctx.telemetry.cloned());
        let (stats, (rec, fan)) = {
            let _vm = probe::phase_cpu("vm_execute");
            run_spec_sink(instance, spec, (recorder, fan))?
        };
        let _drain = probe::phase("sink_drain");
        (stats, rec, fan.into_sinks())
    };
    match store.offer(instance, spec, recorder, stats, record_start.elapsed()) {
        OfferOutcome::Stored { bytes, events } => {
            probe!(Counter::StoreRecordedBytes, bytes);
            probe!(Counter::StoreRecordedEvents, events);
        }
        OfferOutcome::DroppedOverBudget => {
            probe!(Counter::StoreCapturesDropped);
            if let Some(telemetry) = ctx.telemetry {
                telemetry.warn(&format!(
                    "trace store dropped over-budget capture of {} \
                     (budget {} bytes); the scenario keeps running live",
                    scenario_label(instance, spec),
                    store.budget()
                ));
            }
        }
        OfferOutcome::Duplicate => {}
    }
    Ok((stats, sinks))
}

/// [`run_sinks_ctx`] for the closed heterogeneous [`Instrument`] set.
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_instruments_ctx(
    instance: WorkloadInstance,
    spec: Option<CollectorSpec>,
    instruments: Vec<Instrument>,
    ctx: &RunCtx<'_>,
) -> Result<(RunStats, Vec<Instrument>), VmError> {
    run_sinks_ctx(instance, spec, instruments, ctx)
}

/// [`run_control`] under a [`RunCtx`]: the §5 control grid, replayed
/// from the store when the scenario is recorded.
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_control_ctx(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    ctx: &RunCtx<'_>,
) -> Result<ControlReport, VmError> {
    let sinks: Vec<Cache> = cfg.configs().into_iter().map(Cache::new).collect();
    let (stats, cells) = run_sinks_ctx(instance, None, sinks, ctx)?;
    Ok(control_report(instance, cfg, stats, cells))
}

/// [`run_collected`] under a [`RunCtx`]: the §6 collected grid, replayed
/// from the store when the scenario is recorded.
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_collected_ctx(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    spec: CollectorSpec,
    ctx: &RunCtx<'_>,
) -> Result<CollectedRun, VmError> {
    let sinks: Vec<Cache> = cfg.configs().into_iter().map(Cache::new).collect();
    let (stats, cells) = run_sinks_ctx(instance, Some(spec), sinks, ctx)?;
    Ok(collected_run(instance, spec, stats, cells))
}

/// [`run_sinks`] for the closed heterogeneous [`Instrument`] set — mixed
/// cache geometries, organizations, and §7 analyzers in one trace pass.
/// Results come back in input order.
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_instruments(
    instance: WorkloadInstance,
    spec: Option<CollectorSpec>,
    instruments: Vec<Instrument>,
    engine: &EngineConfig,
) -> Result<(RunStats, Vec<Instrument>), VmError> {
    run_sinks(instance, spec, instruments, engine)
}

/// [`run_control`] with the cache grid driven by `engine`. A sequential
/// engine is exactly the sequential [`run_control`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_control_engine(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    engine: &EngineConfig,
) -> Result<ControlReport, VmError> {
    if engine.is_sequential() {
        return run_control(instance, cfg);
    }
    let (stats, fan) = run_spec_sink(instance, None, engine_grid(cfg, engine))?;
    Ok(control_report(instance, cfg, stats, fan.into_sinks()))
}

/// [`run_control_engine`] with a default (round-robin) engine of `jobs`
/// workers. `jobs <= 1` is exactly the sequential [`run_control`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_control_jobs(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    jobs: usize,
) -> Result<ControlReport, VmError> {
    run_control_engine(instance, cfg, &EngineConfig::jobs(jobs))
}

/// [`run_collected`] with the cache grid driven by `engine`. A sequential
/// engine is exactly the sequential [`run_collected`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_collected_engine(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    spec: CollectorSpec,
    engine: &EngineConfig,
) -> Result<CollectedRun, VmError> {
    if engine.is_sequential() {
        return run_collected(instance, cfg, spec);
    }
    let (stats, fan) = run_spec_sink(instance, Some(spec), engine_grid(cfg, engine))?;
    Ok(collected_run(instance, spec, stats, fan.into_sinks()))
}

/// [`run_collected_engine`] with a default (round-robin) engine of `jobs`
/// workers. `jobs <= 1` is exactly the sequential [`run_collected`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the program.
pub fn run_collected_jobs(
    instance: WorkloadInstance,
    cfg: &ExperimentConfig,
    spec: CollectorSpec,
    jobs: usize,
) -> Result<CollectedRun, VmError> {
    run_collected_engine(instance, cfg, spec, &EngineConfig::jobs(jobs))
}

impl GcComparison {
    /// [`GcComparison::run`] under a [`RunCtx`]: the control and
    /// collected passes run on separate threads, splitting the engine's
    /// worker budget between them. A pass whose scenario is already
    /// recorded in the context's store is a cheap replay, so it gets the
    /// minimum (one worker) and the live pass gets the remainder; when
    /// both are live (or both recorded) the budget is halved, with the
    /// odd worker going to the collected pass (the one with more events).
    /// A sequential engine runs both passes inline, still through the
    /// store.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from either run.
    pub fn run_ctx(
        instance: WorkloadInstance,
        cfg: &ExperimentConfig,
        spec: CollectorSpec,
        ctx: &RunCtx<'_>,
    ) -> Result<GcComparison, VmError> {
        if ctx.engine.is_sequential() {
            // Even store-less sequential runs go through the `_ctx`
            // drivers, so telemetry and progress behave uniformly.
            return Ok(GcComparison {
                control: run_control_ctx(instance, cfg, ctx)?,
                collected: run_collected_ctx(instance, cfg, spec, ctx)?,
            });
        }
        let jobs = ctx.engine.jobs.max(1);
        let control_replays = ctx.store.is_some_and(|s| s.contains(instance, None));
        let collected_replays = ctx.store.is_some_and(|s| s.contains(instance, Some(spec)));
        let (control_jobs, collected_jobs) = match (control_replays, collected_replays) {
            (true, false) => (1, jobs.saturating_sub(1).max(1)),
            (false, true) => (jobs.saturating_sub(1).max(1), 1),
            _ => ((jobs / 2).max(1), (jobs - jobs / 2).max(1)),
        };
        let control_ctx = ctx.with_jobs(control_jobs);
        let collected_ctx = ctx.with_jobs(collected_jobs);
        let (control, collected) = std::thread::scope(|s| {
            let control = s.spawn(|| run_control_ctx(instance, cfg, &control_ctx));
            let collected = s.spawn(|| run_collected_ctx(instance, cfg, spec, &collected_ctx));
            (
                control.join().expect("control pass panicked"),
                collected.join().expect("collected pass panicked"),
            )
        });
        Ok(GcComparison {
            control: control?,
            collected: collected?,
        })
    }

    /// [`GcComparison::run_ctx`] without a trace store. A sequential
    /// engine is exactly the sequential [`GcComparison::run`].
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from either run.
    pub fn run_engine(
        instance: WorkloadInstance,
        cfg: &ExperimentConfig,
        spec: CollectorSpec,
        engine: &EngineConfig,
    ) -> Result<GcComparison, VmError> {
        GcComparison::run_ctx(instance, cfg, spec, &RunCtx::new(*engine))
    }

    /// [`GcComparison::run_engine`] with a default (round-robin) engine of
    /// `jobs` workers. `jobs <= 1` is exactly the sequential
    /// [`GcComparison::run`].
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from either run.
    pub fn run_jobs(
        instance: WorkloadInstance,
        cfg: &ExperimentConfig,
        spec: CollectorSpec,
        jobs: usize,
    ) -> Result<GcComparison, VmError> {
        GcComparison::run_engine(instance, cfg, spec, &EngineConfig::jobs(jobs))
    }
}

/// Apply `f` to every item on a pool of at most `threads` threads,
/// preserving input order in the results. `threads <= 1` runs inline.
///
/// This is the driver for the experiment binaries' per-workload loops:
/// each of the paper's five programs is an independent trace pass.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker stored result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_analysis::{ActivityTracker, BlockTracker, SweepPlot};
    use cachegc_sim::{CacheConfig, SetAssocCache};
    use cachegc_trace::Schedule;
    use cachegc_workloads::Workload;

    fn grids_equal(a: &[crate::CacheCell], b: &[crate::CacheCell]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.config, y.config, "same grid order");
            assert_eq!(x.stats, y.stats, "{}: stats bit-identical", x.config);
        }
    }

    #[test]
    fn parallel_control_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let seq = run_control(w, &cfg).unwrap();
        let par = run_control_jobs(w, &cfg, 4).unwrap();
        assert_eq!(seq.refs, par.refs);
        assert_eq!(seq.i_prog, par.i_prog);
        assert_eq!(seq.allocated, par.allocated);
        grids_equal(&seq.cells, &par.cells);
    }

    #[test]
    fn work_stealing_control_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let seq = run_control(w, &cfg).unwrap();
        let engine = EngineConfig::jobs(3).with_schedule(Schedule::WorkStealing);
        let par = run_control_engine(w, &cfg, &engine).unwrap();
        assert_eq!(seq.refs, par.refs);
        grids_equal(&seq.cells, &par.cells);
    }

    #[test]
    fn parallel_collected_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Compile.scaled(1);
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let seq = run_collected(w, &cfg, spec).unwrap();
        let par = run_collected_jobs(w, &cfg, spec, 4).unwrap();
        assert_eq!(seq.i_prog, par.i_prog);
        assert_eq!(seq.i_gc, par.i_gc);
        assert_eq!(seq.gc.collections, par.gc.collections);
        for (x, y) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(x.config, y.config);
            assert_eq!((x.m_prog, x.m_gc), (y.m_prog, y.m_gc));
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn comparison_run_jobs_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let spec = CollectorSpec::Generational {
            nursery_bytes: 128 << 10,
            old_bytes: 8 << 20,
        };
        let seq = GcComparison::run(w, &cfg, spec).unwrap();
        let par = GcComparison::run_jobs(w, &cfg, spec, 4).unwrap();
        grids_equal(&seq.control.cells, &par.control.cells);
        assert_eq!(
            seq.collected.gc.minor_collections,
            par.collected.gc.minor_collections
        );
        for (size, block) in [(32 << 10, 64), (256 << 10, 64)] {
            assert_eq!(
                seq.gc_overhead(size, block, &crate::FAST).to_bits(),
                par.gc_overhead(size, block, &crate::FAST).to_bits(),
                "overhead identical to the last bit"
            );
        }
    }

    fn mixed_instruments() -> Vec<Instrument> {
        let cfg = CacheConfig::direct_mapped(32 << 10, 64);
        vec![
            Cache::new(cfg).into(),
            SetAssocCache::new(cfg.with_assoc(2)).into(),
            BlockTracker::new(32 << 10, 64).into(),
            SweepPlot::new(cfg, 4096).into(),
            ActivityTracker::new(cfg).into(),
        ]
    }

    #[test]
    fn instruments_identical_under_every_schedule() {
        let w = Workload::Rewrite.scaled(1);
        let seq = EngineConfig::default();
        let (stats0, oracle) = run_instruments(w, None, mixed_instruments(), &seq).unwrap();
        for schedule in [Schedule::RoundRobin, Schedule::WorkStealing] {
            let engine = EngineConfig::jobs(3).with_schedule(schedule);
            let (stats, out) = run_instruments(w, None, mixed_instruments(), &engine).unwrap();
            assert_eq!(stats0.instructions.program(), stats.instructions.program());
            assert_eq!(
                oracle,
                out,
                "{}: instrument set bit-identical",
                schedule.name()
            );
        }
    }

    #[test]
    fn run_sinks_under_a_collector_attributes_contexts() {
        let w = Workload::Rewrite.scaled(1);
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let engine = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);
        let sinks = vec![Cache::new(CacheConfig::direct_mapped(32 << 10, 64))];
        let (stats, out) = run_sinks(w, Some(spec), sinks, &engine).unwrap();
        assert!(stats.gc.collections > 0, "heap small enough to force GC");
        assert!(
            out[0].stats().refs_by(cachegc_trace::Context::Collector) > 0,
            "collector references reach the sink"
        );
    }

    #[test]
    fn cached_replay_matches_live_and_counts_one_vm_run() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let store = crate::TraceStore::unbounded();
        let engine = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);
        let ctx = RunCtx::new(engine).with_store(&store);
        let oracle = run_control(w, &cfg).unwrap();
        let live = run_control_ctx(w, &cfg, &ctx).unwrap(); // miss: records
        let replay = run_control_ctx(w, &cfg, &ctx).unwrap(); // hit: replays
        assert_eq!(oracle.refs, live.refs);
        assert_eq!(oracle.refs, replay.refs);
        assert_eq!(oracle.i_prog, replay.i_prog);
        assert_eq!(oracle.allocated, replay.allocated);
        grids_equal(&oracle.cells, &live.cells);
        grids_equal(&oracle.cells, &replay.cells);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.over_budget), (1, 1, 1, 0));
        assert!(s.bytes > 0 && s.events == oracle.refs);
        // Every later consumer of the same scenario — a different sink
        // set, a sequential context — replays too, VM still run once.
        let seq_ctx = RunCtx::sequential().with_store(&store);
        let again = run_control_ctx(w, &cfg, &seq_ctx).unwrap();
        grids_equal(&oracle.cells, &again.cells);
        assert_eq!(store.stats().misses, 1, "VM ran exactly once");
    }

    #[test]
    fn over_budget_store_falls_back_to_live_runs() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let store = crate::TraceStore::with_budget(64);
        let ctx = RunCtx::new(EngineConfig::jobs(2)).with_store(&store);
        let a = run_control_ctx(w, &cfg, &ctx).unwrap();
        let b = run_control_ctx(w, &cfg, &ctx).unwrap();
        grids_equal(&a.cells, &b.cells);
        let s = store.stats();
        assert_eq!((s.entries, s.misses, s.over_budget), (0, 2, 2));
    }

    #[test]
    fn comparison_run_ctx_reuses_a_prior_control_recording() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let store = crate::TraceStore::unbounded();
        let ctx = RunCtx::new(EngineConfig::jobs(4)).with_store(&store);
        // An earlier experiment (e3-style) already recorded the control
        // scenario; the comparison's control pass must be a replay.
        run_control_ctx(w, &cfg, &ctx).unwrap();
        let cmp = GcComparison::run_ctx(w, &cfg, spec, &ctx).unwrap();
        let seq = GcComparison::run(w, &cfg, spec).unwrap();
        grids_equal(&seq.control.cells, &cmp.control.cells);
        for (x, y) in seq.collected.cells.iter().zip(&cmp.collected.cells) {
            assert_eq!((x.m_prog, x.m_gc), (y.m_prog, y.m_gc));
            assert_eq!(x.stats, y.stats);
        }
        assert_eq!(
            seq.gc_overhead(32 << 10, 64, &crate::FAST).to_bits(),
            cmp.gc_overhead(32 << 10, 64, &crate::FAST).to_bits(),
        );
        let s = store.stats();
        assert_eq!(s.misses, 2, "one VM run per unique scenario");
        assert_eq!(s.entries, 2);
        assert_eq!(s.hits, 1, "the comparison's control pass replayed");
    }

    #[test]
    fn par_map_preserves_order_and_covers_all() {
        let items: Vec<u64> = (0..37).collect();
        let doubled = par_map(&items, 5, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Inline path.
        assert_eq!(par_map(&items, 1, |&x| x + 1)[36], 37);
        // More threads than items.
        assert_eq!(par_map(&[1u64, 2], 16, |&x| x).len(), 2);
        let empty: [u64; 0] = [];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
    }
}
