//! Named-column tables: the one way every experiment binary reports.
//!
//! Each sweep binary assembles its results into [`Table`]s — named columns
//! plus typed rows — and renders them through one code path: an aligned
//! text table for the terminal and, on request, CSV into `results/` so
//! successive PRs can diff experiment outputs against the paper's expected
//! shapes mechanically instead of re-parsing hand-rolled `print!` layouts.
//!
//! The CSV path is a *round trip*: [`Table::to_csv`] writes machine values
//! (raw bytes, raw fractions, shortest-round-trip floats, empty cells for
//! non-finite values) and [`Table::from_csv`] reads them back as typed
//! [`Cell`]s such that re-serializing reproduces the input byte for byte.
//! The reader is what the golden-results harness diffs checked-in expected
//! tables against, so the fixed point is load-bearing, not cosmetic.

use std::fmt::Write as _;
use std::path::Path;

/// One typed table cell.
///
/// The human rendering and the CSV value differ deliberately: a byte count
/// renders as `64k` but round-trips through CSV as `65536`; a percentage
/// renders as `+5.34%` but round-trips as the raw fraction `0.0534`.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free text (left-aligned).
    Text(String),
    /// A signed integer count.
    Int(i64),
    /// An unsigned count, rendered with thousands separators.
    Count(u64),
    /// A float with the given rendered precision.
    Float(f64, usize),
    /// A fraction rendered as a signed percentage with two decimals.
    Pct(f64),
    /// A byte count rendered as `32k` / `4m`.
    Bytes(u64),
    /// An empty cell.
    Missing,
}

impl Cell {
    /// Free-text cell.
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    /// Human rendering, used in the aligned terminal table.
    pub fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(n) => n.to_string(),
            Cell::Count(n) => commas(*n),
            Cell::Float(v, prec) => format!("{v:.prec$}"),
            Cell::Pct(v) => format!("{:+.2}%", 100.0 * v),
            Cell::Bytes(b) => human_bytes(*b),
            Cell::Missing => String::new(),
        }
    }

    /// Machine rendering, used in CSV output.
    pub fn csv(&self) -> String {
        match self {
            Cell::Text(s) => csv_quote(s),
            Cell::Int(n) => n.to_string(),
            Cell::Count(n) => n.to_string(),
            Cell::Float(v, _) => fmt_f64(*v),
            Cell::Pct(v) => fmt_f64(*v),
            Cell::Bytes(b) => b.to_string(),
            Cell::Missing => String::new(),
        }
    }

    /// The cell's numeric value, if it has one. `Bytes` and `Count` come
    /// back as their raw counts, `Pct` as its raw fraction — the same
    /// values [`Cell::csv`] serializes.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(n) => Some(*n as f64),
            Cell::Count(n) | Cell::Bytes(n) => Some(*n as f64),
            Cell::Float(v, _) | Cell::Pct(v) => Some(*v),
            Cell::Text(_) | Cell::Missing => None,
        }
    }

    fn is_text(&self) -> bool {
        matches!(self, Cell::Text(_))
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Text(s)
    }
}

impl From<u64> for Cell {
    fn from(n: u64) -> Cell {
        Cell::Count(n)
    }
}

impl From<u32> for Cell {
    fn from(n: u32) -> Cell {
        Cell::Count(n.into())
    }
}

impl From<usize> for Cell {
    fn from(n: usize) -> Cell {
        Cell::Count(n as u64)
    }
}

impl From<i64> for Cell {
    fn from(n: i64) -> Cell {
        Cell::Int(n)
    }
}

/// Enough precision for an f64 to round-trip, without trailing noise.
/// Non-finite values serialize as the empty cell ([`Cell::Missing`]'s
/// representation): `NaN`/`inf` in a CSV field would break every consumer
/// of the documented round-trip contract.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return String::new();
    }
    let short = format!("{v}");
    if short.parse::<f64>() == Ok(v) {
        short
    } else {
        format!("{v:.17}")
    }
}

fn csv_quote(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One parsed CSV field. Whether it was quoted matters: a quoted field is
/// always free text, never a number or a missing value.
struct Field {
    text: String,
    quoted: bool,
}

impl Field {
    /// The most specific cell whose own serialization reproduces this
    /// field exactly (checked, so the write→read→write fixed point holds
    /// even for oddities like `-0` or `042`).
    fn into_cell(self) -> Cell {
        if self.quoted {
            return Cell::Text(self.text);
        }
        if self.text.is_empty() {
            return Cell::Missing;
        }
        if let Ok(n) = self.text.parse::<u64>() {
            if n.to_string() == self.text {
                return Cell::Count(n);
            }
        }
        if let Ok(n) = self.text.parse::<i64>() {
            if n.to_string() == self.text {
                return Cell::Int(n);
            }
        }
        if let Ok(v) = self.text.parse::<f64>() {
            if v.is_finite() && fmt_f64(v) == self.text {
                return Cell::Float(v, 6);
            }
        }
        Cell::Text(self.text)
    }
}

/// Split CSV text into records of fields, honoring quoting: `""` escapes,
/// commas and newlines inside quotes, CRLF line ends, optional trailing
/// newline. Strict about what [`Table::to_csv`] never emits (stray or
/// unterminated quotes), so it doubles as a sanity checker.
fn parse_csv(text: &str) -> Result<Vec<Vec<Field>>, String> {
    let mut records: Vec<Vec<Field>> = Vec::new();
    let mut record: Vec<Field> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut pending = false; // any unfinished field or record at EOF?
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                _ => {
                    if c == '\n' {
                        line += 1;
                    }
                    field.push(c);
                }
            }
            continue;
        }
        match c {
            '"' if field.is_empty() && !quoted => {
                in_quotes = true;
                quoted = true;
                pending = true;
            }
            '"' => return Err(format!("line {line}: stray quote")),
            ',' => {
                record.push(Field {
                    text: std::mem::take(&mut field),
                    quoted: std::mem::take(&mut quoted),
                });
                pending = true;
            }
            '\r' if chars.peek() == Some(&'\n') => {}
            '\n' => {
                record.push(Field {
                    text: std::mem::take(&mut field),
                    quoted: std::mem::take(&mut quoted),
                });
                records.push(std::mem::take(&mut record));
                pending = false;
                line += 1;
            }
            _ if quoted => return Err(format!("line {line}: text after closing quote")),
            _ => {
                field.push(c);
                pending = true;
            }
        }
    }
    if in_quotes {
        return Err(format!("line {line}: unterminated quoted field"));
    }
    if pending {
        record.push(Field {
            text: field,
            quoted,
        });
        records.push(record);
    }
    Ok(records)
}

/// Format a count with thousands separators.
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format a byte count as `512` / `32k` / `4m`.
pub fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}m", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}k", b >> 10)
    } else {
        b.to_string()
    }
}

/// A named table: column headers plus typed rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// A new, empty table. `name` identifies it in multi-table reports and
    /// in derived CSV file names.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity does not match the column count.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table '{}': row arity {} != {} columns",
            self.name,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
        self
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Replace one cell, e.g. to perturb a table in a golden-harness test.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn set_cell(&mut self, row: usize, col: usize, cell: Cell) {
        self.rows[row][col] = cell;
    }

    /// Parse a table back out of its CSV serialization — the inverse of
    /// [`Table::to_csv`]. The header row becomes the columns; every data
    /// field is re-materialized as the most specific [`Cell`] whose own
    /// serialization reproduces the field exactly (empty → `Missing`,
    /// unsigned → `Count`, signed → `Int`, float → `Float`, anything else
    /// or quoted → `Text`), so `from_csv(to_csv(t)).to_csv() == to_csv(t)`
    /// for every table. The *variant* is lossy by construction — `Bytes`
    /// and `Pct` have no distinct machine form — but the value is not.
    ///
    /// # Errors
    ///
    /// Malformed quoting, a missing header, or ragged rows.
    pub fn from_csv(name: impl Into<String>, text: &str) -> Result<Table, String> {
        let mut records = parse_csv(text)?.into_iter();
        let header = records.next().ok_or("empty CSV: no header row")?;
        let columns: Vec<String> = header.into_iter().map(|f| f.text).collect();
        if columns.is_empty() || (columns.len() == 1 && columns[0].is_empty()) {
            return Err("empty CSV: no header row".to_string());
        }
        let mut rows = Vec::new();
        for (i, record) in records.enumerate() {
            if record.len() != columns.len() {
                return Err(format!(
                    "row {}: {} fields, expected {}",
                    i + 1,
                    record.len(),
                    columns.len()
                ));
            }
            rows.push(record.into_iter().map(Field::into_cell).collect());
        }
        Ok(Table {
            name: name.into(),
            columns,
            rows,
        })
    }

    /// Read a CSV file written by [`Table::write_csv`] back as a table,
    /// named after the file stem.
    ///
    /// # Errors
    ///
    /// I/O errors, plus [`Table::from_csv`] parse errors mapped to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn read_csv(path: &Path) -> std::io::Result<Table> {
        let text = std::fs::read_to_string(path)?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "table".to_string());
        Table::from_csv(name, &text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Render as an aligned text table: text columns left-aligned, numeric
    /// columns right-aligned, two spaces between columns.
    pub fn render(&self) -> String {
        let n = self.columns.len();
        // A column is left-aligned if any of its cells is free text.
        let left: Vec<bool> = (0..n)
            .map(|c| self.rows.iter().any(|r| r[c].is_text()))
            .collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        let widths: Vec<usize> = (0..n)
            .map(|c| {
                rendered
                    .iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(self.columns[c].len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        let mut line = |cells: &[String]| {
            let mut s = String::new();
            for c in 0..n {
                if c > 0 {
                    s.push_str("  ");
                }
                let w = widths[c];
                if left[c] {
                    let _ = write!(s, "{:<w$}", cells[c]);
                } else {
                    let _ = write!(s, "{:>w$}", cells[c]);
                }
            }
            out.push_str(s.trim_end());
            out.push('\n');
        };
        line(&self.columns.to_vec());
        for r in &rendered {
            line(r);
        }
        out
    }

    /// Serialize as CSV: one header row, then data rows with machine
    /// values (raw bytes, raw fractions).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| csv_quote(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(Cell::csv).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV serialization to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating directories or writing the file.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Resolve the CSV path for table `i` of `n` in a report written to
/// `base`: the base path itself for a single table, `stem_<name>.csv`
/// siblings otherwise.
pub fn csv_table_path(base: &Path, table: &Table, n_tables: usize) -> std::path::PathBuf {
    if n_tables <= 1 {
        return base.to_path_buf();
    }
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "report".to_string());
    base.with_file_name(format!("{stem}_{}.csv", table.name()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("overhead", &["program", "size", "refs", "o_cache"]);
        t.row(vec![
            "compile".into(),
            Cell::Bytes(64 << 10),
            Cell::Count(1_234_567),
            Cell::Pct(0.0534),
        ]);
        t.row(vec![
            "nbody".into(),
            Cell::Bytes(4 << 20),
            Cell::Count(42),
            Cell::Pct(-0.001),
        ]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("program"));
        assert!(lines[1].contains("64k"));
        assert!(lines[1].contains("1,234,567"));
        assert!(lines[1].contains("+5.34%"));
        assert!(lines[2].contains("-0.10%"));
        // Numeric columns right-align: the counts' last digits line up.
        let c1 = lines[1].find("1,234,567").unwrap() + "1,234,567".len();
        let c2 = lines[2].find("42").unwrap() + 2;
        assert_eq!(c1, c2);
    }

    #[test]
    fn csv_uses_machine_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "program,size,refs,o_cache");
        assert_eq!(lines[1], "compile,65536,1234567,0.0534");
        assert_eq!(lines[2], "nbody,4194304,42,-0.001");
    }

    #[test]
    fn csv_quotes_awkward_text() {
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("he said \"hi\""), "\"he said \"\"hi\"\"\"");
        assert_eq!(csv_quote("plain"), "plain");
    }

    #[test]
    fn floats_roundtrip_through_csv() {
        let mut t = Table::new("f", &["v"]);
        let v = 0.1 + 0.2; // not exactly representable as written
        t.row(vec![Cell::Float(v, 2)]);
        let csv = t.to_csv();
        let parsed: f64 = csv.lines().nth(1).unwrap().parse().unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn every_cell_variant_roundtrips_through_write_read() {
        let mut t = Table::new(
            "cells",
            &["text", "int", "count", "float", "pct", "bytes", "gap"],
        );
        t.row(vec![
            Cell::text("plain"),
            Cell::Int(-42),
            Cell::Count(1_234_567),
            Cell::Float(0.1 + 0.2, 3),
            Cell::Pct(-0.0012),
            Cell::Bytes(64 << 10),
            Cell::Missing,
        ]);
        t.row(vec![
            Cell::text("commas, \"quotes\"\nand newlines"),
            Cell::Int(i64::MIN),
            Cell::Count(u64::MAX),
            Cell::Float(f64::NAN, 3),
            Cell::Pct(f64::INFINITY),
            Cell::Bytes(0),
            Cell::Missing,
        ]);
        let csv = t.to_csv();
        // Non-finite floats serialize as empty cells, never NaN/inf text.
        assert!(!csv.contains("NaN") && !csv.contains("inf"), "{csv}");
        let back = Table::from_csv("cells", &csv).expect("parses");
        assert_eq!(back.to_csv(), csv, "write → read → write is a fixed point");
        // Values survive: the finite numbers come back exactly, the
        // non-finite ones as Missing, the awkward text verbatim.
        let r = back.rows();
        assert_eq!(r[0][0], Cell::text("plain"));
        assert_eq!(r[0][1], Cell::Int(-42));
        assert_eq!(r[0][2], Cell::Count(1_234_567));
        assert_eq!(r[0][3].as_f64(), Some(0.1 + 0.2));
        assert_eq!(r[0][4].as_f64(), Some(-0.0012));
        assert_eq!(r[0][5].as_f64(), Some((64u64 << 10) as f64));
        assert_eq!(r[0][6], Cell::Missing);
        assert_eq!(r[1][0], Cell::text("commas, \"quotes\"\nand newlines"));
        assert_eq!(r[1][3], Cell::Missing);
        assert_eq!(r[1][4], Cell::Missing);
    }

    #[test]
    fn reader_only_types_exact_reserializations() {
        // Fields whose numeric parse would not re-serialize identically
        // stay text, so the fixed point holds for them too.
        for field in ["042", "+5", "1e3", "-0"] {
            let csv = format!("v\n{field}\n");
            let t = Table::from_csv("t", &csv).unwrap();
            assert_eq!(t.to_csv(), csv, "{field} must round-trip");
        }
        assert_eq!(
            Table::from_csv("t", "v\n042\n").unwrap().rows()[0][0],
            Cell::text("042")
        );
        // -0 has no i64 spelling but an exact f64 one.
        assert_eq!(
            Table::from_csv("t", "v\n-0\n").unwrap().rows()[0][0],
            Cell::Float(-0.0, 6)
        );
    }

    #[test]
    fn reader_rejects_malformed_csv() {
        assert!(Table::from_csv("t", "").is_err(), "no header");
        assert!(Table::from_csv("t", "a,b\n1\n").is_err(), "ragged row");
        assert!(
            Table::from_csv("t", "a,b\n1,\"x\n").is_err(),
            "unterminated quote"
        );
        assert!(
            Table::from_csv("t", "a,b\n1,x\"y\n").is_err(),
            "stray quote"
        );
        assert!(
            Table::from_csv("t", "a,b\n1,\"x\"y\n").is_err(),
            "text after quote"
        );
    }

    #[test]
    fn reader_accepts_crlf_and_missing_trailing_newline() {
        let t = Table::from_csv("t", "a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1], vec![Cell::Count(3), Cell::Count(4)]);
    }

    #[test]
    fn read_csv_names_table_after_file_stem() {
        let dir = std::env::temp_dir().join("cachegc_report_read_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("penalties.csv");
        sample().write_csv(&path).unwrap();
        let back = Table::read_csv(&path).unwrap();
        assert_eq!(back.name(), "penalties");
        assert_eq!(back.to_csv(), sample().to_csv());
        assert!(Table::read_csv(&dir.join("absent.csv")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_cell_replaces_in_place() {
        let mut t = sample();
        t.set_cell(1, 2, Cell::Count(43));
        assert_eq!(t.rows()[1][2], Cell::Count(43));
    }

    #[test]
    fn arity_mismatch_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut t = Table::new("t", &["a", "b"]);
            t.row(vec![Cell::Int(1)]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn table_paths_for_multi_table_reports() {
        let t = Table::new("misses", &["a"]);
        let base = Path::new("results/e4.csv");
        assert_eq!(csv_table_path(base, &t, 1), base);
        assert_eq!(
            csv_table_path(base, &t, 2),
            Path::new("results/e4_misses.csv")
        );
    }

    #[test]
    fn human_bytes_covers_all_ranges() {
        assert_eq!(human_bytes(512), "512");
        assert_eq!(human_bytes(32 << 10), "32k");
        assert_eq!(human_bytes(4 << 20), "4m");
        assert_eq!(commas(1234567), "1,234,567");
    }

    #[test]
    fn write_csv_creates_parents() {
        let dir = std::env::temp_dir().join("cachegc_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep").join("t.csv");
        sample().write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.starts_with("program,"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
