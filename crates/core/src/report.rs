//! Named-column tables: the one way every experiment binary reports.
//!
//! Each sweep binary assembles its results into [`Table`]s — named columns
//! plus typed rows — and renders them through one code path: an aligned
//! text table for the terminal and, on request, CSV into `results/` so
//! successive PRs can diff experiment outputs against the paper's expected
//! shapes mechanically instead of re-parsing hand-rolled `print!` layouts.

use std::fmt::Write as _;
use std::path::Path;

/// One typed table cell.
///
/// The human rendering and the CSV value differ deliberately: a byte count
/// renders as `64k` but round-trips through CSV as `65536`; a percentage
/// renders as `+5.34%` but round-trips as the raw fraction `0.0534`.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free text (left-aligned).
    Text(String),
    /// A signed integer count.
    Int(i64),
    /// An unsigned count, rendered with thousands separators.
    Count(u64),
    /// A float with the given rendered precision.
    Float(f64, usize),
    /// A fraction rendered as a signed percentage with two decimals.
    Pct(f64),
    /// A byte count rendered as `32k` / `4m`.
    Bytes(u64),
    /// An empty cell.
    Missing,
}

impl Cell {
    /// Free-text cell.
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    /// Human rendering, used in the aligned terminal table.
    pub fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(n) => n.to_string(),
            Cell::Count(n) => commas(*n),
            Cell::Float(v, prec) => format!("{v:.prec$}"),
            Cell::Pct(v) => format!("{:+.2}%", 100.0 * v),
            Cell::Bytes(b) => human_bytes(*b),
            Cell::Missing => String::new(),
        }
    }

    /// Machine rendering, used in CSV output.
    pub fn csv(&self) -> String {
        match self {
            Cell::Text(s) => csv_quote(s),
            Cell::Int(n) => n.to_string(),
            Cell::Count(n) => n.to_string(),
            Cell::Float(v, _) => fmt_f64(*v),
            Cell::Pct(v) => fmt_f64(*v),
            Cell::Bytes(b) => b.to_string(),
            Cell::Missing => String::new(),
        }
    }

    fn is_text(&self) -> bool {
        matches!(self, Cell::Text(_))
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Text(s)
    }
}

impl From<u64> for Cell {
    fn from(n: u64) -> Cell {
        Cell::Count(n)
    }
}

impl From<u32> for Cell {
    fn from(n: u32) -> Cell {
        Cell::Count(n.into())
    }
}

impl From<usize> for Cell {
    fn from(n: usize) -> Cell {
        Cell::Count(n as u64)
    }
}

impl From<i64> for Cell {
    fn from(n: i64) -> Cell {
        Cell::Int(n)
    }
}

/// Enough precision for an f64 to round-trip, without trailing noise.
fn fmt_f64(v: f64) -> String {
    let short = format!("{v}");
    if short.parse::<f64>() == Ok(v) {
        short
    } else {
        format!("{v:.17}")
    }
}

fn csv_quote(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Format a count with thousands separators.
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format a byte count as `512` / `32k` / `4m`.
pub fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}m", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}k", b >> 10)
    } else {
        b.to_string()
    }
}

/// A named table: column headers plus typed rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// A new, empty table. `name` identifies it in multi-table reports and
    /// in derived CSV file names.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity does not match the column count.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table '{}': row arity {} != {} columns",
            self.name,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
        self
    }

    /// Render as an aligned text table: text columns left-aligned, numeric
    /// columns right-aligned, two spaces between columns.
    pub fn render(&self) -> String {
        let n = self.columns.len();
        // A column is left-aligned if any of its cells is free text.
        let left: Vec<bool> = (0..n)
            .map(|c| self.rows.iter().any(|r| r[c].is_text()))
            .collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        let widths: Vec<usize> = (0..n)
            .map(|c| {
                rendered
                    .iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(self.columns[c].len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        let mut line = |cells: &[String]| {
            let mut s = String::new();
            for c in 0..n {
                if c > 0 {
                    s.push_str("  ");
                }
                let w = widths[c];
                if left[c] {
                    let _ = write!(s, "{:<w$}", cells[c]);
                } else {
                    let _ = write!(s, "{:>w$}", cells[c]);
                }
            }
            out.push_str(s.trim_end());
            out.push('\n');
        };
        line(&self.columns.to_vec());
        for r in &rendered {
            line(r);
        }
        out
    }

    /// Serialize as CSV: one header row, then data rows with machine
    /// values (raw bytes, raw fractions).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| csv_quote(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(Cell::csv).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV serialization to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating directories or writing the file.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Resolve the CSV path for table `i` of `n` in a report written to
/// `base`: the base path itself for a single table, `stem_<name>.csv`
/// siblings otherwise.
pub fn csv_table_path(base: &Path, table: &Table, n_tables: usize) -> std::path::PathBuf {
    if n_tables <= 1 {
        return base.to_path_buf();
    }
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "report".to_string());
    base.with_file_name(format!("{stem}_{}.csv", table.name()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("overhead", &["program", "size", "refs", "o_cache"]);
        t.row(vec![
            "compile".into(),
            Cell::Bytes(64 << 10),
            Cell::Count(1_234_567),
            Cell::Pct(0.0534),
        ]);
        t.row(vec![
            "nbody".into(),
            Cell::Bytes(4 << 20),
            Cell::Count(42),
            Cell::Pct(-0.001),
        ]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("program"));
        assert!(lines[1].contains("64k"));
        assert!(lines[1].contains("1,234,567"));
        assert!(lines[1].contains("+5.34%"));
        assert!(lines[2].contains("-0.10%"));
        // Numeric columns right-align: the counts' last digits line up.
        let c1 = lines[1].find("1,234,567").unwrap() + "1,234,567".len();
        let c2 = lines[2].find("42").unwrap() + 2;
        assert_eq!(c1, c2);
    }

    #[test]
    fn csv_uses_machine_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "program,size,refs,o_cache");
        assert_eq!(lines[1], "compile,65536,1234567,0.0534");
        assert_eq!(lines[2], "nbody,4194304,42,-0.001");
    }

    #[test]
    fn csv_quotes_awkward_text() {
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("he said \"hi\""), "\"he said \"\"hi\"\"\"");
        assert_eq!(csv_quote("plain"), "plain");
    }

    #[test]
    fn floats_roundtrip_through_csv() {
        let mut t = Table::new("f", &["v"]);
        let v = 0.1 + 0.2; // not exactly representable as written
        t.row(vec![Cell::Float(v, 2)]);
        let csv = t.to_csv();
        let parsed: f64 = csv.lines().nth(1).unwrap().parse().unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn arity_mismatch_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut t = Table::new("t", &["a", "b"]);
            t.row(vec![Cell::Int(1)]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn table_paths_for_multi_table_reports() {
        let t = Table::new("misses", &["a"]);
        let base = Path::new("results/e4.csv");
        assert_eq!(csv_table_path(base, &t, 1), base);
        assert_eq!(
            csv_table_path(base, &t, 2),
            Path::new("results/e4_misses.csv")
        );
    }

    #[test]
    fn human_bytes_covers_all_ranges() {
        assert_eq!(human_bytes(512), "512");
        assert_eq!(human_bytes(32 << 10), "32k");
        assert_eq!(human_bytes(4 << 20), "4m");
        assert_eq!(commas(1234567), "1,234,567");
    }

    #[test]
    fn write_csv_creates_parents() {
        let dir = std::env::temp_dir().join("cachegc_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep").join("t.csv");
        sample().write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.starts_with("program,"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
