//! [`Runner`]: the single front door to the experiment engine.
//!
//! Every driver entry point the system used to scatter across fifteen
//! `run_*`/`*_jobs`/`*_engine`/`*_ctx` functions is now a method on one
//! builder: construct a `Runner` over an [`EngineConfig`], attach what the
//! run needs (trace store, telemetry, progress), and call a terminal —
//! [`Runner::sinks`], [`Runner::instruments`], [`Runner::control`],
//! [`Runner::collected`], [`Runner::comparison`], [`Runner::map`], or the
//! escape hatch [`Runner::drive`].
//!
//! Under the hood every parallel pass is scheduled as typed work packets
//! on a scoped crew (see [`crate::sched`]): sink shards drain as
//! [`PacketKind::SinkDrain`]/[`PacketKind::Record`] packets, trace-store
//! hits replay as [`PacketKind::ReplayShard`] packets, `map` items and
//! comparison passes ride as [`PacketKind::Task`]/[`PacketKind::VmExecute`]
//! packets. A sequential engine (`jobs <= 1`, round-robin) takes the
//! in-thread oracle path; per-sink results are bit-identical either way
//! (property-tested in the workspace root).
//!
//! # Example
//!
//! ```
//! use cachegc_core::{EngineConfig, ExperimentConfig, Runner, Schedule};
//! use cachegc_workloads::Workload;
//!
//! let runner = Runner::new(EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing));
//! let cfg = ExperimentConfig::quick();
//! let report = runner.control(Workload::Rewrite.scaled(1), &cfg).unwrap();
//! assert!(report.refs > 0);
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;

use cachegc_analysis::Instrument;
use cachegc_gc::{
    CheneyCollector, GenerationalCollector, ImmixCollector, MarkSweepCollector, NoCollector,
};
use cachegc_sim::{Cache, CacheConfig, GridCache};
use cachegc_telemetry::{probe, Counter, EngineReport, Telemetry, WorkerStats};
use cachegc_trace::{BatchDecodeStats, Fanout, RefCounter, TraceSink};
use cachegc_vm::{RunStats, VmError};
use cachegc_workloads::WorkloadInstance;

use crate::experiment::{
    cache_cells, collected_run, control_report, CacheCell, CollectedRun, CollectorSpec,
    ControlReport, ExperimentConfig, GcComparison,
};
use crate::sched::{
    CrewReport, EngineConfig, PacketFanout, PacketKind, ReplayKernel, Scheduler, Stage,
};
use crate::store::{
    scenario_label, Acquired, HitSource, OfferOutcome, RunCtx, StoredTrace, TraceStore,
};
use crate::telemetry::Progress;

/// Degree of parallelism this machine supports (a sensible `--jobs`
/// default). Falls back to 1 if the platform cannot say.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Replay `instance` into `sink` under the given collector (`None` is the
/// collection-disabled control configuration). The common trunk of every
/// terminal below.
fn run_spec_sink<S: TraceSink>(
    instance: WorkloadInstance,
    spec: Option<CollectorSpec>,
    sink: S,
) -> Result<(RunStats, S), VmError> {
    match spec {
        None => {
            let out = instance.run(NoCollector::new(), sink)?;
            Ok((out.stats, out.sink))
        }
        Some(CollectorSpec::Cheney { semispace_bytes }) => {
            let out = instance.run(CheneyCollector::new(semispace_bytes), sink)?;
            Ok((out.stats, out.sink))
        }
        Some(CollectorSpec::Generational {
            nursery_bytes,
            old_bytes,
        }) => {
            let out = instance.run(GenerationalCollector::new(nursery_bytes, old_bytes), sink)?;
            Ok((out.stats, out.sink))
        }
        Some(CollectorSpec::Immix { heap_bytes }) => {
            let out = instance.run(ImmixCollector::new(heap_bytes), sink)?;
            Ok((out.stats, out.sink))
        }
        Some(CollectorSpec::MarkSweep { heap_bytes }) => {
            let out = instance.run(MarkSweepCollector::new(heap_bytes), sink)?;
            Ok((out.stats, out.sink))
        }
    }
}

/// Report a pass that did *not* ride a [`PacketFanout`] — a sequential
/// fanout or a sharded replay — to the telemetry engine totals, so every
/// pass appears in the manifest's engine block whatever path drove it.
/// The `schedule` label distinguishes the paths (`sequential` / `replay`)
/// from the real engine schedules. Worker `i`'s `events` counts the
/// `(event, sink)` pairs it drove under the round-robin sink sharding
/// both paths use.
fn record_flat_engine(
    ctx: &RunCtx<'_>,
    schedule: &'static str,
    jobs: usize,
    n_sinks: usize,
    events: u64,
) {
    let Some(telemetry) = ctx.telemetry else {
        return;
    };
    let workers = (0..jobs)
        .map(|i| {
            let shard = (n_sinks / jobs) + usize::from(i < n_sinks % jobs);
            WorkerStats {
                events: events * shard as u64,
                chunks: 0,
                steals: 0,
                idle_ns: 0,
            }
        })
        .collect();
    telemetry.record_engine(&EngineReport {
        schedule,
        jobs,
        sinks: n_sinks,
        chunks_published: 0,
        events_published: events,
        backpressure_ns: 0,
        queue_depth_hwm: 0,
        workers,
    });
}

/// Round-robin shard `configs` across `jobs` grid workers, remembering
/// each configuration's input position so cells reassemble in order.
fn shard_configs(configs: Vec<CacheConfig>, jobs: usize) -> Vec<Vec<(usize, CacheConfig)>> {
    let mut shards: Vec<Vec<(usize, CacheConfig)>> = (0..jobs).map(|_| Vec::new()).collect();
    for (i, cfg) in configs.into_iter().enumerate() {
        shards[i % jobs].push((i, cfg));
    }
    shards
}

/// The unified experiment driver: a [`RunCtx`] (engine configuration,
/// optional trace store / telemetry / progress) plus a packet
/// [`Scheduler`]. `Clone` is cheap; builder methods consume and return
/// `self` so runners for sub-budgets derive freely.
#[derive(Debug, Clone)]
pub struct Runner<'a> {
    ctx: RunCtx<'a>,
    sched: Scheduler,
}

impl<'a> Runner<'a> {
    /// A runner over `engine`, with no store, telemetry, or progress.
    pub fn new(engine: EngineConfig) -> Runner<'static> {
        Runner {
            ctx: RunCtx::new(engine),
            sched: Scheduler::new(engine.affinity),
        }
    }

    /// The sequential-oracle runner: one worker, nothing attached.
    pub fn sequential() -> Runner<'static> {
        Runner::new(EngineConfig::default())
    }

    /// A runner over an existing context (for callers that already built
    /// a [`RunCtx`]).
    pub fn over(ctx: RunCtx<'a>) -> Runner<'a> {
        let mut sched = Scheduler::new(ctx.engine.affinity);
        if let Some(telemetry) = ctx.telemetry {
            sched = sched.with_telemetry(Arc::clone(telemetry));
        }
        Runner { sched, ctx }
    }

    /// Attach a trace store: scenarios record on first run and replay on
    /// every later one.
    pub fn with_store(mut self, store: &'a TraceStore) -> Runner<'a> {
        self.ctx = self.ctx.with_store(store);
        self
    }

    /// Attach a telemetry registry: every pass attaches a probe shard on
    /// its thread and reports phases, counters, and engine observability.
    /// Crew workers get per-worker `worker-{i}` shards, so scheduler
    /// spans (packet execute, idle, steal, backpressure) land on stable
    /// timeline rows when the registry captures spans.
    pub fn with_telemetry(mut self, telemetry: &'a Arc<Telemetry>) -> Runner<'a> {
        self.ctx = self.ctx.with_telemetry(telemetry);
        self.sched = self.sched.with_telemetry(Arc::clone(telemetry));
        self
    }

    /// Attach a timeline recorder: every pass additionally drives a
    /// fixed-geometry [`cachegc_analysis::Timeline`] tap and commits the
    /// windowed report under the pass's scenario label. The tap rides the
    /// same access stream as the result sinks, so it never changes any
    /// result bit; store hits replay the recorded trace into the tap.
    pub fn with_timeline(mut self, timeline: &'a crate::TimelineRecorder) -> Runner<'a> {
        self.ctx = self.ctx.with_timeline(timeline);
        self
    }

    /// Attach a progress reporter, ticked once per completed pass.
    pub fn with_progress(mut self, progress: &'a Progress) -> Runner<'a> {
        self.ctx = self.ctx.with_progress(progress);
        self
    }

    /// Same attachments, different engine.
    pub fn with_engine(mut self, engine: EngineConfig) -> Runner<'a> {
        self.ctx = self.ctx.with_engine(engine);
        self.sched = self.sched.with_affinity(engine.affinity);
        self
    }

    /// Same attachments, engine rebudgeted to `jobs` workers.
    pub fn with_jobs(mut self, jobs: usize) -> Runner<'a> {
        self.ctx = self.ctx.with_jobs(jobs);
        self
    }

    /// Same runner using `cmd` as the affinity pinning utility (test
    /// hook: a nonexistent command exercises the graceful no-op path).
    pub fn with_affinity_command(mut self, cmd: &str) -> Runner<'a> {
        self.sched = self.sched.with_affinity_command(cmd);
        self
    }

    /// The underlying context (engine, store, telemetry, progress).
    pub fn ctx(&self) -> &RunCtx<'a> {
        &self.ctx
    }

    /// The engine configuration this runner drives passes with.
    pub fn engine(&self) -> &EngineConfig {
        &self.ctx.engine
    }

    /// Fold a finished crew's accounting into the attached telemetry (the
    /// caller must hold a probe shard on this thread).
    fn flush_crew(&self, report: &CrewReport) {
        probe!(Counter::SchedPackets, report.packets);
        probe!(Counter::AffinityPinned, report.pinned as u64);
        probe!(Counter::AffinityFallbacks, report.affinity_fallbacks as u64);
    }

    /// Replay a workload into an arbitrary sink set — the general engine
    /// terminal. Three cases:
    ///
    /// * No store attached: a live pass. Sequential engines drive the
    ///   in-thread [`Fanout`]; otherwise the sinks shard across a
    ///   [`PacketFanout`] whose drain packets ride a scoped crew.
    /// * Store hit: the sinks are driven by a **sharded replay** of the
    ///   recorded trace — no VM; each [`PacketKind::ReplayShard`] packet
    ///   independently decodes the shared segments into its own sink
    ///   subset. The recorded [`RunStats`] are returned.
    /// * Store miss: the pass runs live with a
    ///   [`Recorder`](cachegc_trace::Recorder) riding along on the tuple
    ///   sink, and the capture is offered back to the store (which may
    ///   decline it on budget grounds).
    ///
    /// Per-sink results are bit-identical across all three paths.
    ///
    /// When the runner carries a [`Telemetry`] registry this terminal is
    /// also the instrumentation root: it attaches a probe shard on the
    /// calling thread, times the `vm_execute` / `record` / `replay` /
    /// `sink_drain` phases (`record` wraps the live run on the miss path,
    /// so those spans overlap `vm_execute` by design), counts live VM
    /// runs, packets, and store capture outcomes, and has the engine
    /// report per-worker observability. A runner carrying a [`Progress`]
    /// gets one tick per completed pass. Neither changes any result bit.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from the program (live paths only —
    /// replay cannot fail).
    pub fn sinks<S>(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
        sinks: Vec<S>,
    ) -> Result<(RunStats, Vec<S>), VmError>
    where
        S: TraceSink + Send + 'static,
    {
        let _shard = self.ctx.telemetry.map(|t| t.attach());
        let pass_start = Instant::now();
        let (stats, sinks, events) = self.sinks_inner(instance, spec, sinks)?;
        if let Some(progress) = self.ctx.progress {
            progress.pass(self.ctx.store, events, pass_start.elapsed().as_secs_f64());
        }
        Ok((stats, sinks))
    }

    /// Commit a live pass's timeline tap under its scenario label (no-op
    /// when the runner carries no recorder, so taps thread through the
    /// drivers as plain `Option` tuple elements).
    fn commit_tap(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
        tap: Option<cachegc_analysis::Timeline>,
    ) {
        if let (Some(recorder), Some(tap)) = (self.ctx.timeline, tap) {
            recorder.commit(&scenario_label(instance, spec), tap);
        }
    }

    /// A store hit's timeline: replay the recorded trace into a fresh tap
    /// and commit it. The hit's sink replay shards per worker, so the tap
    /// takes its own decode pass here rather than riding a shard — the
    /// committed windows are bit-identical to the live pass's.
    fn timeline_tap_replay(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
        stored: &Arc<StoredTrace>,
    ) {
        if let Some(recorder) = self.ctx.timeline {
            let mut tap = recorder.tap();
            stored.trace.replay(&mut tap);
            recorder.commit(&scenario_label(instance, spec), tap);
        }
    }

    fn sinks_inner<S>(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
        sinks: Vec<S>,
    ) -> Result<(RunStats, Vec<S>, u64), VmError>
    where
        S: TraceSink + Send + 'static,
    {
        let ctx = &self.ctx;
        let Some(store) = ctx.store else {
            // Live pass, nothing to record.
            probe!(Counter::VmRuns);
            if ctx.engine.is_sequential() {
                // A tally rides the tuple sink so the sequential pass can
                // report its event volume like the crews do; the optional
                // timeline tap rides the same tuple.
                let tap = ctx.timeline.map(|t| t.tap());
                let (stats, (tap, (tally, fan))) = {
                    let _vm = probe::phase_cpu("vm_execute");
                    run_spec_sink(
                        instance,
                        spec,
                        (tap, (RefCounter::new(), Fanout::new(sinks))),
                    )?
                };
                let _drain = probe::phase("sink_drain");
                let sinks = fan.into_sinks();
                let events = tally.total();
                record_flat_engine(ctx, "sequential", 1, sinks.len(), events);
                self.commit_tap(instance, spec, tap);
                return Ok((stats, sinks, events));
            }
            return self.packet_pass(instance, spec, sinks, PacketKind::SinkDrain);
        };
        let ticket = match store.acquire(instance, spec) {
            Acquired::Hit { trace, source } => {
                match source {
                    HitSource::Resident => {}
                    HitSource::SpillLoad => probe!(Counter::StoreSpillLoads),
                    HitSource::Coalesced => probe!(Counter::StoreCoalesced),
                }
                self.timeline_tap_replay(instance, spec, &trace);
                let events = trace.trace.events();
                let (stats, sinks) = self.replay_pass(&trace, sinks);
                return Ok((stats, sinks, events));
            }
            Acquired::Miss(ticket) => ticket,
        };
        // Miss: this pass holds the scenario's single recording flight.
        // Run live with the ticket's budget-metered recorder riding
        // along, then offer the capture back; concurrent passes of the
        // same scenario are blocked in `acquire` meanwhile. An early
        // error return drops the ticket, which cancels the flight and
        // hands leadership to a waiter.
        probe!(Counter::VmRuns);
        let record_start = Instant::now();
        let _record = probe::phase("record");
        let recorder = ticket.recorder();
        let tap = ctx.timeline.map(|t| t.tap());
        let (stats, recorder, sinks, tap) = if ctx.engine.is_sequential() {
            let (stats, (tap, (rec, fan))) = {
                let _vm = probe::phase_cpu("vm_execute");
                run_spec_sink(instance, spec, (tap, (recorder, Fanout::new(sinks))))?
            };
            let _drain = probe::phase("sink_drain");
            let sinks = fan.into_sinks();
            record_flat_engine(ctx, "sequential", 1, sinks.len(), rec.events());
            (stats, rec, sinks, tap)
        } else {
            let drain_jobs = ctx.engine.jobs.max(1).min(sinks.len().max(1));
            let (result, report) = self.sched.run(drain_jobs, |crew| {
                let fan = PacketFanout::new(
                    crew,
                    sinks,
                    &ctx.engine,
                    PacketKind::Record,
                    ctx.telemetry.cloned(),
                );
                let (stats, (tap, (rec, fan))) = {
                    let _vm = probe::phase_cpu("vm_execute");
                    run_spec_sink(instance, spec, (tap, (recorder, fan)))?
                };
                let _drain = probe::phase("sink_drain");
                Ok((stats, rec, fan.into_sinks(), tap))
            });
            self.flush_crew(&report);
            let (stats, rec, sinks, tap) = result?;
            (stats, rec, sinks, tap)
        };
        self.commit_tap(instance, spec, tap);
        let events = recorder.events();
        match ticket.offer(recorder, stats, record_start.elapsed()) {
            OfferOutcome::Stored {
                bytes,
                events,
                evictions,
                bytes_evicted,
                spilled,
            } => {
                probe!(Counter::StoreRecordedBytes, bytes);
                probe!(Counter::StoreRecordedEvents, events);
                if evictions > 0 {
                    probe!(Counter::StoreEvictions, evictions);
                    probe!(Counter::StoreBytesEvicted, bytes_evicted);
                }
                if spilled {
                    probe!(Counter::StoreSpills);
                }
            }
            OfferOutcome::DroppedOverBudget => {
                probe!(Counter::StoreCapturesDropped);
                if let Some(telemetry) = ctx.telemetry {
                    telemetry.warn(&format!(
                        "trace store dropped over-budget capture of {} \
                         (budget {} bytes); the scenario keeps running live",
                        scenario_label(instance, spec),
                        store.budget()
                    ));
                }
            }
            OfferOutcome::Duplicate => {}
        }
        Ok((stats, sinks, events))
    }

    /// A live pass with the sinks sharded across a packet crew.
    fn packet_pass<S>(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
        sinks: Vec<S>,
        kind: PacketKind,
    ) -> Result<(RunStats, Vec<S>, u64), VmError>
    where
        S: TraceSink + Send + 'static,
    {
        let ctx = &self.ctx;
        let tap = ctx.timeline.map(|t| t.tap());
        let drain_jobs = ctx.engine.jobs.max(1).min(sinks.len().max(1));
        let (result, report) = self.sched.run(drain_jobs, |crew| {
            let fan = PacketFanout::new(crew, sinks, &ctx.engine, kind, ctx.telemetry.cloned());
            let (stats, (tap, fan)) = {
                let _vm = probe::phase_cpu("vm_execute");
                run_spec_sink(instance, spec, (tap, fan))?
            };
            let _drain = probe::phase("sink_drain");
            let events = fan.events_published();
            Ok((stats, fan.into_sinks(), events, tap))
        });
        self.flush_crew(&report);
        let (stats, sinks, events, tap) = result?;
        self.commit_tap(instance, spec, tap);
        Ok((stats, sinks, events))
    }

    /// A store hit: drive the sinks by sharded replay, one
    /// [`PacketKind::ReplayShard`] packet per worker (in-thread when the
    /// engine budget is one worker). Cannot fail — the trace is already
    /// decoded-validated by construction.
    #[allow(clippy::type_complexity)]
    fn replay_pass<S>(&self, stored: &Arc<StoredTrace>, sinks: Vec<S>) -> (RunStats, Vec<S>)
    where
        S: TraceSink + Send + 'static,
    {
        let ctx = &self.ctx;
        let n_sinks = sinks.len();
        let events = stored.trace.events();
        let jobs = ctx.engine.jobs.clamp(1, n_sinks.max(1));
        let sinks = {
            let _replay = probe::phase("replay");
            if jobs <= 1 {
                let mut fan = Fanout::new(sinks);
                stored.trace.replay(&mut fan);
                fan.into_sinks()
            } else {
                // Static shards: sink `i` on packet `i % jobs`, pinned to
                // worker `i % jobs`'s deque.
                let mut shards: Vec<Vec<(usize, S)>> = (0..jobs).map(|_| Vec::new()).collect();
                for (i, sink) in sinks.into_iter().enumerate() {
                    shards[i % jobs].push((i, sink));
                }
                let slots: Vec<Mutex<Option<Vec<(usize, S)>>>> =
                    (0..jobs).map(|_| Mutex::new(None)).collect();
                let ((), report) = self.sched.run(jobs, |crew| {
                    for (j, shard) in shards.into_iter().enumerate() {
                        let trace = Arc::clone(stored);
                        let slot = &slots[j];
                        crew.submit(
                            Stage::Simulate,
                            PacketKind::ReplayShard,
                            Some(j),
                            move |stats| {
                                let mut shard = shard;
                                for (_, sink) in &mut shard {
                                    trace.trace.replay(sink);
                                }
                                stats.events += events * shard.len() as u64;
                                *slot.lock().expect("replay slot poisoned") = Some(shard);
                            },
                        );
                    }
                    crew.wait_idle();
                });
                self.flush_crew(&report);
                let mut out: Vec<Option<S>> = (0..n_sinks).map(|_| None).collect();
                for slot in slots {
                    let shard = slot
                        .into_inner()
                        .expect("replay slot poisoned")
                        .expect("replay packet ran");
                    for (i, sink) in shard {
                        out[i] = Some(sink);
                    }
                }
                out.into_iter()
                    .map(|s| s.expect("every sink accounted for"))
                    .collect()
            }
        };
        record_flat_engine(ctx, "replay", jobs, n_sinks, events);
        (stored.stats, sinks)
    }

    /// [`Runner::sinks`] for the closed heterogeneous [`Instrument`] set —
    /// mixed cache geometries, organizations, and §7 analyzers in one
    /// trace pass. Results come back in input order.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from the program.
    pub fn instruments(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
        instruments: Vec<Instrument>,
    ) -> Result<(RunStats, Vec<Instrument>), VmError> {
        self.sinks(instance, spec, instruments)
    }

    /// Drive a direct-mapped configuration grid over one pass of
    /// `instance` — the kernel-selecting terminal behind
    /// [`Runner::control`] and [`Runner::collected`].
    ///
    /// Under [`ReplayKernel::Scalar`] (the default) the grid runs as
    /// independent [`Cache`] sinks through [`Runner::sinks`] — the
    /// bit-identity oracle. Under [`ReplayKernel::Batch`] the grid rides
    /// as [`GridCache`] shards: a store hit is driven by the SWAR batch
    /// decoder (one decode pass per worker for the whole grid, as
    /// [`PacketKind::GridSimulate`] packets when sharded), and a live or
    /// recording pass fans the stream into the grid shards. Cells come
    /// back in input order with bit-identical statistics either way.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from the program (live paths only).
    pub fn grid(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
        configs: Vec<CacheConfig>,
    ) -> Result<(RunStats, Vec<CacheCell>), VmError> {
        let ctx = &self.ctx;
        if ctx.engine.replay_kernel == ReplayKernel::Scalar {
            let sinks: Vec<Cache> = configs.into_iter().map(Cache::new).collect();
            let (stats, caches) = self.sinks(instance, spec, sinks)?;
            return Ok((stats, cache_cells(caches)));
        }
        // Batch kernel. A recorded scenario replays through the batch
        // decoder; otherwise the pass runs live (recording on a store
        // miss) with the grid riding the stream as GridCache shards.
        if let Some(store) = ctx.store {
            let hit = {
                let _shard = ctx.telemetry.map(|t| t.attach());
                if store.contains(instance, spec) {
                    match store.acquire(instance, spec) {
                        Acquired::Hit { trace, source } => {
                            match source {
                                HitSource::Resident => {}
                                HitSource::SpillLoad => probe!(Counter::StoreSpillLoads),
                                HitSource::Coalesced => probe!(Counter::StoreCoalesced),
                            }
                            Some(trace)
                        }
                        // Evicted between `contains` and `acquire`:
                        // dropping the ticket cancels the recording
                        // flight; the live path below re-acquires.
                        Acquired::Miss(_ticket) => None,
                    }
                } else {
                    None
                }
            };
            if let Some(stored) = hit {
                let _shard = ctx.telemetry.map(|t| t.attach());
                let pass_start = Instant::now();
                self.timeline_tap_replay(instance, spec, &stored);
                let out = self.grid_replay(&stored, configs);
                if let Some(progress) = ctx.progress {
                    progress.pass(
                        ctx.store,
                        stored.trace.events(),
                        pass_start.elapsed().as_secs_f64(),
                    );
                }
                return Ok(out);
            }
        }
        let n = configs.len();
        let jobs = ctx.engine.jobs.clamp(1, n.max(1));
        let shards = shard_configs(configs, jobs);
        let order: Vec<Vec<usize>> = shards
            .iter()
            .map(|s| s.iter().map(|&(i, _)| i).collect())
            .collect();
        let sinks: Vec<GridCache> = shards
            .into_iter()
            .map(|s| GridCache::new(s.into_iter().map(|(_, c)| c).collect()))
            .collect();
        let (stats, grids) = self.sinks(instance, spec, sinks)?;
        let mut cells: Vec<Option<CacheCell>> = (0..n).map(|_| None).collect();
        let mut grid_cells = 0u64;
        for (indices, grid) in order.into_iter().zip(grids) {
            grid_cells += grid.cells_simulated();
            for (i, (config, stats)) in indices.into_iter().zip(grid.into_cells()) {
                cells[i] = Some(CacheCell { config, stats });
            }
        }
        let _shard = ctx.telemetry.map(|t| t.attach());
        probe!(Counter::GridCellsSimulated, grid_cells);
        let cells = cells
            .into_iter()
            .map(|c| c.expect("every grid cell accounted for"))
            .collect();
        Ok((stats, cells))
    }

    /// A store hit under the batch kernel: one SWAR decode pass per
    /// worker drives that worker's [`GridCache`] shard of the
    /// configuration grid (in-thread when the engine budget is one
    /// worker; [`PacketKind::GridSimulate`] packets otherwise). Cannot
    /// fail — replay never re-runs the VM.
    fn grid_replay(
        &self,
        stored: &Arc<StoredTrace>,
        configs: Vec<CacheConfig>,
    ) -> (RunStats, Vec<CacheCell>) {
        let ctx = &self.ctx;
        let n = configs.len();
        let events = stored.trace.events();
        let jobs = ctx.engine.jobs.clamp(1, n.max(1));
        let (cells, decode) = {
            let _replay = probe::phase("replay");
            if jobs <= 1 {
                let mut grid = GridCache::new(configs);
                let decode = stored.trace.replay_batched(|b| grid.consume(b));
                let cells = grid
                    .into_cells()
                    .into_iter()
                    .map(|(config, stats)| CacheCell { config, stats })
                    .collect::<Vec<_>>();
                (cells, decode)
            } else {
                let shards = shard_configs(configs, jobs);
                type GridSlot = Mutex<
                    Option<(
                        Vec<usize>,
                        Vec<(CacheConfig, cachegc_sim::CacheStats)>,
                        BatchDecodeStats,
                    )>,
                >;
                let slots: Vec<GridSlot> = (0..jobs).map(|_| Mutex::new(None)).collect();
                let ((), report) = self.sched.run(jobs, |crew| {
                    for (j, shard) in shards.into_iter().enumerate() {
                        let trace = Arc::clone(stored);
                        let slot = &slots[j];
                        crew.submit(
                            Stage::Simulate,
                            PacketKind::GridSimulate,
                            Some(j),
                            move |stats| {
                                let (indices, cfgs): (Vec<usize>, Vec<CacheConfig>) =
                                    shard.into_iter().unzip();
                                let mut grid = GridCache::new(cfgs);
                                let decode = trace.trace.replay_batched(|b| grid.consume(b));
                                stats.events += events * indices.len() as u64;
                                *slot.lock().expect("grid slot poisoned") =
                                    Some((indices, grid.into_cells(), decode));
                            },
                        );
                    }
                    crew.wait_idle();
                });
                self.flush_crew(&report);
                let mut out: Vec<Option<CacheCell>> = (0..n).map(|_| None).collect();
                let mut decode = BatchDecodeStats::default();
                for slot in slots {
                    let (indices, shard_cells, d) = slot
                        .into_inner()
                        .expect("grid slot poisoned")
                        .expect("grid packet ran");
                    decode.batches += d.batches;
                    decode.swar_events += d.swar_events;
                    decode.scalar_events += d.scalar_events;
                    for (i, (config, stats)) in indices.into_iter().zip(shard_cells) {
                        out[i] = Some(CacheCell { config, stats });
                    }
                }
                let cells = out
                    .into_iter()
                    .map(|c| c.expect("every grid cell accounted for"))
                    .collect::<Vec<_>>();
                (cells, decode)
            }
        };
        probe!(Counter::ReplayBatches, decode.batches);
        probe!(Counter::ReplayScalarEvents, decode.scalar_events);
        probe!(Counter::GridCellsSimulated, events * n as u64);
        record_flat_engine(ctx, "replay", jobs, n, events);
        (stored.stats, cells)
    }

    /// The §5 control experiment: run `instance` with collection disabled
    /// against `cfg`'s cache grid in one trace pass (replayed from the
    /// store when the scenario is recorded), through the engine's
    /// configured replay kernel.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from the program.
    pub fn control(
        &self,
        instance: WorkloadInstance,
        cfg: &ExperimentConfig,
    ) -> Result<ControlReport, VmError> {
        let (stats, cells) = self.grid(instance, None, cfg.configs())?;
        Ok(control_report(instance, cfg, stats, cells))
    }

    /// The §6 experiment: `instance` under `spec`'s collector against
    /// `cfg`'s cache grid, attributing misses and instructions to program
    /// vs collector (replayed from the store when recorded), through the
    /// engine's configured replay kernel.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from the program.
    pub fn collected(
        &self,
        instance: WorkloadInstance,
        cfg: &ExperimentConfig,
        spec: CollectorSpec,
    ) -> Result<CollectedRun, VmError> {
        let (stats, cells) = self.grid(instance, Some(spec), cfg.configs())?;
        Ok(collected_run(instance, spec, stats, cells))
    }

    /// The paired §5/§6 runs: the control and collected passes ride as
    /// two [`PacketKind::VmExecute`] packets on a two-worker crew,
    /// splitting the engine's worker budget between them. A pass whose
    /// scenario is already recorded in the store is a cheap replay, so it
    /// gets the minimum (one worker) and the live pass gets the
    /// remainder; when both are live (or both recorded) the budget is
    /// halved, with the odd worker going to the collected pass (the one
    /// with more events). A sequential engine runs both passes inline,
    /// still through the store.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] from either run.
    pub fn comparison(
        &self,
        instance: WorkloadInstance,
        cfg: &ExperimentConfig,
        spec: CollectorSpec,
    ) -> Result<GcComparison, VmError> {
        if self.ctx.engine.is_sequential() {
            // Even store-less sequential runs go through `sinks`, so
            // telemetry and progress behave uniformly.
            return Ok(GcComparison {
                control: self.control(instance, cfg)?,
                collected: self.collected(instance, cfg, spec)?,
            });
        }
        let ctx = &self.ctx;
        let jobs = ctx.engine.jobs.max(1);
        let control_replays = ctx.store.is_some_and(|s| s.contains(instance, None));
        let collected_replays = ctx.store.is_some_and(|s| s.contains(instance, Some(spec)));
        let (control_jobs, collected_jobs) = match (control_replays, collected_replays) {
            (true, false) => (1, jobs.saturating_sub(1).max(1)),
            (false, true) => (jobs.saturating_sub(1).max(1), 1),
            _ => ((jobs / 2).max(1), (jobs - jobs / 2).max(1)),
        };
        let control_runner = self.clone().with_jobs(control_jobs);
        let collected_runner = self.clone().with_jobs(collected_jobs);
        let control_slot: Mutex<Option<Result<ControlReport, VmError>>> = Mutex::new(None);
        let collected_slot: Mutex<Option<Result<CollectedRun, VmError>>> = Mutex::new(None);
        let _shard = ctx.telemetry.map(|t| t.attach());
        let ((), report) = self.sched.run(2, |crew| {
            let control_runner = &control_runner;
            let control_slot = &control_slot;
            crew.submit(Stage::Execute, PacketKind::VmExecute, Some(0), move |_| {
                *control_slot.lock().expect("control slot poisoned") =
                    Some(control_runner.control(instance, cfg));
            });
            let collected_runner = &collected_runner;
            let collected_slot = &collected_slot;
            crew.submit(Stage::Execute, PacketKind::VmExecute, Some(1), move |_| {
                *collected_slot.lock().expect("collected slot poisoned") =
                    Some(collected_runner.collected(instance, cfg, spec));
            });
            crew.wait_idle();
        });
        self.flush_crew(&report);
        let control = control_slot
            .into_inner()
            .expect("control slot poisoned")
            .expect("control packet ran")?;
        let collected = collected_slot
            .into_inner()
            .expect("collected slot poisoned")
            .expect("collected packet ran")?;
        Ok(GcComparison { control, collected })
    }

    /// Split this runner's worker budget between `n` concurrent outer
    /// tasks and the engine passes inside each: returns `(outer
    /// parallelism, per-task inner jobs)`. This is what [`Runner::map`]
    /// applies to its item list.
    pub fn split_jobs(&self, n: usize) -> (usize, usize) {
        let outer = self.ctx.engine.jobs.clamp(1, n.max(1));
        (outer, (self.ctx.engine.jobs / outer).max(1))
    }

    /// Apply `f` to every item as [`PacketKind::Task`] packets, preserving
    /// input order in the results. The worker budget splits per
    /// [`Runner::split_jobs`]: `f` receives a derived runner holding each
    /// task's share of the budget. An effectively-sequential split runs
    /// inline.
    ///
    /// This is the driver for the experiment sweeps' per-workload loops:
    /// each of the paper's five programs is an independent trace pass.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any invocation of `f`.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Runner<'a>, &T) -> R + Sync,
    {
        self.map_with(PacketKind::Task, items, f)
    }

    /// [`Runner::map`] with an explicit packet kind, for callers whose
    /// items are better described (e.g. [`PacketKind::GoldenDiff`] for
    /// golden-table diffs, [`PacketKind::VmExecute`] for whole passes).
    pub fn map_with<T, R, F>(&self, kind: PacketKind, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Runner<'a>, &T) -> R + Sync,
    {
        let (outer, inner_jobs) = self.split_jobs(items.len());
        let inner = self.clone().with_jobs(inner_jobs);
        if outer <= 1 {
            return items.iter().map(|item| f(&inner, item)).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let _shard = self.ctx.telemetry.map(|t| t.attach());
        let ((), report) = self.sched.run(outer, |crew| {
            for (i, item) in items.iter().enumerate() {
                let inner = &inner;
                let f = &f;
                let slot = &slots[i];
                crew.submit(Stage::Execute, kind, None, move |_| {
                    *slot.lock().expect("map slot poisoned") = Some(f(inner, item));
                });
            }
            crew.wait_idle();
        });
        self.flush_crew(&report);
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("map slot poisoned")
                    .expect("task packet ran")
            })
            .collect()
    }

    /// The escape hatch for passes that drive the sink themselves (e.g. a
    /// hand-built VM loop): `f` receives a [`TraceSink`] fanned out over
    /// `sinks` under this runner's engine — sequential in-thread, or
    /// sharded across a packet crew — and the sinks come back in input
    /// order along with `f`'s result. Phases (`vm_execute`/`sink_drain`),
    /// the VM-run counter, and engine observability are reported exactly
    /// like [`Runner::sinks`]'s live path.
    pub fn drive<S, T, F>(&self, kind: PacketKind, sinks: Vec<S>, f: F) -> (T, Vec<S>)
    where
        S: TraceSink + Send + 'static,
        F: FnOnce(&mut dyn TraceSink) -> T,
    {
        let ctx = &self.ctx;
        let _shard = ctx.telemetry.map(|t| t.attach());
        probe!(Counter::VmRuns);
        let tap = ctx.timeline.map(|t| t.tap());
        let commit = |tap: Option<cachegc_analysis::Timeline>| {
            if let (Some(recorder), Some(tap)) = (ctx.timeline, tap) {
                recorder.commit(&format!("drive:{}", kind.name()), tap);
            }
        };
        if ctx.engine.is_sequential() {
            // A tally rides the tuple sink so the sequential pass can
            // report its event volume like the crews do; the optional
            // timeline tap rides the same tuple.
            let mut group = (tap, (RefCounter::new(), Fanout::new(sinks)));
            let out = {
                let _vm = probe::phase_cpu("vm_execute");
                f(&mut group)
            };
            let _drain = probe::phase("sink_drain");
            let (tap, (tally, fan)) = group;
            let sinks = fan.into_sinks();
            record_flat_engine(ctx, "sequential", 1, sinks.len(), tally.total());
            commit(tap);
            return (out, sinks);
        }
        let drain_jobs = ctx.engine.jobs.max(1).min(sinks.len().max(1));
        let (result, report) = self.sched.run(drain_jobs, |crew| {
            let fan = PacketFanout::new(crew, sinks, &ctx.engine, kind, ctx.telemetry.cloned());
            let mut group = (tap, fan);
            let out = {
                let _vm = probe::phase_cpu("vm_execute");
                f(&mut group)
            };
            let _drain = probe::phase("sink_drain");
            let (tap, fan) = group;
            (out, fan.into_sinks(), tap)
        });
        self.flush_crew(&report);
        let (out, sinks, tap) = result;
        commit(tap);
        (out, sinks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_collected, run_control};
    use crate::sched::{ReplayKernel, Schedule};
    use cachegc_analysis::{ActivityTracker, BlockTracker, SweepPlot};
    use cachegc_sim::{CacheConfig, SetAssocCache};
    use cachegc_workloads::Workload;

    fn grids_equal(a: &[crate::CacheCell], b: &[crate::CacheCell]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.config, y.config, "same grid order");
            assert_eq!(x.stats, y.stats, "{}: stats bit-identical", x.config);
        }
    }

    #[test]
    fn parallel_control_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let seq = run_control(w, &cfg).unwrap();
        let par = Runner::new(EngineConfig::jobs(4)).control(w, &cfg).unwrap();
        assert_eq!(seq.refs, par.refs);
        assert_eq!(seq.i_prog, par.i_prog);
        assert_eq!(seq.allocated, par.allocated);
        grids_equal(&seq.cells, &par.cells);
    }

    #[test]
    fn work_stealing_control_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let seq = run_control(w, &cfg).unwrap();
        let engine = EngineConfig::jobs(3).with_schedule(Schedule::WorkStealing);
        let par = Runner::new(engine).control(w, &cfg).unwrap();
        assert_eq!(seq.refs, par.refs);
        grids_equal(&seq.cells, &par.cells);
    }

    #[test]
    fn parallel_collected_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Compile.scaled(1);
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let seq = run_collected(w, &cfg, spec).unwrap();
        let par = Runner::new(EngineConfig::jobs(4))
            .collected(w, &cfg, spec)
            .unwrap();
        assert_eq!(seq.i_prog, par.i_prog);
        assert_eq!(seq.i_gc, par.i_gc);
        assert_eq!(seq.gc.collections, par.gc.collections);
        for (x, y) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(x.config, y.config);
            assert_eq!((x.m_prog, x.m_gc), (y.m_prog, y.m_gc));
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn comparison_matches_sequential() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let spec = CollectorSpec::Generational {
            nursery_bytes: 128 << 10,
            old_bytes: 8 << 20,
        };
        let seq = GcComparison::run(w, &cfg, spec).unwrap();
        let par = Runner::new(EngineConfig::jobs(4))
            .comparison(w, &cfg, spec)
            .unwrap();
        grids_equal(&seq.control.cells, &par.control.cells);
        assert_eq!(
            seq.collected.gc.minor_collections,
            par.collected.gc.minor_collections
        );
        for (size, block) in [(32 << 10, 64), (256 << 10, 64)] {
            assert_eq!(
                seq.gc_overhead(size, block, &crate::FAST).to_bits(),
                par.gc_overhead(size, block, &crate::FAST).to_bits(),
                "overhead identical to the last bit"
            );
        }
    }

    fn mixed_instruments() -> Vec<Instrument> {
        let cfg = CacheConfig::direct_mapped(32 << 10, 64);
        vec![
            Cache::new(cfg).into(),
            SetAssocCache::new(cfg.with_assoc(2)).into(),
            BlockTracker::new(32 << 10, 64).into(),
            SweepPlot::new(cfg, 4096).into(),
            ActivityTracker::new(cfg).into(),
        ]
    }

    #[test]
    fn instruments_identical_under_every_schedule() {
        let w = Workload::Rewrite.scaled(1);
        let (stats0, oracle) = Runner::sequential()
            .instruments(w, None, mixed_instruments())
            .unwrap();
        for schedule in [Schedule::RoundRobin, Schedule::WorkStealing] {
            let engine = EngineConfig::jobs(3).with_schedule(schedule);
            let (stats, out) = Runner::new(engine)
                .instruments(w, None, mixed_instruments())
                .unwrap();
            assert_eq!(stats0.instructions.program(), stats.instructions.program());
            assert_eq!(
                oracle,
                out,
                "{}: instrument set bit-identical",
                schedule.name()
            );
        }
    }

    #[test]
    fn sinks_under_a_collector_attributes_contexts() {
        let w = Workload::Rewrite.scaled(1);
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let engine = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);
        let sinks = vec![Cache::new(CacheConfig::direct_mapped(32 << 10, 64))];
        let (stats, out) = Runner::new(engine).sinks(w, Some(spec), sinks).unwrap();
        assert!(stats.gc.collections > 0, "heap small enough to force GC");
        assert!(
            out[0].stats().refs_by(cachegc_trace::Context::Collector) > 0,
            "collector references reach the sink"
        );
    }

    #[test]
    fn cached_replay_matches_live_and_counts_one_vm_run() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let store = crate::TraceStore::unbounded();
        let engine = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);
        let runner = Runner::new(engine).with_store(&store);
        let oracle = run_control(w, &cfg).unwrap();
        let live = runner.control(w, &cfg).unwrap(); // miss: records
        let replay = runner.control(w, &cfg).unwrap(); // hit: replays
        assert_eq!(oracle.refs, live.refs);
        assert_eq!(oracle.refs, replay.refs);
        assert_eq!(oracle.i_prog, replay.i_prog);
        assert_eq!(oracle.allocated, replay.allocated);
        grids_equal(&oracle.cells, &live.cells);
        grids_equal(&oracle.cells, &replay.cells);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.over_budget), (1, 1, 1, 0));
        assert!(s.bytes > 0 && s.events == oracle.refs);
        // Every later consumer of the same scenario — a different sink
        // set, a sequential runner — replays too, VM still run once.
        let seq = Runner::sequential().with_store(&store);
        let again = seq.control(w, &cfg).unwrap();
        grids_equal(&oracle.cells, &again.cells);
        assert_eq!(store.stats().misses, 1, "VM ran exactly once");
    }

    #[test]
    fn batch_kernel_matches_scalar_on_every_path() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let store = crate::TraceStore::unbounded();
        let ws = EngineConfig::jobs(2).with_schedule(Schedule::WorkStealing);
        let scalar = Runner::new(ws).with_store(&store);
        let batch = scalar
            .clone()
            .with_engine(ws.with_replay_kernel(ReplayKernel::Batch));
        // Scalar pass records; the batch pass replays through the SWAR
        // decoder into sharded GridCache lanes.
        let a = scalar.control(w, &cfg).unwrap();
        let b = batch.control(w, &cfg).unwrap();
        assert_eq!(a.refs, b.refs);
        assert_eq!(a.i_prog, b.i_prog);
        grids_equal(&a.cells, &b.cells);
        // Live-and-recording under the batch kernel (miss path): the grid
        // rides the stream as GridCache shards and the capture is stored.
        let c = batch.collected(w, &cfg, spec).unwrap();
        let d = scalar.collected(w, &cfg, spec).unwrap(); // hit: scalar replay
        assert_eq!(c.i_gc, d.i_gc);
        for (x, y) in c.cells.iter().zip(&d.cells) {
            assert_eq!(x.config, y.config);
            assert_eq!((x.m_prog, x.m_gc), (y.m_prog, y.m_gc));
            assert_eq!(x.stats, y.stats);
        }
        // Sequential batch replay (one grid, one decode pass).
        let seq = Runner::new(EngineConfig::default().with_replay_kernel(ReplayKernel::Batch))
            .with_store(&store);
        let e = seq.control(w, &cfg).unwrap();
        grids_equal(&a.cells, &e.cells);
        // No store: the batch kernel's live path needs no recording.
        let f = Runner::new(ws.with_replay_kernel(ReplayKernel::Batch))
            .control(w, &cfg)
            .unwrap();
        grids_equal(&a.cells, &f.cells);
    }

    #[test]
    fn over_budget_store_falls_back_to_live_runs() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let store = crate::TraceStore::with_budget(64);
        let runner = Runner::new(EngineConfig::jobs(2)).with_store(&store);
        let a = runner.control(w, &cfg).unwrap();
        let b = runner.control(w, &cfg).unwrap();
        grids_equal(&a.cells, &b.cells);
        let s = store.stats();
        assert_eq!((s.entries, s.misses, s.over_budget), (0, 2, 2));
    }

    #[test]
    fn comparison_reuses_a_prior_control_recording() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 512 << 10,
        };
        let store = crate::TraceStore::unbounded();
        let runner = Runner::new(EngineConfig::jobs(4)).with_store(&store);
        // An earlier experiment (e3-style) already recorded the control
        // scenario; the comparison's control pass must be a replay.
        runner.control(w, &cfg).unwrap();
        let cmp = runner.comparison(w, &cfg, spec).unwrap();
        let seq = GcComparison::run(w, &cfg, spec).unwrap();
        grids_equal(&seq.control.cells, &cmp.control.cells);
        for (x, y) in seq.collected.cells.iter().zip(&cmp.collected.cells) {
            assert_eq!((x.m_prog, x.m_gc), (y.m_prog, y.m_gc));
            assert_eq!(x.stats, y.stats);
        }
        assert_eq!(
            seq.gc_overhead(32 << 10, 64, &crate::FAST).to_bits(),
            cmp.gc_overhead(32 << 10, 64, &crate::FAST).to_bits(),
        );
        let s = store.stats();
        assert_eq!(s.misses, 2, "one VM run per unique scenario");
        assert_eq!(s.entries, 2);
        assert_eq!(s.hits, 1, "the comparison's control pass replayed");
    }

    #[test]
    fn map_preserves_order_and_covers_all() {
        let items: Vec<u64> = (0..37).collect();
        let runner = Runner::new(EngineConfig::jobs(5));
        let doubled = runner.map(&items, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Inline path.
        assert_eq!(Runner::sequential().map(&items, |_, &x| x + 1)[36], 37);
        // More workers than items.
        let wide = Runner::new(EngineConfig::jobs(16));
        assert_eq!(wide.map(&[1u64, 2], |_, &x| x).len(), 2);
        let empty: [u64; 0] = [];
        assert!(wide.map(&empty, |_, &x| x).is_empty());
    }

    #[test]
    fn map_splits_the_worker_budget() {
        let r = Runner::new(EngineConfig::jobs(8));
        assert_eq!(r.split_jobs(5), (5, 1));
        assert_eq!(r.split_jobs(2), (2, 4));
        assert_eq!(Runner::new(EngineConfig::jobs(1)).split_jobs(5), (1, 1));
        // The derived runner inside `map` keeps the store attachment.
        let store = crate::TraceStore::unbounded();
        let r = Runner::new(EngineConfig::jobs(4)).with_store(&store);
        let stores = r.map(&[0u8, 1], |inner, _| inner.ctx().store.is_some());
        assert_eq!(stores, vec![true, true]);
    }

    #[test]
    fn drive_matches_the_sequential_fanout() {
        use cachegc_trace::{Access, Context};
        let stream: Vec<Access> = (0..20_000u32)
            .map(|i| Access::read(i.wrapping_mul(68) % (1 << 20), Context::Mutator))
            .collect();
        let grid = || {
            vec![
                Cache::new(CacheConfig::direct_mapped(32 << 10, 64)),
                Cache::new(CacheConfig::direct_mapped(64 << 10, 32)),
            ]
        };
        let mut oracle = Fanout::new(grid());
        for a in &stream {
            oracle.access(*a);
        }
        let expected = oracle.into_sinks();
        for schedule in [Schedule::RoundRobin, Schedule::WorkStealing] {
            let engine = EngineConfig::jobs(2).with_schedule(schedule);
            let (n, got) = Runner::new(engine).drive(PacketKind::VmExecute, grid(), |fan| {
                for a in &stream {
                    fan.access(*a);
                }
                stream.len()
            });
            assert_eq!(n, stream.len());
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.stats(), e.stats(), "{}", schedule.name());
            }
        }
    }

    #[test]
    fn timeline_taps_commit_identically_on_every_driver_path() {
        use crate::{TimelineRecorder, TimelineSpec};
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let spec = TimelineSpec {
            cache: CacheConfig::direct_mapped(16 << 10, 32),
            window_events: 4096,
        };
        // Sequential live oracle.
        let oracle = {
            let rec = TimelineRecorder::new(spec);
            Runner::sequential()
                .with_timeline(&rec)
                .control(w, &cfg)
                .unwrap();
            rec.runs()
        };
        assert_eq!(oracle.len(), 1);
        let report = &oracle[0].report;
        assert!(report.windows.len() > 1, "workload spans several windows");
        assert_eq!(
            report.windows_sum(),
            report.totals,
            "window sums reconstruct the aggregate"
        );
        // Packet crews, the recording pass, the sharded replay, and the
        // batch grid kernel all commit the same report.
        let store = crate::TraceStore::unbounded();
        for (tag, runner) in [
            (
                "packet",
                Runner::new(EngineConfig::jobs(3).with_schedule(Schedule::WorkStealing)),
            ),
            (
                "record",
                Runner::new(EngineConfig::jobs(2)).with_store(&store),
            ),
            (
                "replay",
                Runner::new(EngineConfig::jobs(2)).with_store(&store),
            ),
            (
                "grid",
                Runner::new(EngineConfig::jobs(2).with_replay_kernel(ReplayKernel::Batch))
                    .with_store(&store),
            ),
        ] {
            let rec = TimelineRecorder::new(spec);
            runner.with_timeline(&rec).control(w, &cfg).unwrap();
            let runs = rec.runs();
            assert_eq!(runs.len(), 1, "{tag}");
            assert_eq!(runs[0], oracle[0], "{tag}: timeline bit-identical");
        }
        // The escape-hatch driver commits under a kind tag.
        let rec = TimelineRecorder::new(spec);
        let runner = Runner::new(EngineConfig::jobs(2)).with_timeline(&rec);
        let sinks = vec![Cache::new(CacheConfig::direct_mapped(32 << 10, 64))];
        runner.drive(PacketKind::VmExecute, sinks, |fan| {
            for i in 0..10_000u32 {
                fan.access(cachegc_trace::Access::read(
                    i.wrapping_mul(68) % (1 << 18),
                    cachegc_trace::Context::Mutator,
                ));
            }
        });
        let runs = rec.runs();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "drive:vm_execute");
        assert_eq!(runs[0].report.windows_sum(), runs[0].report.totals);
    }

    #[test]
    fn affinity_runner_degrades_to_a_noop_with_a_missing_pinner() {
        let cfg = ExperimentConfig::quick();
        let w = Workload::Rewrite.scaled(1);
        let seq = run_control(w, &cfg).unwrap();
        let engine = EngineConfig::jobs(2).with_affinity(true);
        let runner = Runner::new(engine).with_affinity_command("cachegc-no-such-pinner");
        let par = runner.control(w, &cfg).unwrap();
        grids_equal(&seq.cells, &par.cells);
    }
}
