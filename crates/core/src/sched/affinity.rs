//! Best-effort CPU affinity pinning for crew workers.
//!
//! The workspace forbids `unsafe` and takes no libc dependency, so the
//! `sched_setaffinity(2)` syscall is reached through the external
//! `taskset(1)` utility: read this thread's TID from
//! `/proc/thread-self/stat`, then shell out to `taskset -p -c <core>
//! <tid>`. Every failure mode — no procfs, no utility, a sandbox that
//! refuses the syscall, a 1-core machine — returns `Err` and the caller
//! records a fallback; pinning is never load-bearing for correctness.

use std::process::{Command, Stdio};

/// Kernel thread id of the calling thread, from procfs.
fn current_tid() -> Result<u64, String> {
    let stat = std::fs::read_to_string("/proc/thread-self/stat")
        .map_err(|e| format!("reading /proc/thread-self/stat: {e}"))?;
    stat.split_whitespace()
        .next()
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| format!("unparseable stat line: {stat:?}"))
}

/// Try to pin the calling thread to core `core % available_parallelism()`
/// using `command` (normally `taskset`; tests inject a nonexistent name to
/// exercise the fallback). Returns `Err` with a reason on any failure;
/// the thread keeps running unpinned either way.
pub fn pin_current_thread(core: usize, command: &str) -> Result<(), String> {
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let core = core % avail;
    let tid = current_tid()?;
    let status = Command::new(command)
        .args(["-p", "-c", &core.to_string(), &tid.to_string()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map_err(|e| format!("spawning {command}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("{command} exited with {status}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_missing_pinning_utility_is_an_err_not_a_panic() {
        let r = pin_current_thread(0, "cachegc-no-such-pinner");
        assert!(r.is_err());
    }

    #[test]
    fn tid_is_readable_where_procfs_exists() {
        // On Linux this succeeds; elsewhere the Err path is the contract.
        match current_tid() {
            Ok(tid) => assert!(tid > 0),
            Err(reason) => assert!(!reason.is_empty()),
        }
    }
}
