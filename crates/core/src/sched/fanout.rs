//! [`PacketFanout`]: the packet-scheduled sink fanout.
//!
//! A drop-in replacement for sequential [`cachegc_trace::Fanout`] when the
//! attached sinks are independent (a cache grid, a set of analysis
//! instruments): the producer buffers accesses into fixed-size chunks and
//! broadcasts each full chunk to sink *shards*; a shard with unconsumed
//! chunks has exactly one drain packet in flight on the owning
//! [`Crew`](super::Crew), so each sink consumes chunks strictly in publish
//! order and per-sink results are bit-identical to the sequential oracle.
//! The property tests in the workspace root enforce this for both
//! policies.
//!
//! The two legacy engine schedules are bucket policies here:
//!
//! * [`Schedule::RoundRobin`] — `min(jobs, sinks)` shards, sink `i` on
//!   shard `i % k`, and shard `i`'s drain packets *prefer worker `i`'s
//!   deque*: static placement, zero coordination unless a worker falls
//!   behind (then siblings steal).
//! * [`Schedule::WorkStealing`] — one shard per sink, drain packets
//!   published to the shared `Simulate` bucket: any idle worker claims
//!   the next shard with work.
//!
//! Backpressure: each shard holds at most [`SHARD_DEPTH`] undrained
//! chunks; the producer blocks (and records the stall) when a shard falls
//! behind, bounding memory exactly like the old bounded channels.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use cachegc_telemetry::{probe, EngineReport, Telemetry};
use cachegc_trace::{Access, TraceSink};

use super::{dur_ns, Crew, EngineConfig, PacketKind, Schedule, Stage};

/// Chunks a shard may hold undrained before the producer blocks.
const SHARD_DEPTH: usize = 8;

/// One shard of sinks plus its chunk queue. `active` is true while a
/// drain packet for this shard is queued or running, so at most one
/// drainer ever touches the sinks and order is preserved.
struct Shard<S> {
    q: Mutex<ShardQueue<S>>,
    /// Signaled by the drainer after each pop, for producer backpressure.
    space: Condvar,
}

struct ShardQueue<S> {
    /// `(original index, sink)` pairs, taken out wholesale by the active
    /// drainer and restored when it goes idle.
    sinks: Vec<(usize, S)>,
    chunks: VecDeque<Arc<Vec<Access>>>,
    active: bool,
}

/// A [`TraceSink`] that broadcasts the stream to sink shards drained by
/// work packets on a [`Crew`]. See the module docs for the policy split.
pub struct PacketFanout<'c, 'env, S: TraceSink + Send> {
    crew: &'c Crew<'env>,
    shards: Vec<Arc<Shard<S>>>,
    buf: Vec<Access>,
    chunk_events: usize,
    total_sinks: usize,
    jobs: usize,
    schedule: Schedule,
    /// What flavor of work the drain packets advance (plain drains, a
    /// recording pass's drains, replay shards, ...).
    kind: PacketKind,
    /// Where the end-of-run [`EngineReport`] goes, if anyone is watching.
    telemetry: Option<Arc<Telemetry>>,
    chunks_published: u64,
    events_published: u64,
    backpressure_ns: u64,
    queue_depth_hwm: u64,
}

impl<'c, 'env, S: TraceSink + Send + 'env> PacketFanout<'c, 'env, S> {
    /// Shard `sinks` over `crew` according to `engine`'s schedule, with
    /// drain packets typed `kind`. The crew must be dedicated to this
    /// fanout for the duration of the run ([`PacketFanout::into_sinks`]
    /// waits for the whole crew to go idle).
    pub fn new(
        crew: &'c Crew<'env>,
        sinks: Vec<S>,
        engine: &EngineConfig,
        kind: PacketKind,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Self {
        let jobs = crew.jobs();
        let total_sinks = sinks.len();
        let n_shards = match engine.schedule {
            // Static placement: one shard per worker (capped by sinks).
            Schedule::RoundRobin => jobs.min(total_sinks),
            // Dynamic balancing: shard per sink, finest stealable grain.
            Schedule::WorkStealing => total_sinks,
        };
        let mut shard_sinks: Vec<Vec<(usize, S)>> = (0..n_shards).map(|_| Vec::new()).collect();
        for (i, sink) in sinks.into_iter().enumerate() {
            shard_sinks[i % n_shards.max(1)].push((i, sink));
        }
        let shards = shard_sinks
            .into_iter()
            .map(|sinks| {
                Arc::new(Shard {
                    q: Mutex::new(ShardQueue {
                        sinks,
                        chunks: VecDeque::new(),
                        active: false,
                    }),
                    space: Condvar::new(),
                })
            })
            .collect();
        PacketFanout {
            crew,
            shards,
            buf: Vec::with_capacity(engine.chunk_events),
            chunk_events: engine.chunk_events.max(1),
            total_sinks,
            jobs,
            schedule: engine.schedule,
            kind,
            telemetry,
            chunks_published: 0,
            events_published: 0,
            backpressure_ns: 0,
            queue_depth_hwm: 0,
        }
    }

    /// Queue one drain packet for shard `i`. Round-robin pins it to
    /// worker `i`'s deque; work-stealing publishes it to the `Simulate`
    /// bucket.
    fn submit_drain(&self, i: usize) {
        let shard = Arc::clone(&self.shards[i]);
        let preferred = match self.schedule {
            Schedule::RoundRobin => Some(i % self.jobs),
            Schedule::WorkStealing => None,
        };
        self.crew
            .submit(Stage::Simulate, self.kind, preferred, move |stats| {
                let mut q = shard.q.lock().expect("shard queue poisoned");
                let mut sinks = std::mem::take(&mut q.sinks);
                loop {
                    let Some(chunk) = q.chunks.pop_front() else {
                        q.sinks = sinks;
                        q.active = false;
                        break;
                    };
                    shard.space.notify_all();
                    drop(q);
                    for (_, sink) in &mut sinks {
                        for access in chunk.iter() {
                            sink.access(*access);
                        }
                    }
                    stats.chunks += 1;
                    stats.events += chunk.len() as u64 * sinks.len() as u64;
                    q = shard.q.lock().expect("shard queue poisoned");
                }
            });
    }

    /// Publish the buffered chunk to every shard, blocking on shards that
    /// are [`SHARD_DEPTH`] behind, and queue a drain packet for each shard
    /// that does not already have one in flight.
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let chunk = Arc::new(std::mem::replace(
            &mut self.buf,
            Vec::with_capacity(self.chunk_events),
        ));
        self.chunks_published += 1;
        self.events_published += chunk.len() as u64;
        for i in 0..self.shards.len() {
            let shard = &self.shards[i];
            let mut q = shard.q.lock().expect("shard queue poisoned");
            if q.chunks.len() >= SHARD_DEPTH {
                let t0 = Instant::now();
                while q.chunks.len() >= SHARD_DEPTH {
                    q = shard.space.wait(q).expect("shard queue poisoned");
                }
                self.backpressure_ns += dur_ns(t0.elapsed());
                if probe::spans_active() {
                    probe::span("backpressure", "sched", t0);
                }
            }
            q.chunks.push_back(Arc::clone(&chunk));
            self.queue_depth_hwm = self.queue_depth_hwm.max(q.chunks.len() as u64);
            let needs_drain = !q.active;
            if needs_drain {
                q.active = true;
            }
            drop(q);
            if needs_drain {
                self.submit_drain(i);
            }
        }
    }

    /// Events broadcast so far (one per [`TraceSink::access`] call that
    /// has reached a published chunk, regardless of sink count).
    pub fn events_published(&self) -> u64 {
        self.events_published + self.buf.len() as u64
    }

    /// Flush the tail, wait for every drain packet to finish, and return
    /// the sinks in their original order. Reports an [`EngineReport`] to
    /// the attached telemetry, if any.
    pub fn into_sinks(mut self) -> Vec<S> {
        self.flush();
        self.crew.wait_idle();
        let mut out: Vec<Option<S>> = (0..self.total_sinks).map(|_| None).collect();
        for shard in &self.shards {
            let mut q = shard.q.lock().expect("shard queue poisoned");
            debug_assert!(!q.active && q.chunks.is_empty());
            for (i, sink) in std::mem::take(&mut q.sinks) {
                out[i] = Some(sink);
            }
        }
        if let Some(t) = &self.telemetry {
            t.record_engine(&EngineReport {
                schedule: self.schedule.name(),
                jobs: self.jobs,
                sinks: self.total_sinks,
                chunks_published: self.chunks_published,
                events_published: self.events_published,
                backpressure_ns: self.backpressure_ns,
                queue_depth_hwm: self.queue_depth_hwm,
                workers: self.crew.worker_stats(),
            });
        }
        out.into_iter()
            .map(|s| s.expect("every sink accounted for"))
            .collect()
    }
}

impl<'env, S: TraceSink + Send + 'env> TraceSink for PacketFanout<'_, 'env, S> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.buf.push(access);
        if self.buf.len() >= self.chunk_events {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{PacketKind, Scheduler};
    use super::*;
    use cachegc_trace::{Context, Fanout, RefCounter};

    fn stream(n: u32) -> Vec<Access> {
        (0..n)
            .map(|i| {
                let addr = i.wrapping_mul(68) ^ (i >> 3);
                let ctx = if i % 7 == 0 {
                    Context::Collector
                } else {
                    Context::Mutator
                };
                match i % 5 {
                    0 => Access::write(addr, ctx),
                    1 => Access::alloc_write(addr, ctx),
                    _ => Access::read(addr, ctx),
                }
            })
            .collect()
    }

    fn drive(engine: EngineConfig, kind: PacketKind, events: u32) -> Vec<RefCounter> {
        let sinks: Vec<RefCounter> = (0..5).map(|_| RefCounter::new()).collect();
        let sched = Scheduler::new(false);
        let (out, report) = sched.run(engine.jobs, |crew| {
            let mut fan = PacketFanout::new(crew, sinks, &engine, kind, None);
            for a in stream(events) {
                fan.access(a);
            }
            fan.into_sinks()
        });
        assert!(report.packets > 0 || events == 0);
        out
    }

    #[test]
    fn both_policies_match_the_sequential_fanout() {
        let mut oracle = Fanout::new((0..5).map(|_| RefCounter::new()).collect::<Vec<_>>());
        for a in stream(10_000) {
            oracle.access(a);
        }
        let expected = oracle.into_sinks();
        for schedule in [Schedule::RoundRobin, Schedule::WorkStealing] {
            for jobs in [1, 2, 3] {
                let engine = EngineConfig::jobs(jobs)
                    .with_schedule(schedule)
                    .with_chunk(64);
                let got = drive(engine, PacketKind::SinkDrain, 10_000);
                assert_eq!(got, expected, "{schedule:?} jobs={jobs}");
            }
        }
    }

    #[test]
    fn an_empty_stream_returns_the_sinks_untouched() {
        let engine = EngineConfig::jobs(3).with_schedule(Schedule::WorkStealing);
        let got = drive(engine, PacketKind::SinkDrain, 0);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|c| c.total() == 0));
    }
}
