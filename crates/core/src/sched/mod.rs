//! The work-packet scheduler: typed packets in prioritized buckets,
//! drained by a crew of workers with per-worker deques, work-stealing,
//! and optional CPU affinity.
//!
//! Modeled on mmtk-core's `scheduler` module: every unit of engine work —
//! a VM execution, a trace recording, a replay shard, an instrument-cell
//! drain, a golden-check diff — is a [`PacketKind`]-typed packet placed in
//! a [`Stage`] bucket or pushed onto a specific worker's deque. Workers
//! prefer their own deque, then drain the shared buckets in stage-priority
//! order (`Prepare → Execute → Simulate → Finalize`), then steal from
//! sibling deques; claims from shared buckets and sibling deques count as
//! steals, so the per-worker [`WorkerStats`] that flow into the telemetry
//! manifest distinguish static placement from dynamic balancing.
//!
//! The legacy `ParallelFanout`'s two schedules survive as *bucket
//! policies* of [`fanout::PacketFanout`] rather than a parallel code path:
//! round-robin pins each sink shard's drain packets to a preferred worker
//! deque, work-stealing publishes them to the shared `Simulate` bucket.
//!
//! # Crews, not a resident pool
//!
//! The workspace forbids `unsafe`, so worker threads cannot outlive the
//! data their packets borrow. A [`Scheduler`] is therefore a cheap,
//! cloneable *policy* handle; each operation spins up a scoped **crew**
//! ([`Scheduler::run`]) whose workers live exactly as long as the
//! operation. Packets may borrow anything that outlives the `run` call.
//!
//! # Affinity
//!
//! When [`EngineConfig::affinity`] is set, each crew worker tries to pin
//! itself to core `i % available_parallelism()`. Pinning is strictly
//! best-effort: on a 1-core container, under a restrictive sandbox, or
//! when the pinning utility is missing, the attempt degrades to a no-op
//! and is reported as a fallback in the [`CrewReport`] — never an error.

mod affinity;
pub mod fanout;

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cachegc_telemetry::{probe, Telemetry, WorkerStats};

pub use fanout::PacketFanout;

pub(crate) fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Default events buffered before a chunk is broadcast to the workers.
///
/// 4096 events ≈ 48 KB per chunk: large enough to amortize queue
/// synchronization to well under a nanosecond per event, small enough to
/// stay resident in L1/L2 while each worker replays it.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

/// How the engine assigns sink shards to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Static sharding: sink `i` lives on worker `i % jobs` for the whole
    /// run. Lowest overhead; best when per-sink cost is uniform.
    #[default]
    RoundRobin,
    /// Dynamic load balancing: idle workers claim whichever sink shard has
    /// unconsumed chunks. Best when per-sink cost is heterogeneous.
    WorkStealing,
}

impl Schedule {
    /// Short name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::RoundRobin => "round-robin",
            Schedule::WorkStealing => "work-stealing",
        }
    }

    /// Parse a CLI spelling (`round-robin`/`rr`, `work-stealing`/`steal`/`ws`).
    pub fn parse(s: &str) -> Option<Schedule> {
        match s {
            "round-robin" | "rr" => Some(Schedule::RoundRobin),
            "work-stealing" | "steal" | "ws" => Some(Schedule::WorkStealing),
            _ => None,
        }
    }
}

/// Which trace-replay kernel a stored trace is driven through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayKernel {
    /// The per-event LEB128 decoder feeding each sink independently —
    /// the bit-identity oracle and the default.
    #[default]
    Scalar,
    /// The SWAR batch decoder feeding the grid-vectorized `GridCache`
    /// kernel: one decode pass per trace drives every direct-mapped
    /// configuration at once.
    Batch,
}

impl ReplayKernel {
    /// Short name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ReplayKernel::Scalar => "scalar",
            ReplayKernel::Batch => "batch",
        }
    }

    /// Parse a CLI spelling (`scalar`, `batch`).
    pub fn parse(s: &str) -> Option<ReplayKernel> {
        match s {
            "scalar" => Some(ReplayKernel::Scalar),
            "batch" => Some(ReplayKernel::Batch),
            _ => None,
        }
    }
}

/// Configuration of the packet-scheduled experiment engine: worker count,
/// chunk granularity, bucket policy, and affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. `1` with [`Schedule::RoundRobin`] is the sequential
    /// oracle configuration drivers may special-case.
    pub jobs: usize,
    /// Events buffered per broadcast chunk.
    pub chunk_events: usize,
    /// Worker scheduling strategy.
    pub schedule: Schedule,
    /// Pin crew workers to CPU cores (best-effort; no-op where the
    /// platform refuses).
    pub affinity: bool,
    /// Which decode/simulate kernel replays stored traces.
    pub replay_kernel: ReplayKernel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            chunk_events: DEFAULT_CHUNK_EVENTS,
            schedule: Schedule::RoundRobin,
            affinity: false,
            replay_kernel: ReplayKernel::Scalar,
        }
    }
}

impl EngineConfig {
    /// Round-robin over `jobs` workers with the default chunk size.
    pub fn jobs(jobs: usize) -> Self {
        EngineConfig {
            jobs,
            ..EngineConfig::default()
        }
    }

    /// Same configuration with a different chunk size.
    pub fn with_chunk(mut self, chunk_events: usize) -> Self {
        self.chunk_events = chunk_events;
        self
    }

    /// Same configuration with a different schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Same configuration with affinity pinning toggled.
    pub fn with_affinity(mut self, affinity: bool) -> Self {
        self.affinity = affinity;
        self
    }

    /// Same configuration with a different replay kernel.
    pub fn with_replay_kernel(mut self, kernel: ReplayKernel) -> Self {
        self.replay_kernel = kernel;
        self
    }

    /// True if this configuration buys nothing over the sequential path,
    /// so drivers should take their single-threaded oracle branch.
    pub fn is_sequential(&self) -> bool {
        self.jobs <= 1 && self.schedule == Schedule::RoundRobin
    }
}

/// The prioritized bucket a packet is scheduled under. Workers drain
/// buckets in declaration order: all available `Prepare` work is claimed
/// before `Execute`, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// Setup work that gates everything else (building shards, opening
    /// stores).
    Prepare,
    /// Producing work: VM executions and recordings.
    Execute,
    /// Consuming work: replaying the access stream into simulators and
    /// instruments.
    Simulate,
    /// Teardown work: result assembly, diffs, reporting.
    Finalize,
}

impl Stage {
    /// Number of stages (bucket array width).
    pub const COUNT: usize = 4;

    /// Every stage in drain-priority order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Prepare,
        Stage::Execute,
        Stage::Simulate,
        Stage::Finalize,
    ];

    /// Stable name used in docs and debug output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Prepare => "prepare",
            Stage::Execute => "execute",
            Stage::Simulate => "simulate",
            Stage::Finalize => "finalize",
        }
    }
}

/// What a work packet advances. Purely descriptive — the scheduler treats
/// every packet the same — but the typed vocabulary keeps submission sites
/// honest about what they put on the queue and gives debug output a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A full live VM execution (a control or collected pass).
    VmExecute,
    /// Sink work performed while a pass is being recorded into the trace
    /// store.
    Record,
    /// Replaying a shard of a stored trace into its sinks.
    ReplayShard,
    /// Draining published chunks into a shard of instrument/cache sinks.
    SinkDrain,
    /// A generic driver task (one item of a `Runner::map`).
    Task,
    /// Diffing one produced table against its golden counterpart.
    GoldenDiff,
    /// One batched decode pass driving a shard of the configuration grid
    /// (`GridCache` lanes under the batch replay kernel).
    GridSimulate,
}

impl PacketKind {
    /// Stable name used in docs and debug output.
    pub fn name(self) -> &'static str {
        match self {
            PacketKind::VmExecute => "vm_execute",
            PacketKind::Record => "record",
            PacketKind::ReplayShard => "replay_shard",
            PacketKind::SinkDrain => "sink_drain",
            PacketKind::Task => "task",
            PacketKind::GoldenDiff => "golden_diff",
            PacketKind::GridSimulate => "grid_simulate",
        }
    }
}

/// End-of-crew accounting: per-worker packet statistics plus affinity
/// outcomes. Drivers fold this into the telemetry counters and the
/// engine block of the run manifest.
#[derive(Debug, Clone, Default)]
pub struct CrewReport {
    /// Per-worker events/chunks/steals/idle, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Packets executed by the crew in total.
    pub packets: u64,
    /// Workers successfully pinned to a core.
    pub pinned: usize,
    /// Workers whose pin attempt degraded to an unpinned no-op.
    pub affinity_fallbacks: usize,
}

/// A boxed work packet: the typed kind plus the closure that performs it.
struct Packet<'env> {
    /// Names the packet's span in the scheduler trace; the queue itself
    /// treats kinds uniformly.
    kind: PacketKind,
    job: Box<dyn FnOnce(&mut WorkerStats) + Send + 'env>,
}

/// Everything a crew's workers coordinate through, under one lock.
struct Queues<'env> {
    /// Per-worker deques; `submit` with a preferred worker lands here.
    deques: Vec<VecDeque<Packet<'env>>>,
    /// Shared stage buckets, drained in [`Stage`] priority order.
    buckets: [VecDeque<Packet<'env>>; Stage::COUNT],
    /// Packets submitted and not yet fully executed (stats merged).
    pending: usize,
    /// No further submissions; workers exit once the queues run dry.
    closed: bool,
    /// Packets executed so far.
    packets_done: u64,
    /// Per-worker accounting, merged after each packet.
    workers: Vec<WorkerStats>,
    pinned: usize,
    affinity_fallbacks: usize,
}

/// A scoped worker pool executing packets for one operation. Created by
/// [`Scheduler::run`]; submission is cheap (one lock, one notify).
pub struct Crew<'env> {
    q: Mutex<Queues<'env>>,
    work: Condvar,
}

impl<'env> Crew<'env> {
    fn new(jobs: usize) -> Crew<'env> {
        Crew {
            q: Mutex::new(Queues {
                deques: (0..jobs).map(|_| VecDeque::new()).collect(),
                buckets: [const { VecDeque::new() }; Stage::COUNT],
                pending: 0,
                closed: false,
                packets_done: 0,
                workers: vec![WorkerStats::default(); jobs],
                pinned: 0,
                affinity_fallbacks: 0,
            }),
            work: Condvar::new(),
        }
    }

    /// Number of workers in this crew.
    pub fn jobs(&self) -> usize {
        self.q.lock().expect("crew queue poisoned").deques.len()
    }

    /// Submit a packet. With `preferred` it lands on that worker's deque
    /// (modulo the crew width); otherwise it goes to the shared `stage`
    /// bucket, where any idle worker may claim it (counted as a steal).
    pub fn submit(
        &self,
        stage: Stage,
        kind: PacketKind,
        preferred: Option<usize>,
        job: impl FnOnce(&mut WorkerStats) + Send + 'env,
    ) {
        let packet = Packet {
            kind,
            job: Box::new(job),
        };
        let mut q = self.q.lock().expect("crew queue poisoned");
        assert!(!q.closed, "submit after crew close");
        match preferred {
            Some(i) => {
                let i = i % q.deques.len();
                q.deques[i].push_back(packet);
            }
            None => q.buckets[stage as usize].push_back(packet),
        }
        q.pending += 1;
        drop(q);
        self.work.notify_all();
    }

    /// Block until every submitted packet has executed and merged its
    /// statistics. Must be called from outside the crew (the coordinator);
    /// a packet waiting on its own crew would deadlock.
    pub fn wait_idle(&self) {
        let mut q = self.q.lock().expect("crew queue poisoned");
        while q.pending > 0 {
            q = self.work.wait(q).expect("crew queue poisoned");
        }
    }

    /// Snapshot of per-worker statistics (merged packets only).
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.q.lock().expect("crew queue poisoned").workers.clone()
    }

    fn close(&self) {
        self.q.lock().expect("crew queue poisoned").closed = true;
        self.work.notify_all();
    }

    /// Claim the next packet for worker `i`: own deque first (FIFO), then
    /// the stage buckets in priority order, then steal the *newest* packet
    /// from the longest sibling deque. Returns the packet and whether the
    /// claim counts as a steal.
    fn take(q: &mut Queues<'env>, i: usize) -> Option<(Packet<'env>, bool)> {
        if let Some(p) = q.deques[i].pop_front() {
            return Some((p, false));
        }
        for bucket in &mut q.buckets {
            if let Some(p) = bucket.pop_front() {
                return Some((p, true));
            }
        }
        let victim = (0..q.deques.len())
            .filter(|&j| j != i)
            .max_by_key(|&j| q.deques[j].len())?;
        q.deques[victim].pop_back().map(|p| (p, true))
    }

    fn worker_loop(&self, i: usize, sched: &Scheduler) {
        // Give the worker its own telemetry shard (and trace-timeline row)
        // for the crew's lifetime; successive crews reuse the row by name.
        let _shard = sched
            .telemetry
            .as_ref()
            .map(|t| t.attach_named(&format!("worker-{i}")));
        if sched.affinity {
            let outcome = affinity::pin_current_thread(i, &sched.affinity_cmd);
            let mut q = self.q.lock().expect("crew queue poisoned");
            match outcome {
                Ok(()) => q.pinned += 1,
                Err(_) => q.affinity_fallbacks += 1,
            }
        }
        let mut q = self.q.lock().expect("crew queue poisoned");
        loop {
            if let Some((packet, stolen)) = Self::take(&mut q, i) {
                drop(q);
                let mut stats = WorkerStats::default();
                if stolen {
                    stats.steals += 1;
                    probe::instant("steal", "sched");
                }
                let t0 = probe::spans_active().then(Instant::now);
                (packet.job)(&mut stats);
                if let Some(t0) = t0 {
                    probe::span(packet.kind.name(), "packet", t0);
                }
                q = self.q.lock().expect("crew queue poisoned");
                q.workers[i].merge(&stats);
                q.pending -= 1;
                q.packets_done += 1;
                if q.pending == 0 {
                    // Wake both idle siblings and any `wait_idle` caller.
                    self.work.notify_all();
                }
                continue;
            }
            if q.closed {
                return;
            }
            let t0 = Instant::now();
            q = self.work.wait(q).expect("crew queue poisoned");
            q.workers[i].idle_ns += dur_ns(t0.elapsed());
            if probe::spans_active() {
                probe::span("idle", "sched", t0);
            }
        }
    }

    fn report(&self) -> CrewReport {
        let q = self.q.lock().expect("crew queue poisoned");
        CrewReport {
            workers: q.workers.clone(),
            packets: q.packets_done,
            pinned: q.pinned,
            affinity_fallbacks: q.affinity_fallbacks,
        }
    }
}

/// The scheduler handle: policy (affinity and how to achieve it), no
/// threads. Cloning is cheap; every operation materializes its own scoped
/// crew via [`Scheduler::run`].
#[derive(Debug, Clone)]
pub struct Scheduler {
    affinity: bool,
    /// External pinning utility, injectable so tests can force the
    /// degraded path with a command that cannot exist.
    affinity_cmd: std::sync::Arc<str>,
    /// When present, crew workers attach per-worker shards so counters,
    /// phases, and (if enabled) trace spans are attributed to
    /// `worker-{i}` timeline rows instead of vanishing unattached.
    telemetry: Option<Arc<Telemetry>>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new(false)
    }
}

impl Scheduler {
    /// A scheduler with affinity pinning on or off.
    pub fn new(affinity: bool) -> Scheduler {
        Scheduler {
            affinity,
            affinity_cmd: std::sync::Arc::from("taskset"),
            telemetry: None,
        }
    }

    /// Same scheduler with affinity toggled.
    pub fn with_affinity(mut self, affinity: bool) -> Scheduler {
        self.affinity = affinity;
        self
    }

    /// Same scheduler using `cmd` as the pinning utility (test hook: a
    /// nonexistent command exercises the graceful-fallback path).
    pub fn with_affinity_command(mut self, cmd: &str) -> Scheduler {
        self.affinity_cmd = std::sync::Arc::from(cmd);
        self
    }

    /// True if crews spun from this scheduler will attempt pinning.
    pub fn affinity(&self) -> bool {
        self.affinity
    }

    /// Same scheduler with crew workers attached to `telemetry`. Each
    /// worker holds a `worker-{i}` shard for the crew's lifetime, so
    /// packet/idle/steal spans land on stable per-worker timeline rows.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Scheduler {
        self.telemetry = Some(telemetry);
        self
    }

    /// Run one operation against a crew of `jobs` workers. `f` executes on
    /// the calling thread (the coordinator) and may submit packets that
    /// borrow anything outliving this call; the crew's workers drain them
    /// concurrently. Returns `f`'s result plus the crew's accounting once
    /// every worker has exited.
    pub fn run<'env, R>(&self, jobs: usize, f: impl FnOnce(&Crew<'env>) -> R) -> (R, CrewReport) {
        let jobs = jobs.max(1);
        let crew = Crew::new(jobs);
        let out = std::thread::scope(|s| {
            for i in 0..jobs {
                let crew = &crew;
                s.spawn(move || crew.worker_loop(i, self));
            }
            let out = f(&crew);
            crew.close();
            out
        });
        let report = crew.report();
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn every_packet_runs_and_is_counted() {
        let sched = Scheduler::new(false);
        let hits = AtomicUsize::new(0);
        let ((), report) = sched.run(3, |crew| {
            for i in 0..64 {
                let hits = &hits;
                crew.submit(Stage::Execute, PacketKind::Task, Some(i), move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            crew.wait_idle();
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(report.packets, 64);
        assert_eq!(report.workers.len(), 3);
        assert_eq!(report.pinned, 0);
        assert_eq!(report.affinity_fallbacks, 0);
    }

    #[test]
    fn bucket_packets_drain_in_stage_priority_order() {
        // One worker, packets submitted while it is blocked on a gate
        // packet: the finalize packet must run after prepare/execute even
        // though it was submitted first.
        let sched = Scheduler::new(false);
        let order = Mutex::new(Vec::new());
        let ((), _) = sched.run(1, |crew| {
            let gate = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
            let g = gate.clone();
            crew.submit(Stage::Prepare, PacketKind::Task, None, move |_| {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
            for (stage, tag) in [
                (Stage::Finalize, "finalize"),
                (Stage::Simulate, "simulate"),
                (Stage::Execute, "execute"),
                (Stage::Prepare, "prepare"),
            ] {
                let order = &order;
                crew.submit(stage, PacketKind::Task, None, move |_| {
                    order.lock().unwrap().push(tag);
                });
            }
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
            crew.wait_idle();
        });
        assert_eq!(
            *order.lock().unwrap(),
            vec!["prepare", "execute", "simulate", "finalize"]
        );
    }

    #[test]
    fn idle_workers_steal_from_loaded_deques() {
        // All packets pinned to worker 0's deque; with 4 workers the
        // others must steal to finish, and steals must be recorded.
        let sched = Scheduler::new(false);
        let ((), report) = sched.run(4, |crew| {
            for _ in 0..128 {
                crew.submit(Stage::Simulate, PacketKind::SinkDrain, Some(0), move |_| {
                    std::hint::black_box((0..512).sum::<u64>());
                });
            }
            crew.wait_idle();
        });
        assert_eq!(report.packets, 128);
        let steals: u64 = report.workers.iter().map(|w| w.steals).sum();
        // Worker 0 never steals from itself; any packet a sibling claimed
        // counts. The exact split is timing-dependent but the total is
        // bounded by the packet count.
        assert!(steals <= 128);
    }

    #[test]
    fn affinity_with_a_missing_utility_degrades_to_a_noop() {
        let sched = Scheduler::new(true).with_affinity_command("cachegc-no-such-pinner");
        let hits = AtomicUsize::new(0);
        let ((), report) = sched.run(2, |crew| {
            for _ in 0..8 {
                let hits = &hits;
                crew.submit(Stage::Execute, PacketKind::Task, None, move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            crew.wait_idle();
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8, "work still ran");
        assert_eq!(report.pinned + report.affinity_fallbacks, 2);
        assert_eq!(report.pinned, 0, "bogus utility cannot pin");
        assert_eq!(report.affinity_fallbacks, 2);
    }

    #[test]
    fn schedule_and_engine_config_round_trip() {
        assert_eq!(Schedule::parse("rr"), Some(Schedule::RoundRobin));
        assert_eq!(Schedule::parse("ws"), Some(Schedule::WorkStealing));
        assert_eq!(Schedule::parse("steal"), Some(Schedule::WorkStealing));
        assert_eq!(Schedule::parse("nope"), None);
        assert_eq!(Schedule::WorkStealing.name(), "work-stealing");
        let e = EngineConfig::jobs(4)
            .with_schedule(Schedule::WorkStealing)
            .with_chunk(64)
            .with_affinity(true);
        assert!(!e.is_sequential());
        assert!(e.affinity);
        assert_eq!(e.chunk_events, 64);
        assert!(EngineConfig::default().is_sequential());
        assert!(!EngineConfig::jobs(1)
            .with_schedule(Schedule::WorkStealing)
            .is_sequential());
        assert_eq!(ReplayKernel::parse("batch"), Some(ReplayKernel::Batch));
        assert_eq!(ReplayKernel::parse("scalar"), Some(ReplayKernel::Scalar));
        assert_eq!(ReplayKernel::parse("swar"), None);
        assert_eq!(ReplayKernel::default().name(), "scalar");
        let e = EngineConfig::jobs(2).with_replay_kernel(ReplayKernel::Batch);
        assert_eq!(e.replay_kernel, ReplayKernel::Batch);
    }

    #[cfg(not(cachegc_probes_off))]
    #[test]
    fn crews_record_packet_spans_on_worker_rows() {
        let tele = Arc::new(Telemetry::with_spans());
        let sched = Scheduler::new(false).with_telemetry(Arc::clone(&tele));
        let ((), report) = sched.run(2, |crew| {
            for i in 0..8 {
                crew.submit(Stage::Execute, PacketKind::Task, Some(i), move |_| {
                    std::hint::black_box((0..256).sum::<u64>());
                });
            }
            crew.wait_idle();
        });
        assert_eq!(report.packets, 8);
        let snap = tele.snapshot();
        let packet_spans: Vec<_> = snap.spans.iter().filter(|s| s.cat == "packet").collect();
        assert_eq!(packet_spans.len(), 8);
        assert!(packet_spans.iter().all(|s| s.name == "task"));
        assert!(snap
            .spans
            .iter()
            .all(|s| (s.tid as usize) < snap.threads.len()));
        assert!(snap.threads.iter().any(|t| t == "worker-0"));
        assert!(snap.threads.iter().any(|t| t == "worker-1"));
    }

    #[test]
    fn stage_vocabulary_is_total() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
            assert!(!s.name().is_empty());
        }
        for k in [
            PacketKind::VmExecute,
            PacketKind::Record,
            PacketKind::ReplayShard,
            PacketKind::SinkDrain,
            PacketKind::Task,
            PacketKind::GoldenDiff,
            PacketKind::GridSimulate,
        ] {
            assert!(!k.name().is_empty());
        }
    }
}
