//! Disk spill for the trace store: versioned segment files with mmap
//! readback.
//!
//! A stored scenario writes through to `<dir>/<scenario>.seg` the moment
//! it is captured, so eviction is a cheap drop (the bytes survive on
//! disk) and a restarted process warm-starts from the spill directory
//! instead of re-running the VM. Readback maps the file and hands the
//! payload window to [`RecordedTrace::from_image`], so a re-materialized
//! scenario costs address space, not heap.
//!
//! # Segment file format (version 1, little-endian)
//!
//! ```text
//! magic      8  b"CGTSEG1\n" — format version is part of the magic
//! label_len  4  u32
//! label      …  UTF-8 scenario label (stale-file check)
//! events     8  u64
//! stats     13×8 RunStats: instructions (program, collector,
//!               gc_induced), allocated_bytes, then GcStats in declared
//!               order
//! payload    8  u64 length, then that many bytes — the concatenated
//!               sealed segments of the recorded stream (the decoder
//!               carries state across segment boundaries, so
//!               concatenation replays identically)
//! checksum   8  FNV-1a 64 over every preceding byte
//! ```
//!
//! Files are written to a temporary sibling and renamed into place, so a
//! crash mid-write never leaves a half-segment under the real name. Any
//! validation failure on read — wrong magic (old format), wrong label
//! (hash collision or renamed scenario), wrong length, wrong checksum —
//! rejects the file and the scenario falls back to live recording; a
//! spill file is never a correctness dependency.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cachegc_gc::GcStats;
use cachegc_trace::{Counters, RecordedTrace, TraceImage};
use cachegc_vm::RunStats;

const MAGIC: &[u8; 8] = b"CGTSEG1\n";
/// u64 fields in the serialized [`RunStats`] block.
const STATS_WORDS: usize = 13;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

fn stats_words(stats: &RunStats) -> [u64; STATS_WORDS] {
    [
        stats.instructions.program(),
        stats.instructions.collector(),
        stats.instructions.gc_induced(),
        stats.allocated_bytes,
        stats.gc.collections,
        stats.gc.minor_collections,
        stats.gc.major_collections,
        stats.gc.bytes_copied,
        stats.gc.bytes_promoted,
        stats.gc.barrier_stores,
        stats.gc.remembered,
        stats.gc.bytes_swept,
        stats.gc.lines_reclaimed,
    ]
}

fn stats_from_words(w: &[u64; STATS_WORDS]) -> RunStats {
    RunStats {
        instructions: Counters::from_parts(w[0], w[1], w[2]),
        allocated_bytes: w[3],
        gc: GcStats {
            collections: w[4],
            minor_collections: w[5],
            major_collections: w[6],
            bytes_copied: w[7],
            bytes_promoted: w[8],
            barrier_stores: w[9],
            remembered: w[10],
            bytes_swept: w[11],
            lines_reclaimed: w[12],
        },
    }
}

/// The spill file name for a scenario label: the label with every
/// filesystem-hostile byte flattened to `_`, suffixed with the label's
/// FNV-1a hash so flattening collisions ("a/b" vs "a_b") stay distinct.
/// Deterministic, so a restarted process finds its predecessor's files.
pub(crate) fn segment_file_name(label: &str) -> String {
    let safe: String = label
        .chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '.' | '-' | '_' | '@' | '+' => c,
            _ => '_',
        })
        .collect();
    format!("{safe}-{:016x}.seg", fnv1a(label.as_bytes()))
}

/// Why a spill file was rejected on read; callers treat every variant as
/// "record live instead", the distinction is for diagnostics.
#[derive(Debug)]
pub(crate) enum SpillReject {
    /// I/O failure mid-read (not a missing file).
    Io(io::Error),
    /// Structural failure: bad magic/version, label mismatch, truncated
    /// or oversized body, or checksum mismatch.
    Invalid(&'static str),
}

impl std::fmt::Display for SpillReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillReject::Io(e) => write!(f, "read failed: {e}"),
            SpillReject::Invalid(why) => f.write_str(why),
        }
    }
}

/// A scenario re-materialized from disk.
pub(crate) struct LoadedSegment {
    pub trace: RecordedTrace,
    pub stats: RunStats,
}

/// A spill directory: write-through persistence for stored scenarios.
#[derive(Debug, Clone)]
pub(crate) struct SpillDir {
    dir: PathBuf,
}

impl SpillDir {
    pub fn new(dir: PathBuf) -> Self {
        SpillDir { dir }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, label: &str) -> PathBuf {
        self.dir.join(segment_file_name(label))
    }

    /// Persist a captured scenario. Writes `<name>.seg.tmp` then renames
    /// over `<name>.seg`, so readers never see a torn file.
    pub fn write(&self, label: &str, trace: &RecordedTrace, stats: &RunStats) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let final_path = self.path_for(label);
        let tmp_path = final_path.with_extension("seg.tmp");
        let mut body = Vec::with_capacity(64 + label.len() + trace.bytes() as usize);
        body.extend_from_slice(MAGIC);
        body.extend_from_slice(&u32::try_from(label.len()).unwrap_or(u32::MAX).to_le_bytes());
        body.extend_from_slice(label.as_bytes());
        body.extend_from_slice(&trace.events().to_le_bytes());
        for word in stats_words(stats) {
            body.extend_from_slice(&word.to_le_bytes());
        }
        body.extend_from_slice(&trace.bytes().to_le_bytes());
        for chunk in trace.payload_chunks() {
            body.extend_from_slice(chunk);
        }
        let checksum = fnv1a(&body);
        body.extend_from_slice(&checksum.to_le_bytes());
        let mut file = File::create(&tmp_path)?;
        file.write_all(&body)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp_path, &final_path)
    }

    /// Re-materialize a scenario. `Ok(None)` means no spill file exists
    /// (an ordinary cold miss); `Err` means a file exists but failed
    /// validation and must be ignored.
    pub fn read(&self, label: &str) -> Result<Option<LoadedSegment>, SpillReject> {
        let path = self.path_for(label);
        let image: Arc<dyn TraceImage> = match map_file(&path) {
            Ok(Some(image)) => image,
            Ok(None) => return Ok(None),
            Err(e) => return Err(SpillReject::Io(e)),
        };
        let bytes = image.bytes();
        let fail = |why| Err(SpillReject::Invalid(why));
        // Fixed prefix: magic + label_len.
        if bytes.len() < MAGIC.len() + 4 {
            return fail("shorter than the fixed header");
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return fail("magic/version mismatch");
        }
        let mut at = MAGIC.len();
        let label_len = read_u32(bytes, &mut at) as usize;
        if bytes.len() < at + label_len {
            return fail("truncated label");
        }
        if &bytes[at..at + label_len] != label.as_bytes() {
            return fail("label mismatch (stale or colliding file)");
        }
        at += label_len;
        // events + stats + payload_len + payload + checksum must fit.
        let fixed_tail = 8 + STATS_WORDS * 8 + 8;
        if bytes.len() < at + fixed_tail + 8 {
            return fail("truncated header");
        }
        let events = read_u64(bytes, &mut at);
        let mut words = [0u64; STATS_WORDS];
        for word in &mut words {
            *word = read_u64(bytes, &mut at);
        }
        let payload_len = read_u64(bytes, &mut at);
        let Ok(payload_len) = usize::try_from(payload_len) else {
            return fail("payload length overflows");
        };
        if bytes.len() != at + payload_len + 8 {
            return fail("length mismatch (truncated or trailing bytes)");
        }
        let stored_checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a(&bytes[..bytes.len() - 8]) != stored_checksum {
            return fail("checksum mismatch");
        }
        let payload_at = at;
        Ok(Some(LoadedSegment {
            trace: RecordedTrace::from_image(image, payload_at, payload_len, events),
            stats: stats_from_words(&words),
        }))
    }
}

fn read_u32(bytes: &[u8], at: &mut usize) -> u32 {
    let v = u32::from_le_bytes(bytes[*at..*at + 4].try_into().unwrap());
    *at += 4;
    v
}

fn read_u64(bytes: &[u8], at: &mut usize) -> u64 {
    let v = u64::from_le_bytes(bytes[*at..*at + 8].try_into().unwrap());
    *at += 8;
    v
}

/// Open and map a spill file read-only. `Ok(None)` for a missing file.
/// Uses `mmap` where available so the payload costs address space, not
/// heap; falls back to an ordinary heap read elsewhere (and for empty
/// files, which `mmap` refuses).
fn map_file(path: &Path) -> io::Result<Option<Arc<dyn TraceImage>>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let len = file.metadata()?.len();
    let Ok(len) = usize::try_from(len) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "spill file too large to map",
        ));
    };
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    if len > 0 {
        return Ok(Some(Arc::new(mapped::Mmap::map(&file, len)?)));
    }
    let mut buf = Vec::with_capacity(len);
    let mut file = file;
    file.read_to_end(&mut buf)?;
    Ok(Some(Arc::new(HeapImage(buf))))
}

/// Heap-backed image fallback (non-Linux targets and empty files).
struct HeapImage(Vec<u8>);

impl TraceImage for HeapImage {
    fn bytes(&self) -> &[u8] {
        &self.0
    }
}

/// A raw read-only `mmap` of a whole file. The libc wrappers are
/// declared directly (the workspace takes no external dependencies), so
/// this is the one module in the crate allowed to use `unsafe`.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
#[allow(unsafe_code)]
mod mapped {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    use cachegc_trace::TraceImage;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    /// A read-only private mapping of `len` bytes of a file, unmapped on
    /// drop. Safe to share across threads: the mapping is immutable for
    /// its whole lifetime (`PROT_READ`, `MAP_PRIVATE`).
    pub(super) struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is created PROT_READ|MAP_PRIVATE and never
    // remapped, so concurrent reads from any thread are safe.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub(super) fn map(file: &File, len: usize) -> io::Result<Mmap> {
            debug_assert!(len > 0, "mmap refuses zero-length mappings");
            // SAFETY: a fresh anonymous address (addr = null), a length
            // validated against the file's metadata, and a read-only
            // private mapping; the fd outlives the call.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap {
                ptr: ptr as *const u8,
                len,
            })
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: exactly the pointer and length mmap returned.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }

    impl TraceImage for Mmap {
        fn bytes(&self) -> &[u8] {
            // SAFETY: the mapping is live for &self's lifetime and
            // immutable (see the Send/Sync justification).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::{Access, Context, Recorder, TraceSink};

    #[derive(Default, PartialEq, Debug)]
    struct VecSink(Vec<Access>);
    impl TraceSink for VecSink {
        fn access(&mut self, a: Access) {
            self.0.push(a);
        }
    }

    fn sample_trace(n: u32) -> RecordedTrace {
        let mut rec = Recorder::new().with_segment_bytes(64);
        for i in 0..n {
            rec.access(Access::write(i.wrapping_mul(0x9e37_79b9), Context::Mutator));
        }
        rec.finish().expect("unbounded")
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cachegc-spill-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_read_round_trips_trace_and_stats() {
        let spill = SpillDir::new(tempdir("roundtrip"));
        let trace = sample_trace(500);
        let mut stats = RunStats {
            allocated_bytes: 12_345,
            ..Default::default()
        };
        stats.gc.collections = 7;
        stats.gc.lines_reclaimed = 99;
        stats
            .instructions
            .charge(cachegc_trace::InstrClass::GcInduced, 3);
        spill
            .write("compile@1+cheney/2.0M", &trace, &stats)
            .unwrap();

        let loaded = spill
            .read("compile@1+cheney/2.0M")
            .expect("valid file")
            .expect("file exists");
        assert_eq!(loaded.trace.events(), trace.events());
        assert_eq!(loaded.trace.bytes(), trace.bytes());
        assert!(loaded.trace.is_mapped() || cfg!(not(target_os = "linux")));
        assert_eq!(loaded.stats.allocated_bytes, 12_345);
        assert_eq!(loaded.stats.gc.collections, 7);
        assert_eq!(loaded.stats.gc.lines_reclaimed, 99);
        assert_eq!(loaded.stats.instructions.gc_induced(), 3);
        let (mut live, mut mapped) = (VecSink::default(), VecSink::default());
        trace.replay(&mut live);
        loaded.trace.replay(&mut mapped);
        assert_eq!(live, mapped, "mapped replay is event-for-event identical");
    }

    #[test]
    fn missing_file_is_a_cold_miss_not_an_error() {
        let spill = SpillDir::new(tempdir("missing"));
        assert!(spill.read("nothing@1").expect("no error").is_none());
    }

    #[test]
    fn truncated_and_corrupt_files_are_rejected() {
        let spill = SpillDir::new(tempdir("corrupt"));
        let trace = sample_trace(200);
        spill.write("w@1", &trace, &RunStats::default()).unwrap();
        let path = spill.path_for("w@1");

        // Truncation: cut the tail off.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 9]).unwrap();
        assert!(matches!(spill.read("w@1"), Err(SpillReject::Invalid(_))));

        // Bit flip in the payload: checksum must catch it.
        let mut flipped = full.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            spill.read("w@1"),
            Err(SpillReject::Invalid("checksum mismatch"))
        ));

        // Stale format: wrong magic.
        let mut stale = full.clone();
        stale[6] = b'0'; // CGTSEG1 -> CGTSE01
        fs::write(&path, &stale).unwrap();
        assert!(matches!(
            spill.read("w@1"),
            Err(SpillReject::Invalid("magic/version mismatch"))
        ));

        // A different label hashing to the same path cannot happen, but a
        // renamed scenario reusing a file name must be rejected too.
        fs::write(&path, &full).unwrap();
        let other = spill.path_for("other@1");
        fs::create_dir_all(other.parent().unwrap()).unwrap();
        fs::copy(&path, &other).unwrap();
        assert!(matches!(
            spill.read("other@1"),
            Err(SpillReject::Invalid(
                "label mismatch (stale or colliding file)"
            ))
        ));
    }

    #[test]
    fn file_names_flatten_hostile_bytes_and_stay_distinct() {
        let a = segment_file_name("compile@1+cheney/2.0M");
        let b = segment_file_name("compile@1+cheney_2.0M");
        assert!(!a.contains('/'), "collector names carry slashes: {a}");
        assert_ne!(a, b, "flattened labels disambiguate via the hash suffix");
        assert_eq!(a, segment_file_name("compile@1+cheney/2.0M"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let spill = SpillDir::new(tempdir("empty"));
        let trace = Recorder::new().finish().unwrap();
        assert_eq!(trace.bytes(), 0);
        spill
            .write("empty@1", &trace, &RunStats::default())
            .unwrap();
        let loaded = spill.read("empty@1").unwrap().unwrap();
        assert_eq!(loaded.trace.events(), 0);
        let mut out = VecSink::default();
        loaded.trace.replay(&mut out);
        assert!(out.0.is_empty());
    }
}
