//! Scenario-keyed trace store: record a workload's trace on first
//! request, replay it thereafter.
//!
//! The experiments re-run identical scenarios constantly — `compile`
//! under `NoCollector` at scale 1 is re-interpreted by e1, e3, e4
//! (twice), e8–e13 — even though the engine's bit-identity guarantees
//! make every one of those trace passes byte-equal. A [`TraceStore`]
//! memoizes the trace (as a compact [`RecordedTrace`]) and the
//! [`RunStats`] per `(Workload, scale, Option<CollectorSpec>)` scenario,
//! so the VM+GC execute once per scenario and every later pass is a
//! cheap decode.
//!
//! The store is a cache, never a correctness dependency, and it absorbs
//! traffic with three coordinated layers:
//!
//! * **LRU eviction.** A byte budget caps the heap footprint; when a
//!   capture needs room, the least-recently-hit resident scenario is
//!   evicted (entries pinned by an in-flight replay — anything still
//!   holding the [`Arc<StoredTrace>`] — are skipped). Only when nothing
//!   evictable remains is a capture dropped as over-budget.
//! * **Disk spill.** With a spill directory attached, every stored
//!   capture writes through to a checksummed segment file
//!   (`<dir>/<scenario>.seg`, see [`crate::spill`]), so eviction is a
//!   cheap drop and a cold [`TraceStore::acquire`] re-materializes the
//!   scenario from disk through a memory-mapped image — charged zero
//!   against the byte budget — instead of re-running the VM. Corrupt or
//!   stale files are rejected and the scenario records live; never an
//!   error.
//! * **Single-flight recording.** [`TraceStore::acquire`] registers a
//!   miss as an in-flight recording (a [`RecordTicket`]); concurrent
//!   acquires of the same scenario block until the leader's offer lands
//!   and then replay it, so the same VM run is never executed twice
//!   concurrently. The ticket's recorder charges its bytes against the
//!   shared budget *while recording* (see
//!   [`cachegc_trace::RecordBudget`]), so the combined footprint of
//!   resident and in-flight bytes never exceeds the budget.
//!
//! [`RunCtx`] bundles an [`EngineConfig`] with an optional store
//! reference; the engine drivers in [`crate::parallel`] take it to
//! decide, per scenario, between a live (recording) pass and a sharded
//! replay.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cachegc_telemetry::Telemetry;
use cachegc_trace::{RecordBudget, RecordedTrace, Recorder};
use cachegc_vm::RunStats;
use cachegc_workloads::WorkloadInstance;

use crate::experiment::CollectorSpec;
use crate::sched::EngineConfig;
use crate::spill::SpillDir;
use crate::telemetry::Progress;

/// A store key: one unique VM execution scenario.
type ScenarioKey = (WorkloadInstance, Option<CollectorSpec>);

/// The stable human label of a scenario, used to key the per-scenario
/// gauges, to name spill files, and to name scenarios in warnings and
/// the run manifest: `workload@scale`, with `+collector` appended for
/// collected runs (e.g. `compile@1+cheney/2.0M`).
pub fn scenario_label(instance: WorkloadInstance, spec: Option<CollectorSpec>) -> String {
    match spec {
        None => format!("{}@{}", instance.workload.name(), instance.scale),
        Some(spec) => format!(
            "{}@{}+{}",
            instance.workload.name(),
            instance.scale,
            spec.name()
        ),
    }
}

/// A captured scenario: the compact trace plus the [`RunStats`] the live
/// run produced, so replay consumers never need the VM.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The compact event stream.
    pub trace: RecordedTrace,
    /// Instruction/allocation/GC statistics of the recorded run.
    pub stats: RunStats,
}

/// Hit/miss/size accounting for a [`TraceStore`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found a recorded trace (resident, coalesced onto an
    /// in-flight recording, or re-materialized from a spill file).
    pub hits: u64,
    /// Lookups that found nothing (each miss triggers one live VM run).
    pub misses: u64,
    /// Captures dropped because they would exceed the byte budget with
    /// nothing left to evict.
    pub over_budget: u64,
    /// Captures dropped because a concurrent capture of the same
    /// scenario was stored first. Zero under single-flight
    /// ([`TraceStore::acquire`]); the raw [`TraceStore::offer`] protocol
    /// can still produce them. Every miss runs live and offers its
    /// recording back, so `misses + spill_loads == entries + evictions +
    /// over_budget + duplicates` once all offers have landed.
    pub duplicates: u64,
    /// Scenarios currently stored.
    pub entries: u64,
    /// Encoded bytes currently resident on the heap (mapped entries
    /// charge zero).
    pub bytes: u64,
    /// Events currently stored.
    pub events: u64,
    /// Scenarios evicted to make room for newer captures.
    pub evictions: u64,
    /// Heap bytes freed by eviction, cumulative.
    pub bytes_evicted: u64,
    /// Captures written through to spill segment files.
    pub spills: u64,
    /// Scenarios re-materialized from spill files (each counts a hit and
    /// an entry, but no miss — no VM ran).
    pub spill_loads: u64,
    /// Spill files ignored because they failed validation (bad magic,
    /// label, length, or checksum); the scenario recorded live instead.
    pub spill_rejects: u64,
    /// Acquires that blocked on an in-flight recording of the same
    /// scenario and then replayed it (single-flight dedupe; each also
    /// counts a hit).
    pub coalesced: u64,
    /// Bytes currently reserved by in-flight recordings.
    pub reserved: u64,
    /// High-water mark of resident + reserved bytes; never exceeds the
    /// budget of a bounded store.
    pub peak_bytes: u64,
    /// Encoded bytes resident via spill-file images (outside the heap
    /// budget).
    pub mapped_bytes: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} entries ({:.1} MiB, {:.1} M events), {} over budget, {} duplicates, {} evictions ({:.1} MiB), {} spills, {} spill loads, {} coalesced",
            self.hits,
            self.misses,
            self.entries,
            self.bytes as f64 / (1 << 20) as f64,
            self.events as f64 / 1e6,
            self.over_budget,
            self.duplicates,
            self.evictions,
            self.bytes_evicted as f64 / (1 << 20) as f64,
            self.spills,
            self.spill_loads,
            self.coalesced,
        )
    }
}

/// Per-scenario accounting: how one scenario used the store and what its
/// capture cost. Sorted by label in [`TraceStore::scenario_gauges`] and
/// the run manifest.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioGauges {
    /// Lookups of this scenario that replayed.
    pub hits: u64,
    /// Lookups of this scenario that ran live.
    pub misses: u64,
    /// Encoded bytes resident for this scenario (0 until stored, reset
    /// to 0 by eviction).
    pub bytes: u64,
    /// Events resident for this scenario (0 until stored).
    pub events: u64,
    /// Wall time spent on recording passes for this scenario,
    /// nanoseconds — including captures the store went on to drop.
    pub record_ns: u64,
    /// Times this scenario was evicted.
    pub evictions: u64,
    /// Times this scenario was re-materialized from its spill file.
    pub spill_loads: u64,
}

/// What an offer did with a finished capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Kept: resident with this many encoded bytes and events.
    Stored {
        /// Encoded bytes now resident for the scenario.
        bytes: u64,
        /// Events now resident for the scenario.
        events: u64,
        /// Scenarios evicted to make room (recording charge included).
        evictions: u64,
        /// Heap bytes those evictions freed.
        bytes_evicted: u64,
        /// True when the capture also wrote through to its spill file.
        spilled: bool,
    },
    /// Dropped: the recorder overflowed its limit / budget, or keeping
    /// the capture would exceed the byte budget with nothing evictable.
    DroppedOverBudget,
    /// Dropped silently: a concurrent capture of the same scenario won.
    Duplicate,
}

/// How a [`TraceStore::acquire`] hit found its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitSource {
    /// The scenario was resident.
    Resident,
    /// The scenario was re-materialized from its spill file.
    SpillLoad,
    /// The acquire blocked on an in-flight recording and replays its
    /// result (single-flight dedupe).
    Coalesced,
}

/// The result of [`TraceStore::acquire`]: replay a hit, or record under
/// the returned ticket.
#[derive(Debug)]
pub enum Acquired {
    /// The scenario is available: replay it.
    Hit {
        /// The recorded scenario.
        trace: Arc<StoredTrace>,
        /// Where it came from.
        source: HitSource,
    },
    /// The scenario must run live; this acquire holds the (single)
    /// recording flight for it.
    Miss(RecordTicket),
}

/// One resident scenario plus its cache metadata.
#[derive(Debug)]
struct Resident {
    stored: Arc<StoredTrace>,
    /// Budget charge (0 for image-backed entries).
    heap_bytes: u64,
    events: u64,
    /// Logical-clock timestamp of the last hit (or the insert).
    last_use: u64,
    /// A valid spill file exists for this entry.
    on_disk: bool,
    label: String,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<ScenarioKey, Resident>,
    /// Scenarios with a recording in flight; acquires of these block.
    inflight: HashSet<ScenarioKey>,
    /// Bytes reserved by in-flight recorders.
    reserved: u64,
    /// Logical LRU clock, bumped on every hit and insert.
    clock: u64,
    stats: StoreStats,
    gauges: BTreeMap<String, ScenarioGauges>,
}

impl Inner {
    fn footprint(&self) -> u64 {
        self.stats.bytes + self.reserved
    }

    fn note_peak(&mut self) {
        let fp = self.footprint();
        if fp > self.stats.peak_bytes {
            self.stats.peak_bytes = fp;
        }
    }

    /// Make room for `n` more bytes under `budget`, evicting
    /// least-recently-used unpinned heap entries if allowed. Returns
    /// whether the bytes now fit, plus the evictions performed.
    fn make_room(&mut self, budget: u64, evict: bool, n: u64) -> (bool, u64, u64) {
        let mut evictions = 0u64;
        let mut bytes_evicted = 0u64;
        while self.footprint().saturating_add(n) > budget {
            if !evict {
                return (false, evictions, bytes_evicted);
            }
            // Mapped entries charge nothing (evicting them frees no
            // heap) and entries with a live replay borrow are pinned.
            let Some(key) = self
                .map
                .iter()
                .filter(|(_, r)| r.heap_bytes > 0 && Arc::strong_count(&r.stored) == 1)
                .min_by_key(|(_, r)| r.last_use)
                .map(|(k, _)| *k)
            else {
                return (false, evictions, bytes_evicted);
            };
            let victim = self.map.remove(&key).expect("victim is resident");
            self.stats.entries -= 1;
            self.stats.bytes -= victim.heap_bytes;
            self.stats.events -= victim.events;
            self.stats.evictions += 1;
            self.stats.bytes_evicted += victim.heap_bytes;
            evictions += 1;
            bytes_evicted += victim.heap_bytes;
            let gauge = self.gauges.entry(victim.label).or_default();
            gauge.bytes = 0;
            gauge.events = 0;
            gauge.evictions += 1;
        }
        (true, evictions, bytes_evicted)
    }

    /// Insert a scenario; the caller has already made room for (and
    /// accounted) its budget charge. `mapped` entries charge zero.
    fn insert_resident(
        &mut self,
        key: ScenarioKey,
        label: &str,
        stored: Arc<StoredTrace>,
        bytes: u64,
        events: u64,
        mapped: bool,
    ) {
        self.clock += 1;
        let heap_bytes = if mapped { 0 } else { bytes };
        self.stats.entries += 1;
        self.stats.bytes += heap_bytes;
        self.stats.events += events;
        if mapped {
            self.stats.mapped_bytes += bytes;
        }
        self.note_peak();
        let gauge = self.gauges.entry(label.to_string()).or_default();
        gauge.bytes = bytes;
        gauge.events = events;
        self.map.insert(
            key,
            Resident {
                stored,
                heap_bytes,
                events,
                last_use: self.clock,
                on_disk: mapped,
                label: label.to_string(),
            },
        );
    }
}

#[derive(Debug)]
struct Shared {
    budget: u64,
    evict: bool,
    spill: Option<SpillDir>,
    inner: Mutex<Inner>,
    /// Signalled whenever an in-flight recording resolves (offer lands
    /// or ticket is cancelled), waking coalesced acquires.
    flights: Condvar,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("trace store poisoned")
    }

    /// Write a stored scenario through to its spill file; returns
    /// whether the write landed (failures leave the entry heap-only —
    /// the store is a cache, a failed spill is not an error).
    fn write_through(&self, key: &ScenarioKey, label: &str, stored: &StoredTrace) -> bool {
        let Some(spill) = &self.spill else {
            return false;
        };
        if spill.write(label, &stored.trace, &stored.stats).is_err() {
            return false;
        }
        let mut inner = self.lock();
        inner.stats.spills += 1;
        if let Some(resident) = inner.map.get_mut(key) {
            resident.on_disk = true;
        }
        true
    }

    /// Try to re-materialize a scenario from its spill file; the caller
    /// already holds the flight for `key`. `Some` resolves the flight as
    /// a hit; `None` (missing or rejected file) leaves the flight open
    /// for a live recording.
    fn load_spilled(&self, key: ScenarioKey, label: &str) -> Option<Arc<StoredTrace>> {
        let spill = self.spill.as_ref()?;
        let _span = cachegc_telemetry::probe::phase("spill_load");
        match spill.read(label) {
            Ok(Some(segment)) => {
                let bytes = segment.trace.bytes();
                let events = segment.trace.events();
                let stored = Arc::new(StoredTrace {
                    trace: segment.trace,
                    stats: segment.stats,
                });
                let mut inner = self.lock();
                inner.insert_resident(key, label, stored.clone(), bytes, events, true);
                inner.stats.spill_loads += 1;
                inner.stats.hits += 1;
                let gauge = inner.gauges.entry(label.to_string()).or_default();
                gauge.hits += 1;
                gauge.spill_loads += 1;
                inner.inflight.remove(&key);
                drop(inner);
                self.flights.notify_all();
                Some(stored)
            }
            Ok(None) => None,
            Err(reject) => {
                let mut inner = self.lock();
                inner.stats.spill_rejects += 1;
                drop(inner);
                // Corrupt or stale files are never an error — fall back
                // to live recording — but say why on stderr so a wiped
                // warm-start is explainable.
                eprintln!("warning: ignoring spill file for '{label}': {reject}");
                None
            }
        }
    }
}

/// The in-flight byte reservation for one recording flight: a
/// [`RecordBudget`] that charges against the shared store (evicting to
/// make room), so concurrent recorders can never collectively balloon
/// past the budget.
#[derive(Debug)]
struct FlightCharge {
    shared: Arc<Shared>,
    /// This flight's currently reserved bytes (mirror of its share of
    /// `Inner::reserved`).
    outstanding: AtomicU64,
    /// Evictions this flight's charges performed, attributed to the
    /// eventual [`OfferOutcome::Stored`].
    evictions: AtomicU64,
    bytes_evicted: AtomicU64,
}

impl RecordBudget for FlightCharge {
    fn try_charge(&self, n: u64) -> bool {
        let mut inner = self.shared.lock();
        let (fits, evictions, bytes_evicted) =
            inner.make_room(self.shared.budget, self.shared.evict, n);
        self.evictions.fetch_add(evictions, Ordering::Relaxed);
        self.bytes_evicted
            .fetch_add(bytes_evicted, Ordering::Relaxed);
        if !fits {
            return false;
        }
        inner.reserved += n;
        inner.stats.reserved = inner.reserved;
        inner.note_peak();
        self.outstanding.fetch_add(n, Ordering::Relaxed);
        true
    }

    fn release(&self, n: u64) {
        let mut inner = self.shared.lock();
        inner.reserved = inner.reserved.saturating_sub(n);
        inner.stats.reserved = inner.reserved;
        self.outstanding.fetch_sub(
            n.min(self.outstanding.load(Ordering::Relaxed)),
            Ordering::Relaxed,
        );
    }
}

/// The exclusive right (and duty) to record one missed scenario.
///
/// Returned by [`TraceStore::acquire`] on a miss. Record the live run
/// through [`RecordTicket::recorder`] and hand it back with
/// [`RecordTicket::offer`]; concurrent acquires of the same scenario
/// block until then. Dropping the ticket without offering cancels the
/// flight (waiters wake and the first becomes the new leader), so a
/// failed run never wedges the store.
#[derive(Debug)]
pub struct RecordTicket {
    shared: Arc<Shared>,
    key: ScenarioKey,
    label: String,
    charge: Arc<FlightCharge>,
    done: bool,
}

impl RecordTicket {
    /// The scenario's label (for warnings and progress lines).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// A recorder whose bytes are reserved against the store's budget
    /// *while recording* — the in-flight capture can evict cold entries
    /// to make room, and overflows (releasing every reservation) once
    /// nothing more can be charged.
    pub fn recorder(&self) -> Recorder {
        Recorder::with_limit(self.shared.budget)
            .with_budget(self.charge.clone() as Arc<dyn RecordBudget>)
    }

    /// Resolve the flight with a finished recording (wall time charged
    /// to the scenario's encode gauge whatever the outcome). Waiters
    /// wake either way; on [`OfferOutcome::Stored`] they replay the
    /// capture, otherwise they become leaders themselves.
    pub fn offer(
        mut self,
        recorder: Recorder,
        stats: RunStats,
        record_wall: Duration,
    ) -> OfferOutcome {
        self.done = true;
        let record_ns = u64::try_from(record_wall.as_nanos()).unwrap_or(u64::MAX);
        let shared = self.shared.clone();
        // `finish` releases the recorder's slack; whatever the flight
        // still holds is returned below and re-charged under the same
        // lock, so the space cannot be stolen in between.
        let finished = recorder.finish();
        let mut evictions = self.charge.evictions.swap(0, Ordering::Relaxed);
        let mut bytes_evicted = self.charge.bytes_evicted.swap(0, Ordering::Relaxed);
        let mut inner = shared.lock();
        inner
            .gauges
            .entry(self.label.clone())
            .or_default()
            .record_ns += record_ns;
        let still_reserved = self.charge.outstanding.swap(0, Ordering::Relaxed);
        inner.reserved = inner.reserved.saturating_sub(still_reserved);
        inner.stats.reserved = inner.reserved;
        let mut to_spill = None;
        let mut outcome = match finished {
            None => {
                inner.stats.over_budget += 1;
                OfferOutcome::DroppedOverBudget
            }
            Some(trace) => {
                // Duplicate check strictly before any budget decision: a
                // resident scenario must never be misclassified as an
                // over-budget drop.
                if inner.map.contains_key(&self.key) {
                    inner.stats.duplicates += 1;
                    OfferOutcome::Duplicate
                } else {
                    let bytes = trace.bytes();
                    let events = trace.events();
                    let (fits, ev, bev) = inner.make_room(shared.budget, shared.evict, bytes);
                    evictions += ev;
                    bytes_evicted += bev;
                    if !fits {
                        inner.stats.over_budget += 1;
                        OfferOutcome::DroppedOverBudget
                    } else {
                        let stored = Arc::new(StoredTrace { trace, stats });
                        inner.insert_resident(
                            self.key,
                            &self.label,
                            stored.clone(),
                            bytes,
                            events,
                            false,
                        );
                        to_spill = Some(stored);
                        OfferOutcome::Stored {
                            bytes,
                            events,
                            evictions,
                            bytes_evicted,
                            spilled: false,
                        }
                    }
                }
            }
        };
        inner.inflight.remove(&self.key);
        drop(inner);
        shared.flights.notify_all();
        if let Some(stored) = to_spill {
            let spilled = shared.write_through(&self.key, &self.label, &stored);
            if let OfferOutcome::Stored {
                spilled: ref mut flag,
                ..
            } = outcome
            {
                *flag = spilled;
            }
        }
        outcome
    }
}

impl Drop for RecordTicket {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Cancelled flight (e.g. the live run failed): any recorder
        // charge is released by the recorder's own drop; here we just
        // re-open the scenario and wake waiters so one of them can lead.
        let mut inner = self.shared.lock();
        inner.inflight.remove(&self.key);
        drop(inner);
        self.shared.flights.notify_all();
    }
}

/// A thread-safe scenario-keyed cache of recorded traces.
///
/// Shared by reference ([`RunCtx::with_store`]) across every experiment
/// in a process, so one `golden_check` invocation executes each unique
/// scenario's VM exactly once.
#[derive(Debug)]
pub struct TraceStore {
    shared: Arc<Shared>,
}

impl TraceStore {
    /// A store with no byte budget.
    pub fn unbounded() -> Self {
        Self::with_budget(u64::MAX)
    }

    /// A store bounded to `bytes` of resident + in-flight encoded bytes,
    /// evicting least-recently-hit scenarios to stay under it (disable
    /// with [`TraceStore::with_evict`]).
    pub fn with_budget(bytes: u64) -> Self {
        TraceStore {
            shared: Arc::new(Shared {
                budget: bytes,
                evict: true,
                spill: None,
                inner: Mutex::new(Inner::default()),
                flights: Condvar::new(),
            }),
        }
    }

    /// Enable or disable LRU eviction (enabled by default). With
    /// eviction off a bounded store refuses captures at its budget, the
    /// pre-eviction behavior.
    pub fn with_evict(mut self, evict: bool) -> Self {
        Arc::get_mut(&mut self.shared)
            .expect("with_evict before sharing the store")
            .evict = evict;
        self
    }

    /// Attach a spill directory: stored captures write through to
    /// versioned segment files there, and cold acquires re-materialize
    /// from them (memory-mapped, charged zero against the budget)
    /// instead of re-running the VM.
    pub fn with_spill(mut self, dir: PathBuf) -> Self {
        Arc::get_mut(&mut self.shared)
            .expect("with_spill before sharing the store")
            .spill = Some(SpillDir::new(dir));
        self
    }

    /// The byte budget.
    pub fn budget(&self) -> u64 {
        self.shared.budget
    }

    /// Whether LRU eviction is enabled.
    pub fn evict(&self) -> bool {
        self.shared.evict
    }

    /// The spill directory, if one is attached.
    pub fn spill_dir(&self) -> Option<&Path> {
        self.shared.spill.as_ref().map(SpillDir::dir)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.shared.lock()
    }

    /// Acquire a scenario under the single-flight protocol — the one
    /// entry point the experiment drivers use.
    ///
    /// * Resident (or spilled-to-disk) scenario: a [`Acquired::Hit`],
    ///   bumping its LRU timestamp.
    /// * Recording already in flight: block until it resolves, then
    ///   either replay the stored capture
    ///   ([`HitSource::Coalesced`]) or — if the flight was dropped or
    ///   cancelled — take over as the new leader.
    /// * Otherwise: a [`Acquired::Miss`] holding the scenario's
    ///   [`RecordTicket`]; the caller runs live and offers the recording
    ///   back.
    pub fn acquire(&self, instance: WorkloadInstance, spec: Option<CollectorSpec>) -> Acquired {
        let key = (instance, spec);
        let label = scenario_label(instance, spec);
        let shared = &self.shared;
        let mut inner = shared.lock();
        let mut waited = false;
        loop {
            if inner.map.contains_key(&key) {
                inner.clock += 1;
                let now = inner.clock;
                let resident = inner.map.get_mut(&key).expect("checked above");
                resident.last_use = now;
                let trace = resident.stored.clone();
                inner.stats.hits += 1;
                if waited {
                    inner.stats.coalesced += 1;
                }
                inner.gauges.entry(label).or_default().hits += 1;
                return Acquired::Hit {
                    trace,
                    source: if waited {
                        HitSource::Coalesced
                    } else {
                        HitSource::Resident
                    },
                };
            }
            if inner.inflight.contains(&key) {
                waited = true;
                inner = shared.flights.wait(inner).expect("trace store poisoned");
                continue;
            }
            break;
        }
        // Leader: claim the flight first, so concurrent acquires wait
        // while we (lock dropped) probe the spill directory.
        inner.inflight.insert(key);
        if shared.spill.is_some() {
            drop(inner);
            if let Some(stored) = shared.load_spilled(key, &label) {
                return Acquired::Hit {
                    trace: stored,
                    source: HitSource::SpillLoad,
                };
            }
            inner = shared.lock();
        }
        inner.stats.misses += 1;
        inner.gauges.entry(label.clone()).or_default().misses += 1;
        drop(inner);
        Acquired::Miss(RecordTicket {
            shared: Arc::clone(shared),
            key,
            label,
            charge: Arc::new(FlightCharge {
                shared: Arc::clone(shared),
                outstanding: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                bytes_evicted: AtomicU64::new(0),
            }),
            done: false,
        })
    }

    /// Look up a scenario, counting a hit or a miss — the raw,
    /// non-coalescing probe. Unlike [`TraceStore::acquire`] this never
    /// blocks and never claims a flight; racing callers may all miss and
    /// redundantly record (their offers dedupe as
    /// [`OfferOutcome::Duplicate`]). Kept for tests and simple callers;
    /// the experiment drivers use `acquire`.
    pub fn lookup(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
    ) -> Option<Arc<StoredTrace>> {
        let mut inner = self.lock();
        let label = scenario_label(instance, spec);
        inner.clock += 1;
        let now = inner.clock;
        match inner.map.get_mut(&(instance, spec)) {
            Some(resident) => {
                resident.last_use = now;
                let trace = resident.stored.clone();
                inner.stats.hits += 1;
                inner.gauges.entry(label).or_default().hits += 1;
                Some(trace)
            }
            None => {
                inner.stats.misses += 1;
                inner.gauges.entry(label).or_default().misses += 1;
                None
            }
        }
    }

    /// Non-counting peek: is this scenario recorded? (Used for worker
    /// budgeting decisions, which should not skew hit/miss stats.)
    pub fn contains(&self, instance: WorkloadInstance, spec: Option<CollectorSpec>) -> bool {
        self.lock().map.contains_key(&(instance, spec))
    }

    /// Offer a finished recording for a scenario directly (the raw
    /// companion to [`TraceStore::lookup`]; ticket holders use
    /// [`RecordTicket::offer`]). The duplicate check runs strictly
    /// before any budget accounting, so a concurrent capture of a
    /// scenario that was stored since the caller's miss is always
    /// counted [`OfferOutcome::Duplicate`] — never misclassified as an
    /// over-budget drop, no matter how full the store is. Otherwise the
    /// capture is kept if room can be made (evicting LRU entries when
    /// enabled), and written through to the spill directory if one is
    /// attached.
    pub fn offer(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
        recorder: Recorder,
        stats: RunStats,
        record_wall: Duration,
    ) -> OfferOutcome {
        let key = (instance, spec);
        let record_ns = u64::try_from(record_wall.as_nanos()).unwrap_or(u64::MAX);
        let label = scenario_label(instance, spec);
        let Some(trace) = recorder.finish() else {
            let mut inner = self.lock();
            inner.stats.over_budget += 1;
            inner.gauges.entry(label).or_default().record_ns += record_ns;
            return OfferOutcome::DroppedOverBudget;
        };
        let mut inner = self.lock();
        inner.gauges.entry(label.clone()).or_default().record_ns += record_ns;
        if inner.map.contains_key(&key) {
            inner.stats.duplicates += 1;
            return OfferOutcome::Duplicate;
        }
        let bytes = trace.bytes();
        let events = trace.events();
        let (fits, evictions, bytes_evicted) =
            inner.make_room(self.shared.budget, self.shared.evict, bytes);
        if !fits {
            inner.stats.over_budget += 1;
            return OfferOutcome::DroppedOverBudget;
        }
        let stored = Arc::new(StoredTrace { trace, stats });
        inner.insert_resident(key, &label, stored.clone(), bytes, events, false);
        drop(inner);
        let spilled = self.shared.write_through(&key, &label, &stored);
        OfferOutcome::Stored {
            bytes,
            events,
            evictions,
            bytes_evicted,
            spilled,
        }
    }

    /// A snapshot of the accounting counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Per-scenario gauges, sorted by scenario label.
    pub fn scenario_gauges(&self) -> Vec<(String, ScenarioGauges)> {
        self.lock()
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// Everything an experiment driver needs to run a scenario: how to
/// parallelize ([`EngineConfig`]), optionally where to memoize traces,
/// and optionally where to report what happened ([`Telemetry`]) and that
/// it happened at all ([`Progress`]). `Copy`, so sweeps can derive
/// per-stage variants freely.
#[derive(Debug, Clone, Copy)]
pub struct RunCtx<'a> {
    /// Worker count / chunking / schedule for the trace pass.
    pub engine: EngineConfig,
    /// Scenario-keyed trace cache; `None` runs everything live.
    pub store: Option<&'a TraceStore>,
    /// Instrumentation registry the engine drivers attach probe shards
    /// to and report phases/counters into; `None` costs nothing.
    pub telemetry: Option<&'a Arc<Telemetry>>,
    /// Per-pass progress reporting (one stderr line per completed pass);
    /// `None` is silent.
    pub progress: Option<&'a Progress>,
    /// Windowed cache/GC timeline recorder: every pass additionally taps
    /// its reference stream into a timeline sampler; `None` costs one
    /// predictable branch per event.
    pub timeline: Option<&'a crate::timeline::TimelineRecorder>,
}

impl<'a> RunCtx<'a> {
    /// A context with no trace store (always-live passes).
    pub fn new(engine: EngineConfig) -> RunCtx<'static> {
        RunCtx {
            engine,
            store: None,
            telemetry: None,
            progress: None,
            timeline: None,
        }
    }

    /// The sequential-oracle context: one worker, no store.
    pub fn sequential() -> RunCtx<'static> {
        RunCtx::new(EngineConfig::default())
    }

    /// Attach a trace store.
    pub fn with_store(self, store: &'a TraceStore) -> RunCtx<'a> {
        RunCtx {
            store: Some(store),
            ..self
        }
    }

    /// Attach a telemetry registry: every pass through the `_ctx` engine
    /// drivers attaches a probe shard on its thread and reports phases,
    /// counters, and engine observability into it.
    pub fn with_telemetry(self, telemetry: &'a Arc<Telemetry>) -> RunCtx<'a> {
        RunCtx {
            telemetry: Some(telemetry),
            ..self
        }
    }

    /// Attach a progress reporter, ticked once per completed pass.
    pub fn with_progress(self, progress: &'a Progress) -> RunCtx<'a> {
        RunCtx {
            progress: Some(progress),
            ..self
        }
    }

    /// Attach a timeline recorder: every pass commits a windowed
    /// cache/GC timeline of its reference stream.
    pub fn with_timeline(self, timeline: &'a crate::timeline::TimelineRecorder) -> RunCtx<'a> {
        RunCtx {
            timeline: Some(timeline),
            ..self
        }
    }

    /// Same store, different engine.
    pub fn with_engine(self, engine: EngineConfig) -> RunCtx<'a> {
        RunCtx { engine, ..self }
    }

    /// Same store, engine rebudgeted to `jobs` workers.
    pub fn with_jobs(self, jobs: usize) -> RunCtx<'a> {
        let mut engine = self.engine;
        engine.jobs = jobs.max(1);
        RunCtx { engine, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::{Access, Context, TraceSink};
    use cachegc_workloads::Workload;

    fn record(n: u32) -> (Recorder, RunStats) {
        let mut rec = Recorder::new();
        for i in 0..n {
            rec.access(Access::read(0x1000 + 4 * i, Context::Mutator));
        }
        (rec, RunStats::default())
    }

    /// Encoded size of a `record(n)` capture.
    fn capture_bytes(n: u32) -> u64 {
        let (probe, _) = record(n);
        probe.bytes()
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cachegc-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lookup_miss_then_offer_then_hit() {
        let store = TraceStore::unbounded();
        let w = Workload::Rewrite.scaled(1);
        assert!(store.lookup(w, None).is_none());
        let (rec, stats) = record(100);
        let outcome = store.offer(w, None, rec, stats, Duration::from_micros(3));
        let OfferOutcome::Stored { bytes, events, .. } = outcome else {
            panic!("expected Stored, got {outcome:?}");
        };
        assert_eq!(events, 100);
        let hit = store.lookup(w, None).expect("stored");
        assert_eq!(hit.trace.events(), 100);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.over_budget), (1, 1, 1, 0));
        assert_eq!(s.events, 100);
        assert!(s.bytes > 0 && s.bytes == bytes);
        assert_eq!(s.peak_bytes, bytes);
        // The per-scenario gauge tracked both lookups and the capture.
        let gauges = store.scenario_gauges();
        assert_eq!(gauges.len(), 1);
        let (label, g) = &gauges[0];
        assert_eq!(label, "rewrite@1");
        assert_eq!((g.hits, g.misses, g.bytes, g.events), (1, 1, bytes, 100));
        assert_eq!(g.record_ns, 3_000);
    }

    #[test]
    fn keys_distinguish_scale_and_spec() {
        let store = TraceStore::unbounded();
        let w = Workload::Compile;
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 2 << 20,
        };
        let (rec, stats) = record(10);
        store.offer(w.scaled(1), Some(spec), rec, stats, Duration::ZERO);
        assert!(store.contains(w.scaled(1), Some(spec)));
        assert!(!store.contains(w.scaled(2), Some(spec)));
        assert!(!store.contains(w.scaled(1), None));
        // `contains` does not touch hit/miss accounting.
        assert_eq!(store.stats().hits + store.stats().misses, 0);
    }

    #[test]
    fn budget_overflow_falls_back_without_error() {
        let store = TraceStore::with_budget(4);
        let w = Workload::Prove.scaled(1);
        // The ticket's recorder charges against the budget and overflows
        // mid-run once nothing more can be reserved.
        let Acquired::Miss(ticket) = store.acquire(w, None) else {
            panic!("empty store must miss");
        };
        let mut rec = ticket.recorder();
        for i in 0..1000 {
            rec.access(Access::read(i << 16, Context::Mutator));
        }
        assert!(rec.overflowed());
        let outcome = ticket.offer(rec, RunStats::default(), Duration::from_nanos(7));
        assert_eq!(outcome, OfferOutcome::DroppedOverBudget);
        let s = store.stats();
        assert_eq!((s.entries, s.over_budget, s.reserved), (0, 1, 0));
        assert!(s.peak_bytes <= 4, "charges never outran the budget: {s}");
        // Encode time is charged even for a dropped capture.
        let (_, g) = &store.scenario_gauges()[0];
        assert_eq!((g.record_ns, g.bytes), (7, 0));
    }

    #[test]
    fn offer_rejects_when_resident_bytes_fill_budget_without_eviction() {
        let probe_bytes = capture_bytes(64);
        let store = TraceStore::with_budget(probe_bytes + probe_bytes / 2).with_evict(false);
        let (rec, stats) = record(64);
        store.offer(
            Workload::Rewrite.scaled(1),
            None,
            rec,
            stats,
            Duration::ZERO,
        );
        assert_eq!(store.stats().entries, 1);
        // Second capture individually fits, but with eviction disabled
        // the resident bytes leave no room.
        let (rec, stats) = record(64);
        let outcome = store.offer(Workload::Nbody.scaled(1), None, rec, stats, Duration::ZERO);
        assert_eq!(outcome, OfferOutcome::DroppedOverBudget);
        let s = store.stats();
        assert_eq!((s.entries, s.over_budget, s.evictions), (1, 1, 0));
    }

    #[test]
    fn duplicate_offer_is_distinguished_from_a_drop() {
        let store = TraceStore::unbounded();
        let w = Workload::Rewrite.scaled(1);
        let (rec, stats) = record(8);
        assert!(matches!(
            store.offer(w, None, rec, stats, Duration::ZERO),
            OfferOutcome::Stored { .. }
        ));
        let (rec, stats) = record(8);
        assert_eq!(
            store.offer(w, None, rec, stats, Duration::ZERO),
            OfferOutcome::Duplicate
        );
        let s = store.stats();
        assert_eq!((s.entries, s.over_budget), (1, 0));
    }

    #[test]
    fn racing_duplicate_offers_near_a_full_budget_never_count_over_budget() {
        // Regression: `offer` used to check the byte budget before the
        // duplicate check, so with the budget sized for exactly one
        // capture, the losing offer of a *resident* scenario was
        // misclassified as an over-budget drop (and could warn). The
        // duplicate check must win in every interleaving.
        let w = Workload::Rewrite.scaled(1);
        let budget = capture_bytes(64);
        for _ in 0..32 {
            let store = TraceStore::with_budget(budget).with_evict(false);
            let outcomes: Vec<OfferOutcome> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        s.spawn(|| {
                            let (rec, stats) = record(64);
                            store.offer(w, None, rec, stats, Duration::ZERO)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let stored = outcomes
                .iter()
                .filter(|o| matches!(o, OfferOutcome::Stored { .. }))
                .count();
            let duplicates = outcomes
                .iter()
                .filter(|o| matches!(o, OfferOutcome::Duplicate))
                .count();
            assert_eq!(
                (stored, duplicates),
                (1, 1),
                "exactly one capture wins, the loser is a duplicate: {outcomes:?}"
            );
            let s = store.stats();
            assert_eq!(s.over_budget, 0, "no offer may be misclassified: {s}");
            assert_eq!((s.entries, s.duplicates), (1, 1));
        }
    }

    #[test]
    fn concurrent_recorders_never_outrun_the_budget() {
        // Regression: recorders used to snapshot resident bytes only, so
        // N concurrent captures each got the full remaining budget and
        // could collectively balloon. With in-flight reservations the
        // peak of resident + reserved stays under the budget no matter
        // the interleaving.
        let one = capture_bytes(256);
        let budget = one + one / 2; // room for one capture, not two
        let store = TraceStore::with_budget(budget).with_evict(false);
        let scenarios = [
            Workload::Rewrite.scaled(1),
            Workload::Nbody.scaled(1),
            Workload::Compile.scaled(1),
            Workload::Prove.scaled(1),
        ];
        let store = &store;
        let outcomes: Vec<OfferOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = scenarios
                .iter()
                .map(|&w| {
                    s.spawn(move || {
                        let Acquired::Miss(ticket) = store.acquire(w, None) else {
                            panic!("distinct scenarios all miss");
                        };
                        let mut rec = ticket.recorder();
                        for i in 0..256u32 {
                            rec.access(Access::read(0x1000 + 4 * i, Context::Mutator));
                        }
                        ticket.offer(rec, RunStats::default(), Duration::ZERO)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let s = store.stats();
        assert!(
            s.peak_bytes <= budget,
            "reserved + resident peaked at {} over budget {budget}",
            s.peak_bytes
        );
        assert_eq!(s.reserved, 0, "all reservations resolved");
        let stored = outcomes
            .iter()
            .filter(|o| matches!(o, OfferOutcome::Stored { .. }))
            .count();
        assert!(stored >= 1, "the budget fits one capture: {outcomes:?}");
        assert_eq!(stored as u64, s.entries);
        assert_eq!(s.misses, s.entries + s.over_budget + s.duplicates);
    }

    #[test]
    fn capture_landing_exactly_on_the_remaining_budget_is_stored() {
        // Measure the capture size, then set the budget to exactly that:
        // the boundary is inclusive at the recorder's reservation.
        let budget = capture_bytes(64);
        let store = TraceStore::with_budget(budget).with_evict(false);
        let w = Workload::Rewrite.scaled(1);
        let Acquired::Miss(ticket) = store.acquire(w, None) else {
            panic!("empty store must miss");
        };
        let mut rec = ticket.recorder();
        for i in 0..64u32 {
            rec.access(Access::read(0x1000 + 4 * i, Context::Mutator));
        }
        assert!(
            !rec.overflowed(),
            "exact-budget recording must not overflow"
        );
        let outcome = ticket.offer(rec, RunStats::default(), Duration::ZERO);
        let OfferOutcome::Stored { bytes, .. } = outcome else {
            panic!("exact-budget capture must be Stored, got {outcome:?}");
        };
        assert_eq!(bytes, budget, "stored capture fills the budget exactly");
        // The budget is now exhausted and eviction is off: one more byte
        // of capture drops.
        let (rec, stats) = record(1);
        assert_eq!(
            store.offer(Workload::Nbody.scaled(1), None, rec, stats, Duration::ZERO),
            OfferOutcome::DroppedOverBudget
        );
    }

    #[test]
    fn lru_evicts_the_least_recently_hit_scenario_first() {
        // Budget for two captures; A and B stored, A hit, C offered:
        // the un-hit B must evict first, and the accounting rebalances
        // as misses == entries + over_budget + duplicates + evictions.
        let one = capture_bytes(64);
        let store = TraceStore::with_budget(2 * one + one / 2);
        let a = Workload::Rewrite.scaled(1);
        let b = Workload::Nbody.scaled(1);
        let c = Workload::Compile.scaled(1);
        for w in [a, b] {
            assert!(store.lookup(w, None).is_none());
            let (rec, stats) = record(64);
            assert!(matches!(
                store.offer(w, None, rec, stats, Duration::ZERO),
                OfferOutcome::Stored { .. }
            ));
        }
        assert!(store.lookup(a, None).is_some(), "hit A to refresh it");
        assert!(store.lookup(c, None).is_none());
        let (rec, stats) = record(64);
        let outcome = store.offer(c, None, rec, stats, Duration::ZERO);
        let OfferOutcome::Stored {
            evictions,
            bytes_evicted,
            ..
        } = outcome
        else {
            panic!("C must be stored by evicting, got {outcome:?}");
        };
        assert_eq!((evictions, bytes_evicted), (1, one));
        assert!(store.contains(a, None), "recently hit A survives");
        assert!(!store.contains(b, None), "un-hit B evicted first");
        assert!(store.contains(c, None));
        let s = store.stats();
        assert_eq!(
            s.misses,
            s.entries + s.over_budget + s.duplicates + s.evictions,
            "eviction rebalances the offer accounting: {s}"
        );
        assert_eq!((s.entries, s.evictions, s.bytes), (2, 1, 2 * one));
        let gauges = store.scenario_gauges();
        let (_, gb) = gauges
            .iter()
            .find(|(l, _)| l == "nbody@1")
            .expect("B gauge persists after eviction");
        assert_eq!((gb.evictions, gb.bytes, gb.events), (1, 0, 0));
    }

    #[test]
    fn pinned_entries_are_skipped_by_eviction() {
        let one = capture_bytes(64);
        let store = TraceStore::with_budget(2 * one + one / 2);
        let a = Workload::Rewrite.scaled(1);
        let b = Workload::Nbody.scaled(1);
        for w in [a, b] {
            let (rec, stats) = record(64);
            store.offer(w, None, rec, stats, Duration::ZERO);
        }
        // Pin A (an in-flight replay holds the Arc), then hit B so A is
        // the LRU choice: eviction must skip pinned A and take B anyway.
        let pin = store.lookup(a, None).expect("A resident");
        assert!(store.lookup(b, None).is_some(), "B is now most recent");
        let (rec, stats) = record(64);
        let c = Workload::Compile.scaled(1);
        assert!(matches!(
            store.offer(c, None, rec, stats, Duration::ZERO),
            OfferOutcome::Stored { .. }
        ));
        assert!(store.contains(a, None), "pinned A survives");
        assert!(!store.contains(b, None), "unpinned B evicted instead");
        drop(pin);
        // With the pin gone A is evictable again.
        let (rec, stats) = record(64);
        let d = Workload::Prove.scaled(1);
        assert!(matches!(
            store.offer(d, None, rec, stats, Duration::ZERO),
            OfferOutcome::Stored { .. }
        ));
        assert!(!store.contains(a, None), "unpinned A evicts by LRU");
    }

    #[test]
    fn nothing_evictable_still_drops_instead_of_erroring() {
        // Everything resident is pinned: a new capture has nowhere to
        // make room and must drop as over-budget, never panic or evict a
        // pinned entry out from under its replay.
        let one = capture_bytes(64);
        let store = TraceStore::with_budget(one + one / 2);
        let a = Workload::Rewrite.scaled(1);
        let (rec, stats) = record(64);
        store.offer(a, None, rec, stats, Duration::ZERO);
        let _pin = store.lookup(a, None).expect("A resident");
        let (rec, stats) = record(64);
        assert_eq!(
            store.offer(Workload::Nbody.scaled(1), None, rec, stats, Duration::ZERO),
            OfferOutcome::DroppedOverBudget
        );
        assert!(store.contains(a, None));
    }

    #[test]
    fn concurrent_acquires_single_flight_with_zero_duplicates() {
        // The PR 6 race: many threads race the miss -> record -> offer
        // protocol on a handful of scenarios. Under single-flight, one
        // thread leads each scenario and everyone else coalesces:
        // duplicates must be exactly 0 and each scenario runs "live"
        // exactly once.
        let store = TraceStore::unbounded();
        let scenarios = [
            Workload::Rewrite.scaled(1),
            Workload::Nbody.scaled(1),
            Workload::Compile.scaled(1),
        ];
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for w in scenarios {
                        match store.acquire(w, None) {
                            Acquired::Hit { trace, .. } => {
                                assert_eq!(trace.trace.events(), 32);
                            }
                            Acquired::Miss(ticket) => {
                                let mut rec = ticket.recorder();
                                for i in 0..32u32 {
                                    rec.access(Access::read(0x1000 + 4 * i, Context::Mutator));
                                }
                                ticket.offer(rec, RunStats::default(), Duration::ZERO);
                            }
                        }
                    }
                });
            }
        });
        let st = store.stats();
        assert_eq!(st.duplicates, 0, "single-flight leaves no duplicates: {st}");
        assert_eq!(st.misses, scenarios.len() as u64, "one live run each");
        assert_eq!(st.entries, scenarios.len() as u64);
        assert_eq!(st.over_budget, 0);
        assert_eq!(
            st.misses,
            st.entries + st.over_budget + st.duplicates + st.evictions,
            "offer outcomes must account for every miss: {st}"
        );
        assert_eq!(st.hits + st.misses, (4 * scenarios.len()) as u64);
        for w in scenarios {
            assert!(store.contains(w, None));
        }
    }

    #[test]
    fn coalesced_acquires_block_until_the_leader_offers() {
        let store = Arc::new(TraceStore::unbounded());
        let w = Workload::Rewrite.scaled(1);
        let Acquired::Miss(ticket) = store.acquire(w, None) else {
            panic!("empty store must miss");
        };
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || match store.acquire(w, None) {
                    Acquired::Hit { trace, source } => (trace.trace.events(), source),
                    Acquired::Miss(_) => panic!("waiters must coalesce, not lead"),
                })
            })
            .collect();
        // Give the waiters time to actually block on the flight.
        std::thread::sleep(Duration::from_millis(30));
        let mut rec = ticket.recorder();
        for i in 0..16u32 {
            rec.access(Access::read(0x2000 + 4 * i, Context::Mutator));
        }
        assert!(matches!(
            ticket.offer(rec, RunStats::default(), Duration::ZERO),
            OfferOutcome::Stored { .. }
        ));
        for waiter in waiters {
            let (events, source) = waiter.join().unwrap();
            assert_eq!(events, 16);
            assert_eq!(source, HitSource::Coalesced);
        }
        let s = store.stats();
        assert_eq!((s.misses, s.hits, s.coalesced, s.duplicates), (1, 2, 2, 0));
    }

    #[test]
    fn a_cancelled_flight_hands_leadership_to_a_waiter() {
        let store = Arc::new(TraceStore::unbounded());
        let w = Workload::Rewrite.scaled(1);
        let Acquired::Miss(first) = store.acquire(w, None) else {
            panic!("empty store must miss");
        };
        let waiter = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || match store.acquire(w, None) {
                Acquired::Miss(ticket) => {
                    let (rec, stats) = record(8);
                    drop(rec);
                    let mut rec = ticket.recorder();
                    rec.access(Access::read(0x30, Context::Mutator));
                    ticket.offer(rec, stats, Duration::ZERO)
                }
                Acquired::Hit { .. } => panic!("the first flight never offered"),
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(first); // cancel: e.g. the live run errored
        assert!(matches!(
            waiter.join().unwrap(),
            OfferOutcome::Stored { .. }
        ));
        let s = store.stats();
        assert_eq!((s.misses, s.entries, s.duplicates), (2, 1, 0));
        assert!(store.contains(w, None));
    }

    #[test]
    fn spill_survives_restart_and_rejects_truncation() {
        let dir = tempdir("restart");
        let w = Workload::Rewrite.scaled(1);
        // First process: record and write through.
        {
            let store = TraceStore::with_budget(1 << 20).with_spill(dir.clone());
            let Acquired::Miss(ticket) = store.acquire(w, None) else {
                panic!("cold store must miss");
            };
            let mut rec = ticket.recorder();
            for i in 0..200u32 {
                rec.access(Access::read(0x1000 + 4 * i, Context::Mutator));
            }
            let outcome = ticket.offer(rec, RunStats::default(), Duration::ZERO);
            let OfferOutcome::Stored { spilled, .. } = outcome else {
                panic!("capture must store, got {outcome:?}");
            };
            assert!(spilled, "write-through must land");
            assert_eq!(store.stats().spills, 1);
        }
        // "Restarted" process: warm-start from disk, no VM run needed.
        {
            let store = TraceStore::with_budget(1 << 20).with_spill(dir.clone());
            let Acquired::Hit { trace, source } = store.acquire(w, None) else {
                panic!("warm start must hit from the spill file");
            };
            assert_eq!(source, HitSource::SpillLoad);
            assert_eq!(trace.trace.events(), 200);
            let s = store.stats();
            assert_eq!((s.hits, s.misses, s.spill_loads, s.entries), (1, 0, 1, 1));
            assert_eq!(s.bytes, 0, "mapped entries charge zero heap");
            assert!(s.mapped_bytes > 0);
            // Second acquire is an ordinary resident hit.
            assert!(matches!(
                store.acquire(w, None),
                Acquired::Hit {
                    source: HitSource::Resident,
                    ..
                }
            ));
        }
        // Truncate the segment file: the checksum/length check must
        // reject it and fall back to a live recording.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "seg"))
            .expect("one segment file");
        let full = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &full[..full.len() / 2]).unwrap();
        {
            let store = TraceStore::with_budget(1 << 20).with_spill(dir.clone());
            assert!(
                matches!(store.acquire(w, None), Acquired::Miss(_)),
                "truncated file must be rejected, not replayed"
            );
            let s = store.stats();
            assert_eq!((s.spill_rejects, s.spill_loads, s.misses), (1, 0, 1));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_a_cheap_drop_when_the_entry_is_on_disk() {
        // With spill attached, an evicted scenario re-materializes from
        // its segment file on the next acquire instead of re-recording.
        let dir = tempdir("evict-reload");
        let one = capture_bytes(64);
        let store = TraceStore::with_budget(one + one / 2).with_spill(dir.clone());
        let a = Workload::Rewrite.scaled(1);
        let b = Workload::Nbody.scaled(1);
        for w in [a, b] {
            let Acquired::Miss(ticket) = store.acquire(w, None) else {
                panic!("cold miss");
            };
            let mut rec = ticket.recorder();
            for i in 0..64u32 {
                rec.access(Access::read(0x1000 + 4 * i, Context::Mutator));
            }
            assert!(matches!(
                ticket.offer(rec, RunStats::default(), Duration::ZERO),
                OfferOutcome::Stored { .. }
            ));
        }
        // B's capture evicted A (budget fits one); A now reloads from
        // disk as a mapped hit, not a miss.
        assert!(!store.contains(a, None));
        let Acquired::Hit { source, .. } = store.acquire(a, None) else {
            panic!("A must reload from its spill file");
        };
        assert_eq!(source, HitSource::SpillLoad);
        let s = store.stats();
        assert_eq!((s.evictions, s.spill_loads, s.spills), (1, 1, 2));
        assert_eq!(
            s.misses + s.spill_loads,
            s.entries + s.evictions + s.over_budget + s.duplicates,
            "generalized balance holds with spill loads: {s}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_labels_name_collector_and_scale() {
        let w = Workload::Compile.scaled(3);
        assert_eq!(scenario_label(w, None), "compile@3");
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 2 << 20,
        };
        assert_eq!(
            scenario_label(w, Some(spec)),
            format!("compile@3+{}", spec.name())
        );
    }
}
