//! Scenario-keyed trace store: record a workload's trace on first
//! request, replay it thereafter.
//!
//! The experiments re-run identical scenarios constantly — `compile`
//! under `NoCollector` at scale 1 is re-interpreted by e1, e3, e4
//! (twice), e8–e13 — even though the engine's bit-identity guarantees
//! make every one of those trace passes byte-equal. A [`TraceStore`]
//! memoizes the trace (as a compact [`RecordedTrace`]) and the
//! [`RunStats`] per `(Workload, scale, Option<CollectorSpec>)` scenario,
//! so the VM+GC execute once per scenario and every later pass is a
//! cheap decode.
//!
//! The store is a cache, never a correctness dependency: a byte budget
//! caps its footprint, and when recording a scenario would exceed the
//! budget the capture is dropped and that scenario simply keeps running
//! live. Over-budget is counted, not reported as an error.
//!
//! [`RunCtx`] bundles an [`EngineConfig`] with an optional store
//! reference; the engine drivers in [`crate::parallel`] take it to
//! decide, per scenario, between a live (recording) pass and a sharded
//! replay.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use cachegc_trace::{EngineConfig, RecordedTrace, Recorder};
use cachegc_vm::RunStats;
use cachegc_workloads::WorkloadInstance;

use crate::experiment::CollectorSpec;

/// A store key: one unique VM execution scenario.
type ScenarioKey = (WorkloadInstance, Option<CollectorSpec>);

/// A captured scenario: the compact trace plus the [`RunStats`] the live
/// run produced, so replay consumers never need the VM.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The compact event stream.
    pub trace: RecordedTrace,
    /// Instruction/allocation/GC statistics of the recorded run.
    pub stats: RunStats,
}

/// Hit/miss/size accounting for a [`TraceStore`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found a recorded trace.
    pub hits: u64,
    /// Lookups that found nothing (each miss triggers one live VM run).
    pub misses: u64,
    /// Captures dropped because they would exceed the byte budget.
    pub over_budget: u64,
    /// Scenarios currently stored.
    pub entries: u64,
    /// Encoded bytes currently stored.
    pub bytes: u64,
    /// Events currently stored.
    pub events: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} entries ({:.1} MiB, {:.1} M events), {} over budget",
            self.hits,
            self.misses,
            self.entries,
            self.bytes as f64 / (1 << 20) as f64,
            self.events as f64 / 1e6,
            self.over_budget,
        )
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<ScenarioKey, Arc<StoredTrace>>,
    stats: StoreStats,
}

/// A thread-safe scenario-keyed cache of recorded traces.
///
/// Shared by reference ([`RunCtx::with_store`]) across every experiment
/// in a process, so one `golden_check` invocation executes each unique
/// scenario's VM exactly once.
#[derive(Debug)]
pub struct TraceStore {
    budget: u64,
    inner: Mutex<Inner>,
}

impl TraceStore {
    /// A store with no byte budget.
    pub fn unbounded() -> Self {
        Self::with_budget(u64::MAX)
    }

    /// A store that refuses captures once `bytes` total encoded bytes
    /// are resident (existing entries are never evicted; new scenarios
    /// fall back to live tracing).
    pub fn with_budget(bytes: u64) -> Self {
        TraceStore {
            budget: bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("trace store poisoned")
    }

    /// Look up a scenario, counting a hit or a miss. A miss is the
    /// caller's cue to run live (and, ideally, [`TraceStore::offer`] the
    /// recording back).
    pub fn lookup(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
    ) -> Option<Arc<StoredTrace>> {
        let mut inner = self.lock();
        match inner.map.get(&(instance, spec)).cloned() {
            Some(hit) => {
                inner.stats.hits += 1;
                Some(hit)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Non-counting peek: is this scenario recorded? (Used for worker
    /// budgeting decisions, which should not skew hit/miss stats.)
    pub fn contains(&self, instance: WorkloadInstance, spec: Option<CollectorSpec>) -> bool {
        self.lock().map.contains_key(&(instance, spec))
    }

    /// A recorder limited to the budget still remaining, so a capture
    /// that cannot possibly be kept frees its buffers mid-run instead of
    /// ballooning first.
    pub fn recorder(&self) -> Recorder {
        let resident = self.lock().stats.bytes;
        Recorder::with_limit(self.budget.saturating_sub(resident))
    }

    /// Offer a finished recording for a scenario. Keeps it if the
    /// recorder did not overflow and the store stays within budget;
    /// otherwise counts it as over-budget and drops it. A concurrent
    /// duplicate (the scenario was stored since the caller's miss) is
    /// dropped silently, leaving `misses > entries` as the audit trail.
    pub fn offer(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
        recorder: Recorder,
        stats: RunStats,
    ) {
        let Some(trace) = recorder.finish() else {
            self.lock().stats.over_budget += 1;
            return;
        };
        let mut inner = self.lock();
        if inner.stats.bytes.saturating_add(trace.bytes()) > self.budget {
            inner.stats.over_budget += 1;
            return;
        }
        if inner.map.contains_key(&(instance, spec)) {
            return;
        }
        inner.stats.entries += 1;
        inner.stats.bytes += trace.bytes();
        inner.stats.events += trace.events();
        inner
            .map
            .insert((instance, spec), Arc::new(StoredTrace { trace, stats }));
    }

    /// A snapshot of the accounting counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }
}

/// Everything an experiment driver needs to run a scenario: how to
/// parallelize ([`EngineConfig`]) and, optionally, where to memoize
/// traces. `Copy`, so sweeps can derive per-stage variants freely.
#[derive(Debug, Clone, Copy)]
pub struct RunCtx<'a> {
    /// Worker count / chunking / schedule for the trace pass.
    pub engine: EngineConfig,
    /// Scenario-keyed trace cache; `None` runs everything live.
    pub store: Option<&'a TraceStore>,
}

impl<'a> RunCtx<'a> {
    /// A context with no trace store (always-live passes).
    pub fn new(engine: EngineConfig) -> RunCtx<'static> {
        RunCtx {
            engine,
            store: None,
        }
    }

    /// The sequential-oracle context: one worker, no store.
    pub fn sequential() -> RunCtx<'static> {
        RunCtx::new(EngineConfig::default())
    }

    /// Attach a trace store.
    pub fn with_store(self, store: &TraceStore) -> RunCtx<'_> {
        RunCtx {
            engine: self.engine,
            store: Some(store),
        }
    }

    /// Same store, different engine.
    pub fn with_engine(self, engine: EngineConfig) -> RunCtx<'a> {
        RunCtx { engine, ..self }
    }

    /// Same store, engine rebudgeted to `jobs` workers.
    pub fn with_jobs(self, jobs: usize) -> RunCtx<'a> {
        let mut engine = self.engine;
        engine.jobs = jobs.max(1);
        RunCtx { engine, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::{Access, Context, TraceSink};
    use cachegc_workloads::Workload;

    fn record(n: u32) -> (Recorder, RunStats) {
        let mut rec = Recorder::new();
        for i in 0..n {
            rec.access(Access::read(0x1000 + 4 * i, Context::Mutator));
        }
        (rec, RunStats::default())
    }

    #[test]
    fn lookup_miss_then_offer_then_hit() {
        let store = TraceStore::unbounded();
        let w = Workload::Rewrite.scaled(1);
        assert!(store.lookup(w, None).is_none());
        let (rec, stats) = record(100);
        store.offer(w, None, rec, stats);
        let hit = store.lookup(w, None).expect("stored");
        assert_eq!(hit.trace.events(), 100);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.over_budget), (1, 1, 1, 0));
        assert_eq!(s.events, 100);
        assert!(s.bytes > 0);
    }

    #[test]
    fn keys_distinguish_scale_and_spec() {
        let store = TraceStore::unbounded();
        let w = Workload::Compile;
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 2 << 20,
        };
        let (rec, stats) = record(10);
        store.offer(w.scaled(1), Some(spec), rec, stats);
        assert!(store.contains(w.scaled(1), Some(spec)));
        assert!(!store.contains(w.scaled(2), Some(spec)));
        assert!(!store.contains(w.scaled(1), None));
        // `contains` does not touch hit/miss accounting.
        assert_eq!(store.stats().hits + store.stats().misses, 0);
    }

    #[test]
    fn budget_overflow_falls_back_without_error() {
        let store = TraceStore::with_budget(4);
        let w = Workload::Prove.scaled(1);
        // The store-provided recorder carries the remaining budget and
        // overflows mid-run.
        let mut rec = store.recorder();
        for i in 0..1000 {
            rec.access(Access::read(i << 16, Context::Mutator));
        }
        assert!(rec.overflowed());
        store.offer(w, None, rec, RunStats::default());
        let s = store.stats();
        assert_eq!((s.entries, s.over_budget), (0, 1));
        assert!(store.lookup(w, None).is_none(), "nothing was stored");
    }

    #[test]
    fn offer_rejects_when_resident_bytes_fill_budget() {
        let (probe, _) = record(64);
        let probe_bytes = probe.bytes();
        let store = TraceStore::with_budget(probe_bytes + probe_bytes / 2);
        let (rec, stats) = record(64);
        store.offer(Workload::Rewrite.scaled(1), None, rec, stats);
        assert_eq!(store.stats().entries, 1);
        // Second capture individually fits its recorder limit check only
        // until the resident bytes are accounted; the offer must re-check.
        let (rec, stats) = record(64);
        store.offer(Workload::Nbody.scaled(1), None, rec, stats);
        let s = store.stats();
        assert_eq!((s.entries, s.over_budget), (1, 1));
    }
}
