//! Scenario-keyed trace store: record a workload's trace on first
//! request, replay it thereafter.
//!
//! The experiments re-run identical scenarios constantly — `compile`
//! under `NoCollector` at scale 1 is re-interpreted by e1, e3, e4
//! (twice), e8–e13 — even though the engine's bit-identity guarantees
//! make every one of those trace passes byte-equal. A [`TraceStore`]
//! memoizes the trace (as a compact [`RecordedTrace`]) and the
//! [`RunStats`] per `(Workload, scale, Option<CollectorSpec>)` scenario,
//! so the VM+GC execute once per scenario and every later pass is a
//! cheap decode.
//!
//! The store is a cache, never a correctness dependency: a byte budget
//! caps its footprint, and when recording a scenario would exceed the
//! budget the capture is dropped and that scenario simply keeps running
//! live. Over-budget is counted, not reported as an error.
//!
//! [`RunCtx`] bundles an [`EngineConfig`] with an optional store
//! reference; the engine drivers in [`crate::parallel`] take it to
//! decide, per scenario, between a live (recording) pass and a sharded
//! replay.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cachegc_telemetry::Telemetry;
use cachegc_trace::{RecordedTrace, Recorder};
use cachegc_vm::RunStats;
use cachegc_workloads::WorkloadInstance;

use crate::experiment::CollectorSpec;
use crate::sched::EngineConfig;
use crate::telemetry::Progress;

/// A store key: one unique VM execution scenario.
type ScenarioKey = (WorkloadInstance, Option<CollectorSpec>);

/// The stable human label of a scenario, used to key the per-scenario
/// gauges and to name scenarios in warnings and the run manifest:
/// `workload@scale`, with `+collector` appended for collected runs
/// (e.g. `compile@1+cheney/2.0M`).
pub fn scenario_label(instance: WorkloadInstance, spec: Option<CollectorSpec>) -> String {
    match spec {
        None => format!("{}@{}", instance.workload.name(), instance.scale),
        Some(spec) => format!(
            "{}@{}+{}",
            instance.workload.name(),
            instance.scale,
            spec.name()
        ),
    }
}

/// A captured scenario: the compact trace plus the [`RunStats`] the live
/// run produced, so replay consumers never need the VM.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The compact event stream.
    pub trace: RecordedTrace,
    /// Instruction/allocation/GC statistics of the recorded run.
    pub stats: RunStats,
}

/// Hit/miss/size accounting for a [`TraceStore`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found a recorded trace.
    pub hits: u64,
    /// Lookups that found nothing (each miss triggers one live VM run).
    pub misses: u64,
    /// Captures dropped because they would exceed the byte budget.
    pub over_budget: u64,
    /// Captures dropped because a concurrent capture of the same
    /// scenario was stored first. Every miss runs live and offers its
    /// recording back, so `misses == entries + over_budget + duplicates`
    /// once all offers have landed.
    pub duplicates: u64,
    /// Scenarios currently stored.
    pub entries: u64,
    /// Encoded bytes currently stored.
    pub bytes: u64,
    /// Events currently stored.
    pub events: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} entries ({:.1} MiB, {:.1} M events), {} over budget, {} duplicates",
            self.hits,
            self.misses,
            self.entries,
            self.bytes as f64 / (1 << 20) as f64,
            self.events as f64 / 1e6,
            self.over_budget,
            self.duplicates,
        )
    }
}

/// Per-scenario accounting: how one scenario used the store and what its
/// capture cost. Sorted by label in [`TraceStore::scenario_gauges`] and
/// the run manifest.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioGauges {
    /// Lookups of this scenario that replayed.
    pub hits: u64,
    /// Lookups of this scenario that ran live.
    pub misses: u64,
    /// Encoded bytes resident for this scenario (0 until stored).
    pub bytes: u64,
    /// Events resident for this scenario (0 until stored).
    pub events: u64,
    /// Wall time spent on recording passes for this scenario,
    /// nanoseconds — including captures the store went on to drop.
    pub record_ns: u64,
}

/// What [`TraceStore::offer`] did with a finished capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Kept: resident with this many encoded bytes and events.
    Stored {
        /// Encoded bytes now resident for the scenario.
        bytes: u64,
        /// Events now resident for the scenario.
        events: u64,
    },
    /// Dropped: the recorder overflowed its limit or keeping the capture
    /// would push the store past its byte budget.
    DroppedOverBudget,
    /// Dropped silently: a concurrent capture of the same scenario won.
    Duplicate,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<ScenarioKey, Arc<StoredTrace>>,
    stats: StoreStats,
    gauges: BTreeMap<String, ScenarioGauges>,
}

/// A thread-safe scenario-keyed cache of recorded traces.
///
/// Shared by reference ([`RunCtx::with_store`]) across every experiment
/// in a process, so one `golden_check` invocation executes each unique
/// scenario's VM exactly once.
#[derive(Debug)]
pub struct TraceStore {
    budget: u64,
    inner: Mutex<Inner>,
}

impl TraceStore {
    /// A store with no byte budget.
    pub fn unbounded() -> Self {
        Self::with_budget(u64::MAX)
    }

    /// A store that refuses captures once `bytes` total encoded bytes
    /// are resident (existing entries are never evicted; new scenarios
    /// fall back to live tracing).
    pub fn with_budget(bytes: u64) -> Self {
        TraceStore {
            budget: bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("trace store poisoned")
    }

    /// Look up a scenario, counting a hit or a miss. A miss is the
    /// caller's cue to run live (and, ideally, [`TraceStore::offer`] the
    /// recording back).
    pub fn lookup(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
    ) -> Option<Arc<StoredTrace>> {
        let mut inner = self.lock();
        let label = scenario_label(instance, spec);
        match inner.map.get(&(instance, spec)).cloned() {
            Some(hit) => {
                inner.stats.hits += 1;
                inner.gauges.entry(label).or_default().hits += 1;
                Some(hit)
            }
            None => {
                inner.stats.misses += 1;
                inner.gauges.entry(label).or_default().misses += 1;
                None
            }
        }
    }

    /// Non-counting peek: is this scenario recorded? (Used for worker
    /// budgeting decisions, which should not skew hit/miss stats.)
    pub fn contains(&self, instance: WorkloadInstance, spec: Option<CollectorSpec>) -> bool {
        self.lock().map.contains_key(&(instance, spec))
    }

    /// A recorder limited to the budget still remaining, so a capture
    /// that cannot possibly be kept frees its buffers mid-run instead of
    /// ballooning first.
    pub fn recorder(&self) -> Recorder {
        let resident = self.lock().stats.bytes;
        Recorder::with_limit(self.budget.saturating_sub(resident))
    }

    /// Offer a finished recording for a scenario, with the wall time the
    /// recording pass took (charged to the scenario's encode-time gauge
    /// whatever the outcome). Keeps it if the recorder did not overflow
    /// and the store stays within budget; otherwise counts it as
    /// over-budget and drops it. A concurrent duplicate (the scenario was
    /// stored since the caller's miss) is dropped silently, leaving
    /// `misses > entries` as the audit trail. The caller decides whether
    /// an [`OfferOutcome::DroppedOverBudget`] deserves a warning.
    pub fn offer(
        &self,
        instance: WorkloadInstance,
        spec: Option<CollectorSpec>,
        recorder: Recorder,
        stats: RunStats,
        record_wall: Duration,
    ) -> OfferOutcome {
        let record_ns = u64::try_from(record_wall.as_nanos()).unwrap_or(u64::MAX);
        let label = scenario_label(instance, spec);
        let Some(trace) = recorder.finish() else {
            let mut inner = self.lock();
            inner.stats.over_budget += 1;
            inner.gauges.entry(label).or_default().record_ns += record_ns;
            return OfferOutcome::DroppedOverBudget;
        };
        let mut inner = self.lock();
        inner.gauges.entry(label.clone()).or_default().record_ns += record_ns;
        if inner.stats.bytes.saturating_add(trace.bytes()) > self.budget {
            inner.stats.over_budget += 1;
            return OfferOutcome::DroppedOverBudget;
        }
        if inner.map.contains_key(&(instance, spec)) {
            inner.stats.duplicates += 1;
            return OfferOutcome::Duplicate;
        }
        let (bytes, events) = (trace.bytes(), trace.events());
        inner.stats.entries += 1;
        inner.stats.bytes += bytes;
        inner.stats.events += events;
        let gauge = inner.gauges.entry(label).or_default();
        gauge.bytes += bytes;
        gauge.events += events;
        inner
            .map
            .insert((instance, spec), Arc::new(StoredTrace { trace, stats }));
        OfferOutcome::Stored { bytes, events }
    }

    /// A snapshot of the accounting counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Per-scenario gauges, sorted by scenario label.
    pub fn scenario_gauges(&self) -> Vec<(String, ScenarioGauges)> {
        self.lock()
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// Everything an experiment driver needs to run a scenario: how to
/// parallelize ([`EngineConfig`]), optionally where to memoize traces,
/// and optionally where to report what happened ([`Telemetry`]) and that
/// it happened at all ([`Progress`]). `Copy`, so sweeps can derive
/// per-stage variants freely.
#[derive(Debug, Clone, Copy)]
pub struct RunCtx<'a> {
    /// Worker count / chunking / schedule for the trace pass.
    pub engine: EngineConfig,
    /// Scenario-keyed trace cache; `None` runs everything live.
    pub store: Option<&'a TraceStore>,
    /// Instrumentation registry the engine drivers attach probe shards
    /// to and report phases/counters into; `None` costs nothing.
    pub telemetry: Option<&'a Arc<Telemetry>>,
    /// Per-pass progress reporting (one stderr line per completed pass);
    /// `None` is silent.
    pub progress: Option<&'a Progress>,
}

impl<'a> RunCtx<'a> {
    /// A context with no trace store (always-live passes).
    pub fn new(engine: EngineConfig) -> RunCtx<'static> {
        RunCtx {
            engine,
            store: None,
            telemetry: None,
            progress: None,
        }
    }

    /// The sequential-oracle context: one worker, no store.
    pub fn sequential() -> RunCtx<'static> {
        RunCtx::new(EngineConfig::default())
    }

    /// Attach a trace store.
    pub fn with_store(self, store: &'a TraceStore) -> RunCtx<'a> {
        RunCtx {
            store: Some(store),
            ..self
        }
    }

    /// Attach a telemetry registry: every pass through the `_ctx` engine
    /// drivers attaches a probe shard on its thread and reports phases,
    /// counters, and engine observability into it.
    pub fn with_telemetry(self, telemetry: &'a Arc<Telemetry>) -> RunCtx<'a> {
        RunCtx {
            telemetry: Some(telemetry),
            ..self
        }
    }

    /// Attach a progress reporter, ticked once per completed pass.
    pub fn with_progress(self, progress: &'a Progress) -> RunCtx<'a> {
        RunCtx {
            progress: Some(progress),
            ..self
        }
    }

    /// Same store, different engine.
    pub fn with_engine(self, engine: EngineConfig) -> RunCtx<'a> {
        RunCtx { engine, ..self }
    }

    /// Same store, engine rebudgeted to `jobs` workers.
    pub fn with_jobs(self, jobs: usize) -> RunCtx<'a> {
        let mut engine = self.engine;
        engine.jobs = jobs.max(1);
        RunCtx { engine, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::{Access, Context, TraceSink};
    use cachegc_workloads::Workload;

    fn record(n: u32) -> (Recorder, RunStats) {
        let mut rec = Recorder::new();
        for i in 0..n {
            rec.access(Access::read(0x1000 + 4 * i, Context::Mutator));
        }
        (rec, RunStats::default())
    }

    #[test]
    fn lookup_miss_then_offer_then_hit() {
        let store = TraceStore::unbounded();
        let w = Workload::Rewrite.scaled(1);
        assert!(store.lookup(w, None).is_none());
        let (rec, stats) = record(100);
        let outcome = store.offer(w, None, rec, stats, Duration::from_micros(3));
        let OfferOutcome::Stored { bytes, events } = outcome else {
            panic!("expected Stored, got {outcome:?}");
        };
        assert_eq!(events, 100);
        let hit = store.lookup(w, None).expect("stored");
        assert_eq!(hit.trace.events(), 100);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.over_budget), (1, 1, 1, 0));
        assert_eq!(s.events, 100);
        assert!(s.bytes > 0 && s.bytes == bytes);
        // The per-scenario gauge tracked both lookups and the capture.
        let gauges = store.scenario_gauges();
        assert_eq!(gauges.len(), 1);
        let (label, g) = &gauges[0];
        assert_eq!(label, "rewrite@1");
        assert_eq!((g.hits, g.misses, g.bytes, g.events), (1, 1, bytes, 100));
        assert_eq!(g.record_ns, 3_000);
    }

    #[test]
    fn keys_distinguish_scale_and_spec() {
        let store = TraceStore::unbounded();
        let w = Workload::Compile;
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 2 << 20,
        };
        let (rec, stats) = record(10);
        store.offer(w.scaled(1), Some(spec), rec, stats, Duration::ZERO);
        assert!(store.contains(w.scaled(1), Some(spec)));
        assert!(!store.contains(w.scaled(2), Some(spec)));
        assert!(!store.contains(w.scaled(1), None));
        // `contains` does not touch hit/miss accounting.
        assert_eq!(store.stats().hits + store.stats().misses, 0);
    }

    #[test]
    fn budget_overflow_falls_back_without_error() {
        let store = TraceStore::with_budget(4);
        let w = Workload::Prove.scaled(1);
        // The store-provided recorder carries the remaining budget and
        // overflows mid-run.
        let mut rec = store.recorder();
        for i in 0..1000 {
            rec.access(Access::read(i << 16, Context::Mutator));
        }
        assert!(rec.overflowed());
        let outcome = store.offer(w, None, rec, RunStats::default(), Duration::from_nanos(7));
        assert_eq!(outcome, OfferOutcome::DroppedOverBudget);
        let s = store.stats();
        assert_eq!((s.entries, s.over_budget), (0, 1));
        assert!(store.lookup(w, None).is_none(), "nothing was stored");
        // Encode time is charged even for a dropped capture.
        let (_, g) = &store.scenario_gauges()[0];
        assert_eq!((g.record_ns, g.bytes), (7, 0));
    }

    #[test]
    fn offer_rejects_when_resident_bytes_fill_budget() {
        let (probe, _) = record(64);
        let probe_bytes = probe.bytes();
        let store = TraceStore::with_budget(probe_bytes + probe_bytes / 2);
        let (rec, stats) = record(64);
        store.offer(
            Workload::Rewrite.scaled(1),
            None,
            rec,
            stats,
            Duration::ZERO,
        );
        assert_eq!(store.stats().entries, 1);
        // Second capture individually fits its recorder limit check only
        // until the resident bytes are accounted; the offer must re-check.
        let (rec, stats) = record(64);
        let outcome = store.offer(Workload::Nbody.scaled(1), None, rec, stats, Duration::ZERO);
        assert_eq!(outcome, OfferOutcome::DroppedOverBudget);
        let s = store.stats();
        assert_eq!((s.entries, s.over_budget), (1, 1));
    }

    #[test]
    fn duplicate_offer_is_distinguished_from_a_drop() {
        let store = TraceStore::unbounded();
        let w = Workload::Rewrite.scaled(1);
        let (rec, stats) = record(8);
        assert!(matches!(
            store.offer(w, None, rec, stats, Duration::ZERO),
            OfferOutcome::Stored { .. }
        ));
        let (rec, stats) = record(8);
        assert_eq!(
            store.offer(w, None, rec, stats, Duration::ZERO),
            OfferOutcome::Duplicate
        );
        let s = store.stats();
        assert_eq!((s.entries, s.over_budget), (1, 0));
    }

    #[test]
    fn capture_landing_exactly_on_the_remaining_budget_is_stored() {
        // Measure the capture size, then set the budget to exactly that:
        // the boundary is inclusive, both at the recorder limit and at
        // the offer's resident-bytes re-check.
        let (probe, _) = record(64);
        let budget = probe.bytes();
        let store = TraceStore::with_budget(budget);
        let mut rec = store.recorder();
        for i in 0..64u32 {
            rec.access(Access::read(0x1000 + 4 * i, Context::Mutator));
        }
        assert!(!rec.overflowed(), "exact-limit recording must not overflow");
        let outcome = store.offer(
            Workload::Rewrite.scaled(1),
            None,
            rec,
            RunStats::default(),
            Duration::ZERO,
        );
        let OfferOutcome::Stored { bytes, .. } = outcome else {
            panic!("exact-budget capture must be Stored, got {outcome:?}");
        };
        assert_eq!(bytes, budget, "stored capture fills the budget exactly");
        // The budget is now exhausted: one more byte of capture drops.
        let (rec, stats) = record(1);
        assert_eq!(
            store.offer(Workload::Nbody.scaled(1), None, rec, stats, Duration::ZERO),
            OfferOutcome::DroppedOverBudget
        );
    }

    #[test]
    fn concurrent_offers_balance_misses_against_outcomes() {
        // Many threads race the miss -> record -> offer protocol on a
        // handful of scenarios; whatever interleaving happens, the offer
        // accounting must balance: misses == entries + over_budget +
        // duplicates, and exactly one capture per scenario is resident.
        let store = TraceStore::unbounded();
        let scenarios = [
            Workload::Rewrite.scaled(1),
            Workload::Nbody.scaled(1),
            Workload::Compile.scaled(1),
        ];
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for w in scenarios {
                        if store.lookup(w, None).is_none() {
                            let (rec, stats) = record(32);
                            store.offer(w, None, rec, stats, Duration::ZERO);
                        }
                    }
                });
            }
        });
        let st = store.stats();
        assert_eq!(
            st.misses,
            st.entries + st.over_budget + st.duplicates,
            "offer outcomes must account for every miss: {st}"
        );
        assert_eq!(st.entries, scenarios.len() as u64);
        assert_eq!(st.over_budget, 0);
        for w in scenarios {
            assert!(store.contains(w, None));
        }
    }

    #[test]
    fn scenario_labels_name_collector_and_scale() {
        let w = Workload::Compile.scaled(3);
        assert_eq!(scenario_label(w, None), "compile@3");
        let spec = CollectorSpec::Cheney {
            semispace_bytes: 2 << 20,
        };
        assert_eq!(
            scenario_label(w, Some(spec)),
            format!("compile@3+{}", spec.name())
        );
    }
}
