//! The reporting layer over [`cachegc_telemetry`]: run manifests and
//! progress lines.
//!
//! The instrumentation primitives (counters, phase timers, engine
//! observability) live in the dependency-root `cachegc-telemetry` crate
//! so the GC, VM, and trace engine can emit into them; this module is
//! the downstream half that knows about experiments and trace stores. It
//! re-exports the primitives, so `cachegc_core::telemetry::Telemetry` is
//! the one path experiment code needs, and adds:
//!
//! * [`Manifest`] — a versioned (`cachegc-manifest-v5`), machine-readable
//!   record of one experiment run: configuration, merged counters, phase
//!   timings with pause histograms, engine/worker totals, and trace-store
//!   accounting. Serialized by [`Manifest::to_json`] (hand-rolled, like
//!   every JSON writer in this workspace) and checked by
//!   [`validate_manifest`], which `golden_check --manifest` calls.
//! * [`Progress`] — a thread-safe per-pass progress reporter the `_ctx`
//!   engine drivers tick; one line per completed pass, to stderr (or an
//!   injected writer in tests), never stdout.
//! * [`chrome_trace_json`] — exports a snapshot's captured span records
//!   (packet execute, steal, idle, backpressure, spill load, GC phases)
//!   as Chrome trace-event JSON, loadable in Perfetto; checked by
//!   [`validate_chrome_trace`], which `golden_check --trace` calls.

use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use cachegc_telemetry::{
    probe, Counter, EngineReport, EngineTotals, PauseHist, PhaseStats, ShardGuard, Snapshot,
    SpanRecord, Telemetry, WorkerStats, WorkerTotals, BUCKETS,
};

use crate::json::{self, Json};
use crate::store::{ScenarioGauges, StoreStats, TraceStore};

/// The manifest schema identifier this crate writes and validates.
///
/// v5 added the timeline/span counters (`timeline_windows`,
/// `timeline_collections`, `trace_spans`, `trace_spans_dropped`).
pub const MANIFEST_SCHEMA: &str = "cachegc-manifest-v5";

// ---------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------

/// Per-pass progress reporting: one line per completed engine pass,
/// written to stderr by default so stdout stays byte-identical with and
/// without it. Ticked by the `_ctx` drivers when a [`crate::RunCtx`]
/// carries one.
pub struct Progress {
    experiment: String,
    total: usize,
    done: AtomicUsize,
    start: Instant,
    out: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Progress")
            .field("experiment", &self.experiment)
            .field("total", &self.total)
            .field("done", &self.done.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Progress {
    /// A reporter writing to stderr, expecting `total` passes.
    pub fn stderr(experiment: &str, total: usize) -> Progress {
        Progress::to_writer(experiment, total, Box::new(std::io::stderr()))
    }

    /// A reporter writing to an arbitrary sink (test injection point).
    pub fn to_writer(experiment: &str, total: usize, out: Box<dyn Write + Send>) -> Progress {
        Progress {
            experiment: experiment.to_string(),
            total,
            done: AtomicUsize::new(0),
            start: Instant::now(),
            out: Mutex::new(out),
        }
    }

    /// Passes completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Record one completed pass and emit its line. Write failures are
    /// swallowed: progress is a side channel, never worth killing a
    /// sweep over.
    pub fn tick(&self, store: Option<&TraceStore>) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = self.start.elapsed().as_secs_f64();
        let line = format!(
            "[{}] pass {}/{} done, {:.1}s elapsed",
            self.experiment, done, self.total, elapsed
        );
        self.emit(line, store);
    }

    /// As [`tick`](Progress::tick), with the pass's measured event count
    /// and wall time, so the line carries a live events/s rate. The
    /// `_ctx` drivers use this form; hand-tickers without a measured
    /// pass keep `tick`.
    pub fn pass(&self, store: Option<&TraceStore>, events: u64, pass_secs: f64) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = self.start.elapsed().as_secs_f64();
        let line = format!(
            "[{}] pass {}/{} done in {:.2}s, {} events/s, {:.1}s elapsed",
            self.experiment,
            done,
            self.total,
            pass_secs,
            event_rate(events, pass_secs),
            elapsed
        );
        self.emit(line, store);
    }

    fn emit(&self, mut line: String, store: Option<&TraceStore>) {
        if let Some(store) = store {
            let s = store.stats();
            line.push_str(&format!(", store: {} hits, {} misses", s.hits, s.misses));
        }
        let mut out = self.out.lock().expect("progress writer poisoned");
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Human-scale events-per-second figure (`"12.4M"`, `"980k"`, `"-"` when
/// the pass was too fast to time).
fn event_rate(events: u64, secs: f64) -> String {
    if secs <= 0.0 {
        return "-".into();
    }
    let rate = events as f64 / secs;
    if rate >= 1e9 {
        format!("{:.1}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

/// The run configuration block of a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestConfig {
    /// Experiment name (`e4_write_policy`), also keys the output file.
    pub experiment: String,
    /// Workload scale the sweep ran at.
    pub scale: u32,
    /// Effective worker budget after clamping to the machine's available
    /// parallelism.
    pub jobs: usize,
    /// Worker budget as requested on the command line (`--jobs`), before
    /// clamping. Differs from `jobs` exactly when the request exceeded
    /// the machine.
    pub jobs_requested: usize,
    /// Engine schedule name.
    pub schedule: String,
    /// Human description of the trace-cache setting (`off`, or the byte
    /// budget).
    pub trace_cache: String,
}

/// Trace-store accounting in a [`Manifest`]: the global counters plus
/// the per-scenario gauges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestStore {
    /// Global hit/miss/size counters.
    pub stats: StoreStats,
    /// Per-scenario gauges, sorted by label.
    pub scenarios: Vec<(String, ScenarioGauges)>,
}

/// A versioned, machine-readable record of one experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Run configuration.
    pub config: ManifestConfig,
    /// Merged counters, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Merged phase timings, sorted by phase name.
    pub phases: Vec<(String, PhaseStats)>,
    /// Aggregated engine observability.
    pub engine: EngineTotals,
    /// Trace-store accounting, when a store backed the run.
    pub store: Option<ManifestStore>,
}

impl Manifest {
    /// Assemble a manifest from a telemetry snapshot and (optionally)
    /// the run's trace store.
    pub fn gather(
        config: ManifestConfig,
        snapshot: &Snapshot,
        store: Option<&TraceStore>,
    ) -> Manifest {
        Manifest {
            config,
            counters: snapshot.counters().map(|(c, v)| (c.name(), v)).collect(),
            phases: snapshot
                .phases
                .iter()
                .map(|(name, stats)| (name.to_string(), stats.clone()))
                .collect(),
            engine: snapshot.engine.clone(),
            store: store.map(|s| ManifestStore {
                stats: s.stats(),
                scenarios: s.scenario_gauges(),
            }),
        }
    }

    /// Serialize as pretty-printed JSON (schema [`MANIFEST_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open('{');
        w.field("schema", &json_str(MANIFEST_SCHEMA));
        w.field("experiment", &json_str(&self.config.experiment));
        w.key("config");
        w.open('{');
        w.field("scale", &self.config.scale.to_string());
        w.field("jobs", &self.config.jobs.to_string());
        w.field("jobs_requested", &self.config.jobs_requested.to_string());
        w.field("schedule", &json_str(&self.config.schedule));
        w.field("trace_cache", &json_str(&self.config.trace_cache));
        w.close('}');
        w.key("counters");
        w.open('{');
        for &(name, value) in &self.counters {
            w.field(name, &value.to_string());
        }
        w.close('}');
        w.key("phases");
        w.open('{');
        for (name, stats) in &self.phases {
            w.key(name);
            w.open('{');
            w.field("count", &stats.count.to_string());
            w.field("wall_ns", &stats.wall_ns.to_string());
            w.field("cpu_ns", &stats.cpu_ns.to_string());
            w.key("hist");
            w.open('{');
            for (log2, count) in stats.hist.sparse() {
                w.field(&log2.to_string(), &count.to_string());
            }
            w.close('}');
            w.close('}');
        }
        w.close('}');
        w.key("engine");
        w.open('{');
        w.field("runs", &self.engine.runs.to_string());
        w.field(
            "chunks_published",
            &self.engine.chunks_published.to_string(),
        );
        w.field(
            "events_published",
            &self.engine.events_published.to_string(),
        );
        w.field("backpressure_ns", &self.engine.backpressure_ns.to_string());
        w.field("queue_depth_hwm", &self.engine.queue_depth_hwm.to_string());
        w.key("by_schedule");
        w.open('{');
        for (schedule, runs) in &self.engine.by_schedule {
            w.field(schedule, &runs.to_string());
        }
        w.close('}');
        w.key("workers");
        w.open('[');
        for worker in &self.engine.workers {
            w.open('{');
            w.field("runs", &worker.runs.to_string());
            w.field("events", &worker.stats.events.to_string());
            w.field("chunks", &worker.stats.chunks.to_string());
            w.field("steals", &worker.stats.steals.to_string());
            w.field("idle_ns", &worker.stats.idle_ns.to_string());
            w.close('}');
        }
        w.close(']');
        w.close('}');
        w.key("store");
        match &self.store {
            None => w.raw("null"),
            Some(store) => {
                w.open('{');
                w.field("hits", &store.stats.hits.to_string());
                w.field("misses", &store.stats.misses.to_string());
                w.field("coalesced", &store.stats.coalesced.to_string());
                w.field("over_budget", &store.stats.over_budget.to_string());
                w.field("duplicates", &store.stats.duplicates.to_string());
                w.field("entries", &store.stats.entries.to_string());
                w.field("evictions", &store.stats.evictions.to_string());
                w.field("bytes_evicted", &store.stats.bytes_evicted.to_string());
                w.field("spills", &store.stats.spills.to_string());
                w.field("spill_loads", &store.stats.spill_loads.to_string());
                w.field("spill_rejects", &store.stats.spill_rejects.to_string());
                w.field("bytes", &store.stats.bytes.to_string());
                w.field("mapped_bytes", &store.stats.mapped_bytes.to_string());
                w.field("reserved", &store.stats.reserved.to_string());
                w.field("peak_bytes", &store.stats.peak_bytes.to_string());
                w.field("events", &store.stats.events.to_string());
                w.key("scenarios");
                w.open('{');
                for (label, g) in &store.scenarios {
                    w.key(label);
                    w.open('{');
                    w.field("hits", &g.hits.to_string());
                    w.field("misses", &g.misses.to_string());
                    w.field("evictions", &g.evictions.to_string());
                    w.field("spill_loads", &g.spill_loads.to_string());
                    w.field("bytes", &g.bytes.to_string());
                    w.field("events", &g.events.to_string());
                    w.field("record_ns", &g.record_ns.to_string());
                    w.close('}');
                }
                w.close('}');
                w.close('}');
            }
        }
        w.close('}');
        w.finish()
    }

    /// Write the manifest to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Any I/O error from directory creation or the write.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A tiny indenting JSON emitter: the manifest has enough nesting that
/// raw `format!` strings (the [`crate::report`] idiom) stop being
/// readable, but the output stays a plain `String`.
struct JsonWriter {
    out: String,
    indent: usize,
    need_comma: bool,
}

impl JsonWriter {
    fn new() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            indent: 0,
            need_comma: false,
        }
    }

    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn pre_value(&mut self) {
        if self.need_comma {
            self.out.push(',');
        }
        if self.indent > 0 {
            self.newline();
        }
    }

    fn open(&mut self, bracket: char) {
        // After a `key(...)` the cursor sits right past `": "`; only a
        // bare container (array element) needs comma/newline handling.
        if !self.out.ends_with(": ") {
            self.pre_value();
        }
        self.out.push(bracket);
        self.indent += 1;
        self.need_comma = false;
    }

    fn close(&mut self, bracket: char) {
        self.indent -= 1;
        if self.need_comma {
            self.newline();
        }
        self.out.push(bracket);
        self.need_comma = true;
    }

    fn key(&mut self, name: &str) {
        self.pre_value();
        self.out.push_str(&json_str(name));
        self.out.push_str(": ");
        self.need_comma = false;
    }

    fn raw(&mut self, value: &str) {
        self.out.push_str(value);
        self.need_comma = true;
    }

    fn field(&mut self, name: &str, value: &str) {
        self.key(name);
        self.raw(value);
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

/// Validate a serialized manifest: schema identifier, required
/// structure, non-negative integer counters, and the cross-field
/// invariants the instrumentation guarantees (each phase's histogram
/// sums to its span count; the GC pause-phase counts equal the GC
/// collection counters; per-schedule engine runs sum to total runs).
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_manifest(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let root = doc.as_obj().ok_or("manifest: root is not an object")?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("manifest: missing schema string")?;
    if schema != MANIFEST_SCHEMA {
        return Err(format!(
            "manifest: schema '{schema}' is not '{MANIFEST_SCHEMA}'"
        ));
    }
    let experiment = root
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("manifest: missing experiment string")?;
    if experiment.is_empty() {
        return Err("manifest: experiment name is empty".into());
    }
    let config = root.get("config").ok_or("manifest: missing config")?;
    for key in ["scale", "jobs", "jobs_requested"] {
        config
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("manifest: config.{key} is not a non-negative integer"))?;
    }
    for key in ["schedule", "trace_cache"] {
        config
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("manifest: config.{key} is not a string"))?;
    }

    let counters = root
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("manifest: missing counters object")?;
    for c in Counter::ALL {
        counters
            .get(c.name())
            .and_then(Json::as_u64)
            .ok_or_else(|| {
                format!(
                    "manifest: counter '{}' missing or not a non-negative integer",
                    c.name()
                )
            })?;
    }

    let phases = root
        .get("phases")
        .and_then(Json::as_obj)
        .ok_or("manifest: missing phases object")?;
    for (name, phase) in phases {
        let count = phase
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("manifest: phase '{name}' has no count"))?;
        for key in ["wall_ns", "cpu_ns"] {
            phase.get(key).and_then(Json::as_u64).ok_or_else(|| {
                format!("manifest: phase '{name}'.{key} is not a non-negative integer")
            })?;
        }
        let hist = phase
            .get("hist")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("manifest: phase '{name}' has no hist"))?;
        let mut sum = 0u64;
        for (bucket, v) in hist {
            let b: usize = bucket
                .parse()
                .map_err(|_| format!("manifest: phase '{name}' hist bucket '{bucket}'"))?;
            if b >= BUCKETS {
                return Err(format!(
                    "manifest: phase '{name}' hist bucket {b} out of range"
                ));
            }
            sum += v.as_u64().ok_or_else(|| {
                format!("manifest: phase '{name}' hist value for bucket {bucket}")
            })?;
        }
        if sum != count {
            return Err(format!(
                "manifest: phase '{name}' hist sums to {sum}, count is {count}"
            ));
        }
    }

    // The GC probes count and time each pause at the same site, so the
    // phase counts and the collection counters must agree exactly.
    for (phase_name, counter) in [
        ("gc_minor", Counter::GcMinorCollections),
        ("gc_major", Counter::GcMajorCollections),
    ] {
        let collections = counters.get(counter.name()).and_then(Json::as_u64).unwrap();
        let spans = phases
            .get(phase_name)
            .and_then(|p| p.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if collections != spans {
            return Err(format!(
                "manifest: {} = {collections} but phase '{phase_name}' recorded {spans} pauses",
                counter.name()
            ));
        }
    }

    let engine = root.get("engine").ok_or("manifest: missing engine")?;
    for key in [
        "runs",
        "chunks_published",
        "events_published",
        "backpressure_ns",
        "queue_depth_hwm",
    ] {
        engine
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("manifest: engine.{key} is not a non-negative integer"))?;
    }
    let runs = engine.get("runs").and_then(Json::as_u64).unwrap();
    let by_schedule = engine
        .get("by_schedule")
        .and_then(Json::as_obj)
        .ok_or("manifest: missing engine.by_schedule")?;
    let schedule_runs: u64 = by_schedule.values().map(|v| v.as_u64().unwrap_or(0)).sum();
    if schedule_runs != runs {
        return Err(format!(
            "manifest: engine runs {runs} != per-schedule sum {schedule_runs}"
        ));
    }
    let workers = engine
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or("manifest: missing engine.workers")?;
    for (i, worker) in workers.iter().enumerate() {
        for key in ["runs", "events", "chunks", "steals", "idle_ns"] {
            worker.get(key).and_then(Json::as_u64).ok_or_else(|| {
                format!("manifest: engine.workers[{i}].{key} is not a non-negative integer")
            })?;
        }
    }

    match root.get("store") {
        None => return Err("manifest: missing store field".into()),
        Some(Json::Null) => {}
        Some(store) => {
            let field = |key: &str| {
                store
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("manifest: store.{key} is not a non-negative integer"))
            };
            for key in [
                "hits",
                "coalesced",
                "spills",
                "spill_rejects",
                "bytes",
                "mapped_bytes",
                "reserved",
                "peak_bytes",
                "events",
            ] {
                field(key)?;
            }
            // Offer accounting must balance: every entry now resident (or
            // since evicted) got there either from a live run — a miss
            // whose offer stored it, was dropped over budget, or lost a
            // duplicate race — or by re-materializing a spill file.
            let arrivals = field("misses")? + field("spill_loads")?;
            let accounted = field("entries")?
                + field("evictions")?
                + field("over_budget")?
                + field("duplicates")?;
            if arrivals != accounted {
                return Err(format!(
                    "manifest: store offers unbalanced: misses + spill_loads = {arrivals} but \
                     entries + evictions + over_budget + duplicates = {accounted}"
                ));
            }
            let scenarios = store
                .get("scenarios")
                .and_then(Json::as_obj)
                .ok_or("manifest: missing store.scenarios")?;
            for (label, g) in scenarios {
                for key in [
                    "hits",
                    "misses",
                    "evictions",
                    "spill_loads",
                    "bytes",
                    "events",
                    "record_ns",
                ] {
                    g.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("manifest: store scenario '{label}'.{key}"))?;
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------

/// Serialize a snapshot's captured span records as Chrome trace-event
/// JSON (the "JSON array format"), loadable in Perfetto and
/// `chrome://tracing`.
///
/// Each [`SpanRecord`] becomes one complete (`"ph": "X"`) event with
/// microsecond timestamps relative to the telemetry epoch; thread names
/// are emitted as `"ph": "M"` metadata records so worker rows are
/// labeled. Snapshots without spans (registry not built with
/// [`Telemetry::with_spans`]) export an empty-but-valid trace.
pub fn chrome_trace_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    push(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"cachegc\"}}"
            .to_string(),
        &mut out,
        &mut first,
    );
    for (tid, name) in snapshot.threads.iter().enumerate() {
        push(
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": {}}}}}",
                json_str(name)
            ),
            &mut out,
            &mut first,
        );
    }
    for span in &snapshot.spans {
        push(
            format!(
                "{{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \
                 \"ts\": {:.3}, \"dur\": {:.3}}}",
                json_str(span.name),
                json_str(span.cat),
                span.tid,
                span.start_ns as f64 / 1e3,
                span.dur_ns as f64 / 1e3,
            ),
            &mut out,
            &mut first,
        );
    }
    out.push_str("\n]\n");
    out
}

/// What [`validate_chrome_trace`] found in a well-formed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Complete (`"ph": "X"`) span events.
    pub spans: usize,
    /// Named threads whose name starts with `worker-` (crew rows).
    pub workers: usize,
    /// All named threads.
    pub threads: usize,
}

/// Validate Chrome trace-event JSON produced by [`chrome_trace_json`]:
/// a JSON array whose `"X"` events carry name/ts/dur/tid and whose
/// metadata names every referenced thread row.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let doc = json::parse(text)?;
    let events = doc.as_arr().ok_or("trace: root is not an array")?;
    let mut named = std::collections::BTreeMap::new();
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace: event {i} has no ph"))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace: event {i} has no name"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("trace: event {i} has no tid"))?;
        match ph {
            "M" => {
                if name == "thread_name" {
                    let thread = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("trace: event {i} names no thread"))?;
                    named.insert(tid, thread.to_string());
                }
            }
            "X" => {
                spans += 1;
                for key in ["ts", "dur"] {
                    let v = ev
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("trace: event {i}.{key} is not a number"))?;
                    if v < 0.0 {
                        return Err(format!("trace: event {i}.{key} is negative"));
                    }
                }
                if !named.contains_key(&tid) {
                    return Err(format!("trace: event {i} on unnamed thread row {tid}"));
                }
            }
            other => return Err(format!("trace: event {i} has unsupported ph '{other}'")),
        }
    }
    Ok(ChromeTraceSummary {
        spans,
        workers: named.values().filter(|n| n.starts_with("worker-")).count(),
        threads: named.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_config() -> ManifestConfig {
        ManifestConfig {
            experiment: "e4_write_policy".into(),
            scale: 1,
            jobs: 2,
            jobs_requested: 2,
            schedule: "work-stealing".into(),
            trace_cache: "4294967296".into(),
        }
    }

    #[test]
    fn empty_run_manifest_round_trips_validation() {
        let telemetry = Arc::new(Telemetry::new());
        let m = Manifest::gather(sample_config(), &telemetry.snapshot(), None);
        let json = m.to_json();
        validate_manifest(&json).unwrap();
        assert!(json.contains("\"schema\": \"cachegc-manifest-v5\""));
        assert!(json.contains("\"jobs_requested\": 2"));
        assert!(json.contains("\"store\": null"));
    }

    #[test]
    fn populated_manifest_validates_and_carries_the_data() {
        let telemetry = Arc::new(Telemetry::new());
        {
            let _guard = telemetry.attach();
            probe::count(Counter::VmRuns, 2);
            probe::count(Counter::GcMinorCollections, 3);
            for _ in 0..3 {
                drop(probe::phase("gc_minor"));
            }
            drop(probe::phase_cpu("vm_execute"));
        }
        telemetry.record_engine(&EngineReport {
            schedule: "work-stealing",
            jobs: 2,
            sinks: 4,
            chunks_published: 8,
            events_published: 640,
            backpressure_ns: 5,
            queue_depth_hwm: 3,
            workers: vec![WorkerStats::default(); 2],
        });
        let store = TraceStore::unbounded();
        let w = cachegc_workloads::Workload::Rewrite.scaled(1);
        // A full miss -> live run -> offer cycle, so the store's offer
        // accounting balances (validation checks the invariant).
        store.lookup(w, None);
        use cachegc_trace::TraceSink as _;
        let mut rec = cachegc_trace::Recorder::new();
        rec.access(cachegc_trace::Access::read(
            0x1000,
            cachegc_trace::Context::Mutator,
        ));
        store.offer(
            w,
            None,
            rec,
            cachegc_vm::RunStats::default(),
            std::time::Duration::ZERO,
        );
        let m = Manifest::gather(sample_config(), &telemetry.snapshot(), Some(&store));
        let json = m.to_json();
        validate_manifest(&json).unwrap();
        assert!(json.contains("\"vm_runs\": 2"));
        assert!(json.contains("\"gc_minor\""));
        assert!(json.contains("\"events_published\": 640"));
        assert!(json.contains("\"rewrite@1\""));
        assert!(json.contains("\"duplicates\": 0"));
        // An unbalanced store (a miss whose offer never landed) is
        // rejected.
        let bad = json.replace("\"misses\": 1", "\"misses\": 2");
        assert!(validate_manifest(&bad).unwrap_err().contains("unbalanced"));
    }

    #[test]
    fn validation_rejects_corruption() {
        let telemetry = Arc::new(Telemetry::new());
        {
            let _guard = telemetry.attach();
            probe::count(Counter::GcMinorCollections, 1);
        }
        let m = Manifest::gather(sample_config(), &telemetry.snapshot(), None);
        let good = m.to_json();
        // A collection counter with no matching pause phase.
        let err = validate_manifest(&good).unwrap_err();
        assert!(err.contains("gc_minor"), "{err}");
        // Wrong schema.
        let bad = good.replace("cachegc-manifest-v5", "cachegc-manifest-v0");
        assert!(validate_manifest(&bad).unwrap_err().contains("schema"));
        // Not JSON at all.
        assert!(validate_manifest("{nope").is_err());
        // A negative counter.
        let m2 = Manifest::gather(
            sample_config(),
            &Arc::new(Telemetry::new()).snapshot(),
            None,
        );
        let bad = m2.to_json().replace("\"vm_runs\": 0", "\"vm_runs\": -1");
        assert!(validate_manifest(&bad).unwrap_err().contains("vm_runs"));
        // A missing counter key.
        let bad = m2.to_json().replace("\"vm_runs\": 0,", "");
        assert!(validate_manifest(&bad).unwrap_err().contains("vm_runs"));
    }

    #[test]
    fn progress_lines_go_to_the_injected_writer() {
        use std::io;
        use std::sync::Mutex as StdMutex;

        #[derive(Clone, Default)]
        struct Buf(Arc<StdMutex<Vec<u8>>>);
        impl io::Write for Buf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let progress = Progress::to_writer("e1_cache_grid", 3, Box::new(buf.clone()));
        let store = TraceStore::unbounded();
        progress.tick(None);
        progress.tick(Some(&store));
        assert_eq!(progress.completed(), 2);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("[e1_cache_grid] pass 1/3 done"));
        assert!(!lines[0].contains("store:"), "no store, no store column");
        assert!(lines[1].starts_with("[e1_cache_grid] pass 2/3 done"));
        assert!(lines[1].contains("store: 0 hits, 0 misses"));
    }

    #[test]
    fn pass_lines_carry_rate_and_pass_time() {
        use std::io;
        use std::sync::Mutex as StdMutex;

        #[derive(Clone, Default)]
        struct Buf(Arc<StdMutex<Vec<u8>>>);
        impl io::Write for Buf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let progress = Progress::to_writer("e4_write_policy", 2, Box::new(buf.clone()));
        progress.pass(None, 5_200_000, 0.5);
        progress.pass(None, 100, 0.0);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].starts_with("[e4_write_policy] pass 1/2 done in 0.50s, 10.4M events/s"),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("s elapsed"));
        // An untimeable pass degrades to a dash, never a divide-by-zero.
        assert!(lines[1].contains(" - events/s"), "{}", lines[1]);
    }

    #[test]
    fn event_rate_scales_units() {
        assert_eq!(event_rate(2_500_000_000, 1.0), "2.5G");
        assert_eq!(event_rate(1_500, 1.0), "1.5k");
        assert_eq!(event_rate(999, 1.0), "999");
        assert_eq!(event_rate(1, 0.0), "-");
    }

    #[test]
    fn chrome_trace_round_trips_validation() {
        let t = Arc::new(Telemetry::with_spans());
        std::thread::scope(|s| {
            for i in 0..2 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let _g = t.attach_named(&format!("worker-{i}"));
                    let t0 = Instant::now();
                    std::hint::black_box((0..10_000u64).sum::<u64>());
                    probe::span("vm_execute", "packet", t0);
                    probe::instant("steal", "sched");
                });
            }
        });
        {
            let _g = t.attach();
            drop(probe::phase("sink_drain"));
        }
        let trace = chrome_trace_json(&t.snapshot());
        let summary = validate_chrome_trace(&trace).unwrap();
        assert_eq!(summary.spans, 5);
        assert_eq!(summary.workers, 2);
        assert_eq!(summary.threads, 3);
        assert!(trace.contains("\"thread_name\""));

        // An empty snapshot still exports a valid (if boring) trace.
        let empty = chrome_trace_json(&Arc::new(Telemetry::new()).snapshot());
        assert_eq!(validate_chrome_trace(&empty).unwrap().spans, 0);

        // Corruption is rejected.
        assert!(validate_chrome_trace("{}").is_err());
        let bad = trace.replace("\"ph\": \"X\"", "\"ph\": \"Q\"");
        assert!(validate_chrome_trace(&bad).is_err());
    }
}
