//! Timeline recording and the `cachegc-timeline-v1` JSONL export.
//!
//! The [`cachegc_analysis::Timeline`] instrument samples one trace pass;
//! this module is the harness half: a [`TimelineRecorder`] hands fresh
//! taps to every driver path (sequential, packet crew, record/replay,
//! grid kernel), collects the finished per-scenario reports, and emits
//! them as a versioned JSONL stream — one self-describing JSON object per
//! line, so multi-gigabyte timelines stream through line-oriented tools.
//! [`validate_timeline`] re-parses a stream and re-checks the exact
//! window-sum reconstruction invariant, which `golden_check --timeline`
//! calls from CI.

use std::path::Path;
use std::sync::Mutex;

use cachegc_analysis::{Timeline, TimelineReport, DEFAULT_WINDOW_EVENTS};
use cachegc_sim::{CacheConfig, CacheTotals};
use cachegc_telemetry::{probe, Counter};
use cachegc_trace::Context;

use crate::json::{self, Json};
use crate::telemetry::json_str;

/// The timeline schema identifier this module writes and validates.
pub const TIMELINE_SCHEMA: &str = "cachegc-timeline-v1";

/// What every timeline tap samples: one cache geometry and a window
/// length. All taps of one recorder share the spec, so runs are
/// comparable across scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSpec {
    /// Geometry of the sampled cache.
    pub cache: CacheConfig,
    /// Maximum events per sample window.
    pub window_events: u64,
}

impl Default for TimelineSpec {
    /// The paper's workhorse geometry (64 KB, 32-byte blocks,
    /// direct-mapped write-validate) sampled in 1 M-event windows.
    fn default() -> TimelineSpec {
        TimelineSpec {
            cache: CacheConfig::direct_mapped(64 * 1024, 32),
            window_events: DEFAULT_WINDOW_EVENTS,
        }
    }
}

/// One committed timeline: the scenario label and its finished report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineRun {
    /// Scenario label (`workload@scale[+collector]`, or a driver tag).
    pub label: String,
    /// The finished windowed report.
    pub report: TimelineReport,
}

/// Collects per-pass timeline reports across a whole experiment sweep.
///
/// Drivers call [`tap`](TimelineRecorder::tap) for a fresh sampler,
/// thread it through the pass as an optional sink, and
/// [`commit`](TimelineRecorder::commit) it afterwards. The recorder is
/// shared behind a [`crate::RunCtx`] reference, so commits lock briefly;
/// sampling itself is lock-free.
#[derive(Debug, Default)]
pub struct TimelineRecorder {
    spec: TimelineSpec,
    runs: Mutex<Vec<TimelineRun>>,
}

impl TimelineRecorder {
    /// A recorder sampling under `spec`.
    pub fn new(spec: TimelineSpec) -> TimelineRecorder {
        TimelineRecorder {
            spec,
            runs: Mutex::new(Vec::new()),
        }
    }

    /// The shared sampling spec.
    pub fn spec(&self) -> TimelineSpec {
        self.spec
    }

    /// A fresh sampler for one pass.
    pub fn tap(&self) -> Timeline {
        Timeline::new(self.spec.cache, self.spec.window_events)
    }

    /// Finish `tap` and file its report under `label`.
    pub fn commit(&self, label: &str, tap: Timeline) {
        let report = tap.finish();
        probe::count(Counter::TimelineWindows, report.windows.len() as u64);
        probe::count(
            Counter::TimelineCollections,
            report.collections.len() as u64,
        );
        self.lock().push(TimelineRun {
            label: label.to_string(),
            report,
        });
    }

    /// Copies of the committed runs, in commit order.
    pub fn runs(&self) -> Vec<TimelineRun> {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TimelineRun>> {
        self.runs.lock().expect("timeline runs poisoned")
    }

    /// Serialize every committed run as `cachegc-timeline-v1` JSONL: a
    /// header line, then typed `run` / `window` / `collection` /
    /// `summary` lines per run.
    pub fn to_jsonl(&self, experiment: &str) -> String {
        let runs = self.lock();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\": {}, \"experiment\": {}, \"cache\": {}, \"block_bytes\": {}, \
             \"window_events\": {}, \"runs\": {}}}\n",
            json_str(TIMELINE_SCHEMA),
            json_str(experiment),
            json_str(&self.spec.cache.to_string()),
            self.spec.cache.block,
            self.spec.window_events,
            runs.len(),
        ));
        for run in runs.iter() {
            let label = json_str(&run.label);
            let r = &run.report;
            out.push_str(&format!(
                "{{\"type\": \"run\", \"label\": {label}, \"events\": {}, \"windows\": {}, \
                 \"collections\": {}}}\n",
                r.events,
                r.windows.len(),
                r.collections.len(),
            ));
            for w in &r.windows {
                let d = &w.delta;
                out.push_str(&format!(
                    "{{\"type\": \"window\", \"run\": {label}, \"start_event\": {}, \
                     \"events\": {}, \"ctx\": {}, \"reads\": {}, \"writes\": {}, \
                     \"read_misses\": {}, \"write_misses\": {}, \"misses\": {}, \
                     \"fetches\": {}, \"alloc_misses\": {}, \"writebacks\": {}, \
                     \"transfer_bytes\": {}, \"miss_ratio\": {:.6}, \"alloc_ptr\": {}}}\n",
                    w.start_event,
                    w.events,
                    json_str(ctx_name(w.ctx)),
                    d.reads(),
                    d.writes(),
                    d.read_misses(),
                    d.write_misses(),
                    d.misses(),
                    d.fetches(),
                    d.alloc_misses,
                    d.writebacks,
                    r.transfer_bytes(d),
                    w.miss_ratio(),
                    w.alloc_ptr,
                ));
            }
            for c in &r.collections {
                out.push_str(&format!(
                    "{{\"type\": \"collection\", \"run\": {label}, \"start_event\": {}, \
                     \"events\": {}, \"kind\": {}, \"reads\": {}, \"writes\": {}, \
                     \"bytes_copied\": {}, \"pause_bucket\": {}}}\n",
                    c.start_event,
                    c.events,
                    json_str(c.kind),
                    c.reads,
                    c.writes,
                    c.bytes_copied,
                    c.pause_bucket,
                ));
            }
            let t = &r.totals;
            out.push_str(&format!(
                "{{\"type\": \"summary\", \"run\": {label}, \"events\": {}, \"reads\": {}, \
                 \"writes\": {}, \"read_misses\": {}, \"write_misses\": {}, \"misses\": {}, \
                 \"fetches\": {}, \"alloc_misses\": {}, \"writebacks\": {}, \
                 \"transfer_bytes\": {}, \"miss_ratio\": {:.6}}}\n",
                r.events,
                t.reads(),
                t.writes(),
                t.read_misses(),
                t.write_misses(),
                t.misses(),
                t.fetches(),
                t.alloc_misses,
                t.writebacks,
                r.transfer_bytes(t),
                if t.refs() == 0 {
                    0.0
                } else {
                    t.misses() as f64 / t.refs() as f64
                },
            ));
        }
        out
    }

    /// Write the JSONL stream to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Any I/O error from directory creation or the write.
    pub fn write_jsonl(&self, experiment: &str, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_jsonl(experiment))
    }

    /// A rendered per-run summary table (for stderr — stdout result
    /// tables must stay byte-identical whether or not a timeline rode
    /// along).
    pub fn summary_table(&self) -> String {
        let runs = self.lock();
        let mut out = format!(
            "timeline: {} runs, cache {}, window {} events\n",
            runs.len(),
            self.spec.cache,
            self.spec.window_events,
        );
        out.push_str(&format!(
            "  {:<28} {:>8} {:>6} {:>12} {:>9} {:>9} {:>9}\n",
            "run", "windows", "colls", "events", "mut.miss", "gc.miss", "peak"
        ));
        for run in runs.iter() {
            let r = &run.report;
            let (mut_sum, gc_sum) = r.windows.iter().fold(
                (CacheTotals::default(), CacheTotals::default()),
                |(m, g), w| match w.ctx {
                    Context::Mutator => (m.add(&w.delta), g),
                    Context::Collector => (m, g.add(&w.delta)),
                },
            );
            let ratio = |t: CacheTotals| {
                if t.refs() == 0 {
                    0.0
                } else {
                    t.misses() as f64 / t.refs() as f64
                }
            };
            let peak = r
                .windows
                .iter()
                .map(|w| w.miss_ratio())
                .fold(0.0f64, f64::max);
            out.push_str(&format!(
                "  {:<28} {:>8} {:>6} {:>12} {:>9.4} {:>9.4} {:>9.4}\n",
                run.label,
                r.windows.len(),
                r.collections.len(),
                r.events,
                ratio(mut_sum),
                ratio(gc_sum),
                peak,
            ));
        }
        out
    }
}

fn ctx_name(ctx: Context) -> &'static str {
    match ctx {
        Context::Mutator => "mutator",
        Context::Collector => "collector",
    }
}

/// Validate a `cachegc-timeline-v1` JSONL stream: schema identifier,
/// line structure, per-window context purity, and the reconstruction
/// invariant — each run's window sums must equal its summary line
/// exactly.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_timeline(text: &str) -> Result<(), String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("timeline: empty stream")?;
    let header = json::parse(header).map_err(|e| format!("timeline: header: {e}"))?;
    let schema = header
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("timeline: header missing schema string")?;
    if schema != TIMELINE_SCHEMA {
        return Err(format!(
            "timeline: schema '{schema}' is not '{TIMELINE_SCHEMA}'"
        ));
    }
    let declared_runs = header
        .get("runs")
        .and_then(Json::as_u64)
        .ok_or("timeline: header missing runs count")?;
    for key in ["block_bytes", "window_events"] {
        header
            .get(key)
            .and_then(Json::as_u64)
            .filter(|&v| v > 0)
            .ok_or_else(|| format!("timeline: header.{key} is not a positive integer"))?;
    }

    // Per-run accumulation state: the window sums to check against the
    // summary line. The summed integer fields must reconstruct exactly.
    const SUMMED: [&str; 10] = [
        "events",
        "reads",
        "writes",
        "read_misses",
        "write_misses",
        "misses",
        "fetches",
        "alloc_misses",
        "writebacks",
        "transfer_bytes",
    ];
    let mut open_run: Option<(String, [u64; SUMMED.len()], u64, u64)> = None;
    let mut runs_seen = 0u64;

    for (i, line) in lines {
        let n = i + 1; // 1-based line number for messages
        let v = json::parse(line).map_err(|e| format!("timeline: line {n}: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("timeline: line {n}: missing type"))?;
        let run_label = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("timeline: line {n}: missing {key}"))
        };
        let field = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("timeline: line {n}: {key} is not a non-negative integer"))
        };
        match ty {
            "run" => {
                if open_run.is_some() {
                    return Err(format!("timeline: line {n}: run opened before summary"));
                }
                open_run = Some((
                    run_label("label")?,
                    [0; SUMMED.len()],
                    field("windows")?,
                    field("collections")?,
                ));
                runs_seen += 1;
            }
            "window" => {
                let (label, sums, windows_left, _) = open_run
                    .as_mut()
                    .ok_or_else(|| format!("timeline: line {n}: window outside a run"))?;
                if run_label("run")? != *label {
                    return Err(format!("timeline: line {n}: window for a different run"));
                }
                if *windows_left == 0 {
                    return Err(format!("timeline: line {n}: more windows than declared"));
                }
                *windows_left -= 1;
                let ctx = run_label("ctx")?;
                if ctx != "mutator" && ctx != "collector" {
                    return Err(format!("timeline: line {n}: ctx '{ctx}' is not pure"));
                }
                if field("events")? == 0 {
                    return Err(format!("timeline: line {n}: empty window"));
                }
                for (slot, key) in sums.iter_mut().zip(SUMMED) {
                    *slot += field(key)?;
                }
            }
            "collection" => {
                let (label, _, _, colls_left) = open_run
                    .as_mut()
                    .ok_or_else(|| format!("timeline: line {n}: collection outside a run"))?;
                if run_label("run")? != *label {
                    return Err(format!(
                        "timeline: line {n}: collection for a different run"
                    ));
                }
                if *colls_left == 0 {
                    return Err(format!(
                        "timeline: line {n}: more collections than declared"
                    ));
                }
                *colls_left -= 1;
                let kind = run_label("kind")?;
                if kind != "copying" && kind != "mark" {
                    return Err(format!(
                        "timeline: line {n}: unknown collection kind '{kind}'"
                    ));
                }
                for key in ["start_event", "events", "reads", "writes", "bytes_copied"] {
                    field(key)?;
                }
            }
            "summary" => {
                let (label, sums, windows_left, colls_left) = open_run
                    .take()
                    .ok_or_else(|| format!("timeline: line {n}: summary outside a run"))?;
                if run_label("run")? != label {
                    return Err(format!("timeline: line {n}: summary for a different run"));
                }
                if windows_left != 0 || colls_left != 0 {
                    return Err(format!(
                        "timeline: line {n}: run '{label}' is short {windows_left} windows, \
                         {colls_left} collections"
                    ));
                }
                for (sum, key) in sums.iter().zip(SUMMED) {
                    let total = field(key)?;
                    if *sum != total {
                        return Err(format!(
                            "timeline: line {n}: run '{label}' windows sum {key} to {sum}, \
                             summary says {total}"
                        ));
                    }
                }
            }
            other => return Err(format!("timeline: line {n}: unknown type '{other}'")),
        }
    }
    if let Some((label, ..)) = open_run {
        return Err(format!("timeline: run '{label}' has no summary line"));
    }
    if runs_seen != declared_runs {
        return Err(format!(
            "timeline: header declares {declared_runs} runs, stream has {runs_seen}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::{Access, TraceSink, DYNAMIC_BASE};

    const M: Context = Context::Mutator;
    const C: Context = Context::Collector;

    fn spec() -> TimelineSpec {
        TimelineSpec {
            cache: CacheConfig::direct_mapped(1 << 14, 32),
            window_events: 64,
        }
    }

    fn recorded(labels: &[&str]) -> TimelineRecorder {
        let rec = TimelineRecorder::new(spec());
        for (pass, label) in labels.iter().enumerate() {
            let mut tap = rec.tap();
            for i in 0..600u32 {
                let ctx = if i % 200 >= 180 { C } else { M };
                let a = if i % 7 == 0 {
                    Access::alloc_write(DYNAMIC_BASE + (pass as u32 + 1) * 64 + i * 16, ctx)
                } else {
                    Access::read(DYNAMIC_BASE + (i % 300) * 44, ctx)
                };
                tap.access(a);
            }
            rec.commit(label, tap);
        }
        rec
    }

    #[test]
    fn jsonl_round_trips_validation() {
        let rec = recorded(&["rewrite@1", "nbody@1+copying"]);
        let text = rec.to_jsonl("e4_write_policy");
        validate_timeline(&text).unwrap();
        assert!(text.starts_with("{\"schema\": \"cachegc-timeline-v1\""));
        assert!(text.contains("\"type\": \"collection\""));
        assert_eq!(rec.runs().len(), 2);
        let table = rec.summary_table();
        assert!(table.contains("rewrite@1") && table.contains("nbody@1+copying"));
    }

    #[test]
    fn validation_rejects_corruption() {
        let rec = recorded(&["rewrite@1"]);
        let good = rec.to_jsonl("e1_cache_grid");

        let bad = good.replace("cachegc-timeline-v1", "cachegc-timeline-v0");
        assert!(validate_timeline(&bad).unwrap_err().contains("schema"));

        // Perturbing one window's miss count breaks the reconstruction.
        let line = good
            .lines()
            .find(|l| l.contains("\"type\": \"window\"") && l.contains("\"misses\": "))
            .unwrap()
            .to_string();
        let miss_field = line
            .split("\"misses\": ")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap();
        let bumped = line.replace(
            &format!("\"misses\": {miss_field},"),
            &format!("\"misses\": {},", miss_field.parse::<u64>().unwrap() + 1),
        );
        let bad = good.replace(&line, &bumped);
        let err = validate_timeline(&bad).unwrap_err();
        assert!(err.contains("windows sum"), "{err}");

        // Dropping the summary line leaves the run open.
        let no_summary: String = good
            .lines()
            .filter(|l| !l.contains("\"type\": \"summary\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate_timeline(&no_summary)
            .unwrap_err()
            .contains("no summary"));

        // A window claiming a mixed context is impure.
        let bad = good.replace("\"ctx\": \"mutator\"", "\"ctx\": \"both\"");
        assert!(validate_timeline(&bad).unwrap_err().contains("pure"));

        assert!(validate_timeline("").is_err());
        assert!(validate_timeline("{nope").is_err());
    }

    #[test]
    fn default_spec_matches_the_paper() {
        let spec = TimelineSpec::default();
        assert_eq!(spec.cache.size, 64 * 1024);
        assert_eq!(spec.cache.block, 32);
        assert_eq!(spec.window_events, 1_000_000);
    }
}
