//! The Cheney semispace compacting collector (§6).

use cachegc_heap::{Heap, HeapConfig};
use cachegc_telemetry::{probe, Counter};
use cachegc_trace::{Counters, InstrClass, TraceSink, DYNAMIC_BASE, DYNAMIC_SECOND_BASE};

use crate::copier::{costs, Evac, ToSpace};
use crate::roots::Roots;
use crate::stats::GcStats;
use crate::Collector;

/// A classic two-semispace copying collector: on each collection, the live
/// graph is copied from the current semispace into the other, compacting it
/// at the bottom, and the spaces flip.
///
/// The paper runs it with 16 MB semispaces, making it an *infrequent*
/// collector (§6); [`CheneyCollector::semispace_bytes`] controls frequency.
#[derive(Debug)]
pub struct CheneyCollector {
    semispace_bytes: u32,
    in_first: bool,
    stats: GcStats,
}

impl CheneyCollector {
    /// Create a collector with semispaces of `bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero, unaligned, or larger than a dynamic
    /// address region.
    pub fn new(bytes: u32) -> Self {
        // Reuse HeapConfig's validation.
        let _ = HeapConfig::semispaces(bytes);
        CheneyCollector {
            semispace_bytes: bytes,
            in_first: true,
            stats: GcStats::new(),
        }
    }

    /// Semispace size in bytes.
    pub fn semispace_bytes(&self) -> u32 {
        self.semispace_bytes
    }
}

impl Collector for CheneyCollector {
    fn install(&mut self, heap: &mut Heap) {
        heap.set_alloc_region(
            DYNAMIC_BASE,
            DYNAMIC_BASE,
            DYNAMIC_BASE + self.semispace_bytes,
        );
        self.in_first = true;
    }

    fn collect<S: TraceSink>(
        &mut self,
        heap: &mut Heap,
        roots: &mut Roots<'_>,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        let _pause = probe::phase("gc_major");
        counters.charge(InstrClass::Collector, costs::PER_COLLECTION);
        let (from_base, from_top, _) = heap.alloc_region();
        let to_base = if self.in_first {
            DYNAMIC_SECOND_BASE
        } else {
            DYNAMIC_BASE
        };
        let mut evac = Evac {
            heap,
            sink,
            counters,
            from: (from_base, from_top),
            to: ToSpace {
                base: to_base,
                free: to_base,
                limit: to_base + self.semispace_bytes,
            },
        };
        for r in roots.registers.iter_mut() {
            *r = evac.forward(*r);
        }
        for &(s, e) in &roots.flat_ranges {
            evac.scan_flat(s, e);
        }
        for &(s, e) in &roots.object_ranges {
            evac.scan_objects(s, e);
        }
        evac.drain(to_base);

        let live = evac.to.free - to_base;
        let limit = evac.to.limit;
        let free = evac.to.free;
        heap.set_alloc_region(to_base, free, limit);
        heap.memory_mut().clear_space_at(from_base);
        heap.bump_gc_epoch();
        self.in_first = !self.in_first;
        self.stats.collections += 1;
        self.stats.major_collections += 1;
        self.stats.bytes_copied += live as u64;
        cachegc_telemetry::probe!(Counter::GcMajorCollections);
        cachegc_telemetry::probe!(Counter::GcBytesCopied, live as u64);
    }

    fn stats(&self) -> &GcStats {
        &self.stats
    }

    fn name(&self) -> String {
        let k = self.semispace_bytes >> 10;
        if k >= 1024 {
            format!("cheney/{}m", k >> 10)
        } else {
            format!("cheney/{k}k")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_heap::{ObjKind, Value};
    use cachegc_trace::{Context, NullSink, RefCounter};

    const M: Context = Context::Mutator;

    /// Build a list of `n` fixnums, return its head.
    fn make_list(heap: &mut Heap, n: i32) -> Value {
        let mut sink = NullSink;
        let mut head = Value::nil();
        for i in (0..n).rev() {
            head = heap
                .alloc(ObjKind::Pair, &[Value::fixnum(i), head], M, &mut sink)
                .unwrap();
        }
        head
    }

    fn read_list(heap: &Heap, mut v: Value) -> Vec<i32> {
        let mut sink = NullSink;
        let mut out = Vec::new();
        while v.is_ptr() {
            out.push(heap.load(v.addr() + 4, M, &mut sink).as_fixnum());
            v = heap.load(v.addr() + 8, M, &mut sink);
        }
        out
    }

    #[test]
    fn collection_preserves_live_data_and_reclaims_garbage() {
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 20));
        let mut gc = CheneyCollector::new(1 << 20);
        gc.install(&mut heap);
        let mut sink = NullSink;
        // Live list of 100 elements, plus lots of garbage.
        let live = make_list(&mut heap, 100);
        for _ in 0..1000 {
            make_list(&mut heap, 10);
        }
        let used_before = heap.dynamic_used();
        let mut regs = [live];
        let mut roots = Roots::registers_only(&mut regs);
        let mut counters = Counters::new();
        gc.collect(&mut heap, &mut roots, &mut counters, &mut sink);
        let live = regs[0];
        assert_eq!(read_list(&heap, live), (0..100).collect::<Vec<_>>());
        // 100 pairs * 12 bytes survive.
        assert_eq!(heap.dynamic_used(), 100 * 12);
        assert!(heap.dynamic_used() < used_before);
        assert_eq!(gc.stats().collections, 1);
        assert_eq!(gc.stats().bytes_copied, 1200);
        assert!(counters.collector() > 0);
        assert_eq!(heap.gc_epoch(), 1);
    }

    #[test]
    fn shared_structure_is_copied_once() {
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 16));
        let mut gc = CheneyCollector::new(1 << 16);
        gc.install(&mut heap);
        let mut sink = NullSink;
        let shared = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(7), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        let a = heap
            .alloc(ObjKind::Pair, &[shared, Value::nil()], M, &mut sink)
            .unwrap();
        let b = heap
            .alloc(ObjKind::Pair, &[shared, Value::nil()], M, &mut sink)
            .unwrap();
        let mut regs = [a, b];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        let car_a = heap.load(regs[0].addr() + 4, M, &mut sink);
        let car_b = heap.load(regs[1].addr() + 4, M, &mut sink);
        assert_eq!(car_a, car_b, "sharing preserved");
        assert_eq!(heap.dynamic_used(), 3 * 12, "copied exactly once");
    }

    #[test]
    fn cycles_are_handled() {
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 16));
        let mut gc = CheneyCollector::new(1 << 16);
        gc.install(&mut heap);
        let mut sink = NullSink;
        let a = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(1), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        let b = heap
            .alloc(ObjKind::Pair, &[Value::fixnum(2), a], M, &mut sink)
            .unwrap();
        heap.store(a.addr() + 8, b, M, &mut sink); // a.cdr = b: cycle
        let mut regs = [a];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        let a2 = regs[0];
        let b2 = heap.load(a2.addr() + 8, M, &mut sink);
        let a3 = heap.load(b2.addr() + 8, M, &mut sink);
        assert_eq!(a3, a2, "cycle closes");
        assert_eq!(heap.dynamic_used(), 2 * 12);
    }

    #[test]
    fn raw_payloads_survive_uninterpreted() {
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 16));
        let mut gc = CheneyCollector::new(1 << 16);
        gc.install(&mut heap);
        let mut sink = NullSink;
        // A flonum whose bit pattern looks like a pointer must not be chased.
        let tricky = f64::from_bits((DYNAMIC_BASE as u64) << 32 | (DYNAMIC_BASE | 1) as u64);
        let f = heap.alloc_flonum(tricky, M, &mut sink).unwrap();
        let s = heap
            .alloc_string("pointer-like \u{1} bytes", M, &mut sink)
            .unwrap();
        let mut regs = [f, s];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(heap.load_flonum(regs[0], M, &mut sink), tricky);
        assert_eq!(
            heap.load_string(regs[1], M, &mut sink),
            "pointer-like \u{1} bytes"
        );
    }

    #[test]
    fn flat_root_ranges_are_updated() {
        use cachegc_trace::STACK_BASE;
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 16));
        let mut gc = CheneyCollector::new(1 << 16);
        gc.install(&mut heap);
        let mut sink = NullSink;
        let p = heap
            .alloc(ObjKind::Cell, &[Value::fixnum(42)], M, &mut sink)
            .unwrap();
        heap.store(STACK_BASE, p, M, &mut sink);
        heap.store(STACK_BASE + 4, Value::fixnum(5), M, &mut sink);
        let mut regs = [];
        let mut roots = Roots::registers_only(&mut regs);
        roots.flat_ranges.push((STACK_BASE, STACK_BASE + 8));
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        let p2 = heap.load(STACK_BASE, M, &mut sink);
        assert_ne!(p2, p, "moved");
        assert_eq!(heap.load(p2.addr() + 4, M, &mut sink), Value::fixnum(42));
        assert_eq!(heap.load(STACK_BASE + 4, M, &mut sink), Value::fixnum(5));
    }

    #[test]
    fn static_object_ranges_are_scanned_and_updated() {
        use cachegc_heap::AllocMode;
        use cachegc_trace::STATIC_BASE;
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 16));
        let mut gc = CheneyCollector::new(1 << 16);
        gc.install(&mut heap);
        let mut sink = NullSink;
        // A static vector (exists at program start) pointing at a dynamic
        // object, plus a static string whose raw bytes must not be chased.
        heap.set_mode(AllocMode::Static);
        let svec = heap.alloc_vector(3, Value::nil(), M, &mut sink).unwrap();
        let sstr = heap.alloc_string("raw bytes", M, &mut sink).unwrap();
        heap.set_mode(AllocMode::Dynamic);
        let dyn_obj = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(5), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        heap.store(svec.addr() + 4, dyn_obj, M, &mut sink);
        heap.store(svec.addr() + 8, sstr, M, &mut sink);
        let mut regs = [];
        let mut roots = Roots::registers_only(&mut regs);
        roots.object_ranges.push((STATIC_BASE, heap.static_top()));
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        let moved = heap.load(svec.addr() + 4, M, &mut sink);
        assert_ne!(moved, dyn_obj, "dynamic object moved");
        assert_eq!(heap.load(moved.addr() + 4, M, &mut sink), Value::fixnum(5));
        assert_eq!(
            heap.load(svec.addr() + 8, M, &mut sink),
            sstr,
            "static pointer untouched"
        );
        assert_eq!(heap.load_string(sstr, M, &mut sink), "raw bytes");
        assert_eq!(heap.dynamic_used(), 12, "only the live pair survives");
    }

    #[test]
    fn empty_roots_empties_the_heap() {
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 16));
        let mut gc = CheneyCollector::new(1 << 16);
        gc.install(&mut heap);
        let mut sink = NullSink;
        make_list(&mut heap, 100);
        let mut regs = [];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(heap.dynamic_used(), 0);
        assert_eq!(gc.stats().bytes_copied, 0);
    }

    #[test]
    fn collector_traffic_is_attributed_to_collector() {
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 16));
        let mut gc = CheneyCollector::new(1 << 16);
        gc.install(&mut heap);
        let mut sink = RefCounter::new();
        let live = make_list(&mut heap, 50);
        let mutator_refs = sink.by_context(Context::Mutator);
        let mut regs = [live];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(
            sink.by_context(Context::Mutator),
            mutator_refs,
            "GC adds no mutator refs"
        );
        assert!(
            sink.by_context(Context::Collector) >= 50 * 3 * 2,
            "copy reads+writes"
        );
    }

    #[test]
    fn successive_collections_flip_spaces() {
        let mut heap = Heap::new(HeapConfig::semispaces(1 << 16));
        let mut gc = CheneyCollector::new(1 << 16);
        gc.install(&mut heap);
        let mut sink = NullSink;
        let live = make_list(&mut heap, 10);
        let mut regs = [live];
        for i in 1..=4u64 {
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
            assert_eq!(gc.stats().collections, i);
            assert_eq!(read_list(&heap, regs[0]), (0..10).collect::<Vec<_>>());
        }
        // Live size is stable: no leaks across flips.
        assert_eq!(heap.dynamic_used(), 10 * 12);
    }
}
