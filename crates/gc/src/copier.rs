//! The shared Cheney copy/scan engine used by both compacting collectors.

use cachegc_heap::{Header, Heap, Value};
use cachegc_trace::{Context, Counters, InstrClass, TraceSink};

/// Instruction-cost model for collector work, in abstract machine
/// instructions. The values approximate a tight MIPS copy/scan loop; they
/// determine `I_gc` and therefore the instruction component of `O_gc`.
pub mod costs {
    /// Fixed cost per collection (root-set setup, space bookkeeping).
    pub const PER_COLLECTION: u64 = 2000;
    /// Per object copied (header decode, forwarding-pointer install).
    pub const PER_OBJECT_COPIED: u64 = 4;
    /// Per word copied from from-space to to-space.
    pub const PER_WORD_COPIED: u64 = 3;
    /// Per word examined by the scan loop.
    pub const PER_WORD_SCANNED: u64 = 2;
    /// Write-barrier instructions per noted mutator store (generational).
    pub const BARRIER: u64 = 2;
    /// Per object visited by a marking trace (bitmap test-and-set,
    /// mark-stack push/pop).
    pub const PER_OBJECT_MARKED: u64 = 3;
    /// Per object header examined by a free-list sweep.
    pub const PER_OBJECT_SWEPT: u64 = 2;
    /// Per line examined by a mark-region line-table sweep (no memory
    /// traffic: the line table is collector metadata).
    pub const PER_LINE_SWEPT: u64 = 1;
}

const CTX: Context = Context::Collector;

/// A to-space bump region the copier promotes objects into.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ToSpace {
    pub base: u32,
    pub free: u32,
    pub limit: u32,
}

/// One evacuation pass: copies every reachable object whose address falls
/// in `from` into `to`, leaving forwarding pointers behind.
pub(crate) struct Evac<'a, S> {
    pub heap: &'a mut Heap,
    pub sink: &'a mut S,
    pub counters: &'a mut Counters,
    /// Objects in `[from.0, from.1)` are evacuated.
    pub from: (u32, u32),
    pub to: ToSpace,
}

impl<S: TraceSink> Evac<'_, S> {
    #[inline]
    fn in_from(&self, addr: u32) -> bool {
        (self.from.0..self.from.1).contains(&addr)
    }

    /// Forward a value: if it points into from-space, copy its target and
    /// return the new pointer; otherwise return it unchanged.
    pub fn forward(&mut self, v: Value) -> Value {
        if v.is_ptr() && self.in_from(v.addr()) {
            Value::ptr(self.copy_object(v.addr()))
        } else {
            v
        }
    }

    /// Copy the object at `addr` (or chase its forwarding pointer),
    /// returning its to-space address.
    fn copy_object(&mut self, addr: u32) -> u32 {
        let first = self.heap.load_raw(addr, CTX, self.sink);
        let as_value = Value::from_bits(first);
        if as_value.is_ptr() {
            // Already copied: the header slot holds the forwarding pointer.
            return as_value.addr();
        }
        let header = Header::from_bits(first);
        let size = header.size_words();
        let dst = self.to.free;
        assert!(
            dst + 4 * size <= self.to.limit,
            "to-space overflow copying {size}-word object (to-space {:#x}..{:#x})",
            self.to.base,
            self.to.limit
        );
        self.heap.init_store(dst, first, CTX, self.sink);
        for i in 1..size {
            let w = self.heap.load_raw(addr + 4 * i, CTX, self.sink);
            self.heap.init_store(dst + 4 * i, w, CTX, self.sink);
        }
        self.heap
            .store_raw(addr, Value::ptr(dst).bits(), CTX, self.sink);
        self.to.free = dst + 4 * size;
        self.counters.charge(
            InstrClass::Collector,
            costs::PER_OBJECT_COPIED + costs::PER_WORD_COPIED * size as u64,
        );
        dst
    }

    /// Scan a flat range in which every word is a tagged value (the stack),
    /// forwarding pointers in place.
    pub fn scan_flat(&mut self, start: u32, end: u32) {
        let mut p = start;
        while p < end {
            let v = Value::from_bits(self.heap.load_raw(p, CTX, self.sink));
            self.counters
                .charge(InstrClass::Collector, costs::PER_WORD_SCANNED);
            if v.is_ptr() && self.in_from(v.addr()) {
                let nv = self.forward(v);
                self.heap.store_raw(p, nv.bits(), CTX, self.sink);
            }
            p += 4;
        }
    }

    /// Scan a range containing a contiguous sequence of heap objects,
    /// walking headers so raw payloads are skipped.
    pub fn scan_objects(&mut self, start: u32, end: u32) {
        let mut p = start;
        while p < end {
            p = self.scan_one_object(p);
        }
    }

    /// Scan the single object at `p`, returning the address just past it.
    fn scan_one_object(&mut self, p: u32) -> u32 {
        let header = Header::from_bits(self.heap.load_raw(p, CTX, self.sink));
        self.counters
            .charge(InstrClass::Collector, costs::PER_WORD_SCANNED);
        let len = header.len();
        let scanned = if header.kind().is_raw() {
            header.kind().scanned_prefix().min(len)
        } else {
            len
        };
        for i in 0..scanned {
            let slot = p + 4 * (1 + i);
            let v = Value::from_bits(self.heap.load_raw(slot, CTX, self.sink));
            self.counters
                .charge(InstrClass::Collector, costs::PER_WORD_SCANNED);
            if v.is_ptr() && self.in_from(v.addr()) {
                let nv = self.forward(v);
                self.heap.store_raw(slot, nv.bits(), CTX, self.sink);
            }
        }
        p + 4 * header.size_words()
    }

    /// Cheney's scan loop: scan to-space objects from `scan_start` until the
    /// scan pointer catches the free pointer.
    pub fn drain(&mut self, scan_start: u32) {
        let mut scan = scan_start;
        while scan < self.to.free {
            scan = self.scan_one_object(scan);
        }
    }

    /// Scan one remembered slot: if it holds a from-space pointer, forward
    /// it in place.
    pub fn scan_slot(&mut self, slot: u32) {
        let v = Value::from_bits(self.heap.load_raw(slot, CTX, self.sink));
        self.counters
            .charge(InstrClass::Collector, costs::PER_WORD_SCANNED);
        if v.is_ptr() && self.in_from(v.addr()) {
            let nv = self.forward(v);
            self.heap.store_raw(slot, nv.bits(), CTX, self.sink);
        }
    }
}
