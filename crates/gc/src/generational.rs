//! A two-generation compacting collector with a remembered set (§6).

use std::collections::HashSet;

use cachegc_heap::{Heap, Value, DYNAMIC_THIRD_BASE};
use cachegc_telemetry::{probe, Counter};
use cachegc_trace::{Counters, InstrClass, TraceSink, DYNAMIC_BASE, DYNAMIC_SECOND_BASE};

use crate::copier::{costs, Evac, ToSpace};
use crate::roots::Roots;
use crate::stats::GcStats;
use crate::Collector;

/// A generational compacting collector: new objects are allocated linearly
/// in a *nursery*; a minor collection promotes the nursery's survivors into
/// the old generation; when the old generation grows too full, a major
/// collection copies it between two old semispaces.
///
/// A write barrier records old-to-nursery pointer stores in a remembered
/// set, so minor collections never scan the old generation. Barrier work is
/// charged to the mutator through [`Collector::barrier_cost`] — part of
/// "the overheads of managing several generations and of detecting and
/// updating pointers from old objects to new objects" the paper expects a
/// generational collector to pay (§6).
///
/// With a nursery "sufficiently small to fit mostly or entirely in the
/// cache", this is exactly the paper's *aggressive* collector (§2); the
/// paper's recommended configuration uses a large nursery instead, so that
/// collections stay infrequent.
#[derive(Debug)]
pub struct GenerationalCollector {
    nursery_bytes: u32,
    old_bytes: u32,
    old_in_first: bool,
    old_top: u32,
    remembered: HashSet<u32>,
    stats: GcStats,
}

impl GenerationalCollector {
    /// Create a collector with the given nursery and old-generation
    /// semispace sizes, in bytes.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero or unaligned, or exceeds its address
    /// region (1 GB each).
    pub fn new(nursery_bytes: u32, old_bytes: u32) -> Self {
        assert!(
            nursery_bytes > 0 && nursery_bytes.is_multiple_of(4),
            "bad nursery size"
        );
        assert!(
            old_bytes > 0 && old_bytes.is_multiple_of(4),
            "bad old-generation size"
        );
        assert!(nursery_bytes <= DYNAMIC_SECOND_BASE - DYNAMIC_BASE);
        assert!(old_bytes <= DYNAMIC_THIRD_BASE - DYNAMIC_SECOND_BASE);
        GenerationalCollector {
            nursery_bytes,
            old_bytes,
            old_in_first: true,
            old_top: DYNAMIC_SECOND_BASE,
            remembered: HashSet::new(),
            stats: GcStats::new(),
        }
    }

    /// An *aggressive* configuration (Wilson et al., §2): nursery sized to
    /// the cache, modest old generation.
    pub fn aggressive(cache_bytes: u32, old_bytes: u32) -> Self {
        Self::new(cache_bytes, old_bytes)
    }

    /// Nursery size in bytes.
    pub fn nursery_bytes(&self) -> u32 {
        self.nursery_bytes
    }

    /// Old-generation semispace size in bytes.
    pub fn old_bytes(&self) -> u32 {
        self.old_bytes
    }

    /// Bytes currently in use in the old generation.
    pub fn old_used(&self) -> u32 {
        self.old_top - self.old_base()
    }

    fn old_base(&self) -> u32 {
        if self.old_in_first {
            DYNAMIC_SECOND_BASE
        } else {
            DYNAMIC_THIRD_BASE
        }
    }

    fn in_nursery(&self, addr: u32) -> bool {
        (DYNAMIC_BASE..DYNAMIC_BASE + self.nursery_bytes).contains(&addr)
    }

    fn minor<S: TraceSink>(
        &mut self,
        heap: &mut Heap,
        roots: &mut Roots<'_>,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        let _pause = probe::phase("gc_minor");
        counters.charge(InstrClass::Collector, costs::PER_COLLECTION);
        let (nursery_base, nursery_top, _) = heap.alloc_region();
        let old_base = self.old_base();
        let scan_start = self.old_top;
        let mut evac = Evac {
            heap,
            sink,
            counters,
            from: (nursery_base, nursery_top),
            to: ToSpace {
                base: old_base,
                free: self.old_top,
                limit: old_base + self.old_bytes,
            },
        };
        for r in roots.registers.iter_mut() {
            *r = evac.forward(*r);
        }
        for &(s, e) in &roots.flat_ranges {
            evac.scan_flat(s, e);
        }
        // Drain in ascending slot order: HashSet iteration order is
        // randomized per process, and evacuation order decides the copied
        // layout, so an unsorted scan makes identical runs produce
        // different traces (and non-reproducible ΔM_prog / ΔI_prog).
        let mut slots: Vec<u32> = self.remembered.drain().collect();
        slots.sort_unstable();
        for slot in slots {
            evac.scan_slot(slot);
        }
        evac.drain(scan_start);

        let promoted = evac.to.free - scan_start;
        self.old_top = evac.to.free;
        heap.set_alloc_region(
            DYNAMIC_BASE,
            DYNAMIC_BASE,
            DYNAMIC_BASE + self.nursery_bytes,
        );
        heap.memory_mut().clear_space_at(DYNAMIC_BASE);
        self.stats.collections += 1;
        self.stats.minor_collections += 1;
        self.stats.bytes_copied += promoted as u64;
        self.stats.bytes_promoted += promoted as u64;
        cachegc_telemetry::probe!(Counter::GcMinorCollections);
        cachegc_telemetry::probe!(Counter::GcBytesCopied, promoted as u64);
        cachegc_telemetry::probe!(Counter::GcBytesPromoted, promoted as u64);
    }

    fn major<S: TraceSink>(
        &mut self,
        heap: &mut Heap,
        roots: &mut Roots<'_>,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        let _pause = probe::phase("gc_major");
        counters.charge(InstrClass::Collector, costs::PER_COLLECTION);
        let from_base = self.old_base();
        let to_base = if self.old_in_first {
            DYNAMIC_THIRD_BASE
        } else {
            DYNAMIC_SECOND_BASE
        };
        let mut evac = Evac {
            heap,
            sink,
            counters,
            from: (from_base, self.old_top),
            to: ToSpace {
                base: to_base,
                free: to_base,
                limit: to_base + self.old_bytes,
            },
        };
        for r in roots.registers.iter_mut() {
            *r = evac.forward(*r);
        }
        for &(s, e) in &roots.flat_ranges {
            evac.scan_flat(s, e);
        }
        for &(s, e) in &roots.object_ranges {
            evac.scan_objects(s, e);
        }
        evac.drain(to_base);

        let live = evac.to.free - to_base;
        self.old_top = evac.to.free;
        heap.memory_mut().clear_space_at(from_base);
        self.old_in_first = !self.old_in_first;
        self.stats.collections += 1;
        self.stats.major_collections += 1;
        self.stats.bytes_copied += live as u64;
        cachegc_telemetry::probe!(Counter::GcMajorCollections);
        cachegc_telemetry::probe!(Counter::GcBytesCopied, live as u64);
    }
}

impl Collector for GenerationalCollector {
    fn install(&mut self, heap: &mut Heap) {
        heap.set_alloc_region(
            DYNAMIC_BASE,
            DYNAMIC_BASE,
            DYNAMIC_BASE + self.nursery_bytes,
        );
        self.old_in_first = true;
        self.old_top = DYNAMIC_SECOND_BASE;
    }

    fn collect<S: TraceSink>(
        &mut self,
        heap: &mut Heap,
        roots: &mut Roots<'_>,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        // Minor collections scan the static area only through the
        // remembered set, so old-gen roots from static objects are caught
        // by the barrier. Major collections scan everything.
        self.minor(heap, roots, counters, sink);
        let old_free = self.old_base() + self.old_bytes - self.old_top;
        if old_free < self.nursery_bytes {
            self.major(heap, roots, counters, sink);
            assert!(
                self.old_base() + self.old_bytes - self.old_top >= self.nursery_bytes,
                "old generation too small for live data"
            );
        }
        heap.bump_gc_epoch();
    }

    #[inline]
    fn note_store(&mut self, addr: u32, val: Value) {
        self.stats.barrier_stores += 1;
        if val.is_ptr()
            && self.in_nursery(val.addr())
            && !self.in_nursery(addr)
            && self.remembered.insert(addr)
        {
            self.stats.remembered += 1;
        }
    }

    fn barrier_cost(&self) -> u64 {
        costs::BARRIER
    }

    fn stats(&self) -> &GcStats {
        &self.stats
    }

    fn name(&self) -> String {
        fn human(b: u32) -> String {
            if b >= 1 << 20 {
                format!("{}m", b >> 20)
            } else {
                format!("{}k", b >> 10)
            }
        }
        format!(
            "gen/{}+{}",
            human(self.nursery_bytes),
            human(self.old_bytes)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_heap::{HeapConfig, ObjKind};
    use cachegc_trace::{Context, NullSink};

    const M: Context = Context::Mutator;

    fn setup(nursery: u32, old: u32) -> (Heap, GenerationalCollector) {
        let mut heap = Heap::new(HeapConfig::semispaces(nursery));
        let mut gc = GenerationalCollector::new(nursery, old);
        gc.install(&mut heap);
        (heap, gc)
    }

    #[test]
    fn minor_promotes_survivors() {
        let (mut heap, mut gc) = setup(1 << 12, 1 << 16);
        let mut sink = NullSink;
        let live = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(1), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        for _ in 0..5 {
            heap.alloc(
                ObjKind::Pair,
                &[Value::fixnum(0), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        }
        let mut regs = [live];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert!(
            !gc.in_nursery(regs[0].addr()),
            "survivor promoted to old gen"
        );
        assert_eq!(
            heap.load(regs[0].addr() + 4, M, &mut sink),
            Value::fixnum(1)
        );
        assert_eq!(gc.old_used(), 12, "only the survivor was promoted");
        assert_eq!(heap.dynamic_used(), 0, "nursery empty after minor GC");
        assert_eq!(gc.stats().minor_collections, 1);
    }

    #[test]
    fn remembered_set_keeps_nursery_objects_alive() {
        let (mut heap, mut gc) = setup(1 << 12, 1 << 16);
        let mut sink = NullSink;
        // Promote a cell to the old generation.
        let cell = heap
            .alloc(ObjKind::Cell, &[Value::nil()], M, &mut sink)
            .unwrap();
        let mut regs = [cell];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        let old_cell = regs[0];
        assert!(!gc.in_nursery(old_cell.addr()));
        // Store a young pointer into the old cell; barrier must catch it.
        let young = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(9), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        heap.store(old_cell.addr() + 4, young, M, &mut sink);
        gc.note_store(old_cell.addr() + 4, young);
        assert_eq!(gc.stats().remembered, 1);
        // Collect with *no* registers rooting `young`.
        let mut regs = [old_cell];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        let inner = heap.load(regs[0].addr() + 4, M, &mut sink);
        assert!(inner.is_ptr() && !gc.in_nursery(inner.addr()));
        assert_eq!(heap.load(inner.addr() + 4, M, &mut sink), Value::fixnum(9));
    }

    #[test]
    fn unremembered_young_garbage_dies() {
        let (mut heap, mut gc) = setup(1 << 12, 1 << 16);
        let mut sink = NullSink;
        heap.alloc(
            ObjKind::Pair,
            &[Value::fixnum(0), Value::nil()],
            M,
            &mut sink,
        )
        .unwrap();
        let mut regs = [];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(gc.old_used(), 0, "garbage not promoted");
    }

    #[test]
    fn major_collection_reclaims_old_garbage() {
        // Old gen barely bigger than the nursery forces majors.
        let nursery = 1 << 12;
        let (mut heap, mut gc) = setup(nursery, 3 << 12);
        let mut sink = NullSink;
        let mut keep = Value::nil();
        // Each round replaces the live list, turning last round's promoted
        // copy into old-generation garbage.
        for _round in 0..20 {
            keep = Value::nil();
            for i in (0..100).rev() {
                keep = heap
                    .alloc(ObjKind::Pair, &[Value::fixnum(i), keep], M, &mut sink)
                    .unwrap();
            }
            let mut regs = [keep];
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
            keep = regs[0];
        }
        assert!(gc.stats().major_collections > 0, "majors happened");
        assert!(gc.old_used() <= 2 * 100 * 12, "old garbage was reclaimed");
        // The current live list survived everything.
        let mut v = keep;
        let mut expect = 0;
        while v.is_ptr() {
            assert_eq!(heap.load(v.addr() + 4, M, &mut sink), Value::fixnum(expect));
            v = heap.load(v.addr() + 8, M, &mut sink);
            expect += 1;
        }
        assert_eq!(expect, 100);
    }

    #[test]
    fn barrier_ignores_young_to_young_and_non_pointers() {
        let (_, mut gc) = setup(1 << 12, 1 << 16);
        gc.note_store(DYNAMIC_BASE + 4, Value::ptr(DYNAMIC_BASE + 16)); // young→young
        gc.note_store(DYNAMIC_SECOND_BASE + 4, Value::fixnum(3)); // not a pointer
        assert_eq!(gc.stats().remembered, 0);
        assert_eq!(gc.stats().barrier_stores, 2);
        assert_eq!(gc.barrier_cost(), costs::BARRIER);
    }

    #[test]
    fn names_are_descriptive() {
        let gc = GenerationalCollector::new(512 << 10, 16 << 20);
        assert_eq!(gc.name(), "gen/512k+16m");
        assert_eq!(CheneyToo::name_of(), "cheney/16m");
        struct CheneyToo;
        impl CheneyToo {
            fn name_of() -> String {
                crate::CheneyCollector::new(16 << 20).name()
            }
        }
    }
}
