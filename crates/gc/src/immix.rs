//! An Immix-style mark-region collector.
//!
//! The heap is carved into 32 KB blocks of 128-byte lines. Allocation
//! bumps through runs of free lines handed out a block at a time;
//! collection is a single-pass trace that sets a mark bit per object and
//! a mark per line the object touches; reclamation is a walk over the
//! line table only — the sweep itself touches no heap memory, which is
//! the mark-region bet the §5 cache lens exists to measure.
//!
//! Fragmentation is fought opportunistically: blocks whose previous
//! collection left several holes (runs of free lines between live ones)
//! are flagged as evacuation candidates; the next trace copies their
//! live objects Cheney-style into a withheld headroom span while it
//! lasts, and simply marks in place once it runs out. Two identical runs
//! select identical candidates — the line table and hole counts are
//! plain vectors, so iteration order is deterministic by construction.

use cachegc_heap::{Header, Heap, Value};
use cachegc_telemetry::{probe, Counter};
use cachegc_trace::{Context, Counters, InstrClass, TraceSink, DYNAMIC_BASE, DYNAMIC_SECOND_BASE};

use crate::copier::costs;
use crate::roots::Roots;
use crate::stats::GcStats;
use crate::Collector;

const CTX: Context = Context::Collector;

/// Line granularity: the reclamation unit (two cache blocks at the
/// paper's largest block size).
pub const LINE_BYTES: u32 = 128;
/// Block granularity: the allocation-chunk and evacuation-policy unit.
pub const BLOCK_BYTES: u32 = 32 << 10;
const LINES_PER_BLOCK: u32 = BLOCK_BYTES / LINE_BYTES;

/// A block becomes an evacuation candidate when a collection leaves it
/// with at least this many holes (maximal free-line runs).
const EVAC_HOLE_THRESHOLD: u32 = 2;

/// The Immix-style mark-region collector.
#[derive(Debug)]
pub struct ImmixCollector {
    heap_bytes: u32,
    /// Free line-aligned spans, ascending by address. Rebuilt from the
    /// line table by every collection; consumed by `prepare_alloc`.
    spans: Vec<(u32, u32)>,
    /// Per-block evacuation-candidate flags, computed by the previous
    /// collection's hole counts.
    candidates: Vec<bool>,
    /// Per-line mark: some live object overlaps this line.
    line_marks: Vec<bool>,
    /// One mark bit per heap word, indexed by `(addr - DYNAMIC_BASE) / 4`.
    obj_marks: Vec<u64>,
    /// Highest address ever handed to the allocator; lines above it have
    /// never held objects and are excluded from reclamation accounting.
    high_water: u32,
    stats: GcStats,
}

impl ImmixCollector {
    /// Create a collector managing a heap of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero, not a multiple of the 32 KB block size,
    /// or larger than the first dynamic address region.
    pub fn new(bytes: u32) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(BLOCK_BYTES),
            "heap size must be a positive multiple of {BLOCK_BYTES}-byte blocks"
        );
        assert!(
            bytes <= DYNAMIC_SECOND_BASE - DYNAMIC_BASE,
            "heap larger than the dynamic region"
        );
        let blocks = (bytes / BLOCK_BYTES) as usize;
        ImmixCollector {
            heap_bytes: bytes,
            spans: vec![(DYNAMIC_BASE, DYNAMIC_BASE + bytes)],
            candidates: vec![false; blocks],
            line_marks: vec![false; blocks * LINES_PER_BLOCK as usize],
            obj_marks: vec![0; (bytes as usize / 4).div_ceil(64)],
            high_water: DYNAMIC_BASE,
            stats: GcStats::new(),
        }
    }

    /// Managed heap size in bytes.
    pub fn heap_bytes(&self) -> u32 {
        self.heap_bytes
    }

    fn limit(&self) -> u32 {
        DYNAMIC_BASE + self.heap_bytes
    }
}

/// The single-pass trace: marks objects and lines, and opportunistically
/// evacuates live objects out of candidate blocks into `headroom` while
/// it lasts.
struct Trace<'a, S> {
    heap: &'a mut Heap,
    sink: &'a mut S,
    counters: &'a mut Counters,
    limit: u32,
    candidates: &'a [bool],
    line_marks: &'a mut [bool],
    obj_marks: &'a mut [u64],
    /// Evacuation headroom: `(free, limit)` of the withheld span.
    headroom: Option<(u32, u32)>,
    stack: Vec<u32>,
    bytes_copied: u64,
    objects_moved: u64,
}

impl<S: TraceSink> Trace<'_, S> {
    fn in_region(&self, addr: u32) -> bool {
        (DYNAMIC_BASE..self.limit).contains(&addr)
    }

    fn is_marked(&self, addr: u32) -> bool {
        let bit = (addr - DYNAMIC_BASE) as usize / 4;
        self.obj_marks[bit / 64] >> (bit % 64) & 1 != 0
    }

    fn mark_object(&mut self, addr: u32, size_bytes: u32) {
        let bit = (addr - DYNAMIC_BASE) as usize / 4;
        self.obj_marks[bit / 64] |= 1 << (bit % 64);
        let first = (addr - DYNAMIC_BASE) / LINE_BYTES;
        let last = (addr + size_bytes - 1 - DYNAMIC_BASE) / LINE_BYTES;
        for line in first..=last {
            self.line_marks[line as usize] = true;
        }
    }

    fn is_candidate(&self, addr: u32) -> bool {
        self.candidates[((addr - DYNAMIC_BASE) / BLOCK_BYTES) as usize]
    }

    /// Process one value: mark its target (and the lines it covers), or
    /// evacuate it out of a candidate block, returning the value to store
    /// back (the forwarded pointer when the target moved).
    fn process(&mut self, v: Value) -> Value {
        if !v.is_ptr() || !self.in_region(v.addr()) {
            return v;
        }
        let addr = v.addr();
        if self.is_marked(addr) {
            return v;
        }
        let first = self.heap.load_raw(addr, CTX, self.sink);
        self.counters
            .charge(InstrClass::Collector, costs::PER_WORD_SCANNED);
        let as_value = Value::from_bits(first);
        if as_value.is_ptr() {
            // Already evacuated: the header slot holds the forwarding
            // pointer.
            return as_value;
        }
        let header = Header::from_bits(first);
        let size = header.size_words();
        if self.is_candidate(addr) {
            if let Some((free, hlimit)) = self.headroom {
                if free + 4 * size <= hlimit {
                    let dst = free;
                    self.heap.init_store(dst, first, CTX, self.sink);
                    for i in 1..size {
                        let w = self.heap.load_raw(addr + 4 * i, CTX, self.sink);
                        self.heap.init_store(dst + 4 * i, w, CTX, self.sink);
                    }
                    self.heap
                        .store_raw(addr, Value::ptr(dst).bits(), CTX, self.sink);
                    self.headroom = Some((dst + 4 * size, hlimit));
                    self.counters.charge(
                        InstrClass::Collector,
                        costs::PER_OBJECT_COPIED + costs::PER_WORD_COPIED * size as u64,
                    );
                    self.bytes_copied += 4 * size as u64;
                    self.objects_moved += 1;
                    self.mark_object(dst, 4 * size);
                    self.stack.push(dst);
                    return Value::ptr(dst);
                }
            }
            // Headroom exhausted (or never available): fall through and
            // mark in place — evacuation is opportunistic, never required.
        }
        self.mark_object(addr, 4 * size);
        self.counters
            .charge(InstrClass::Collector, costs::PER_OBJECT_MARKED);
        self.stack.push(addr);
        v
    }

    /// Process one slot in place, rewriting it if its target moved.
    fn process_slot(&mut self, slot: u32) {
        let v = Value::from_bits(self.heap.load_raw(slot, CTX, self.sink));
        self.counters
            .charge(InstrClass::Collector, costs::PER_WORD_SCANNED);
        let nv = self.process(v);
        if nv != v {
            self.heap.store_raw(slot, nv.bits(), CTX, self.sink);
        }
    }

    /// Scan the pointer slots of the (marked or evacuated) object at
    /// `addr`.
    fn scan_object(&mut self, addr: u32) {
        let header = Header::from_bits(self.heap.load_raw(addr, CTX, self.sink));
        self.counters
            .charge(InstrClass::Collector, costs::PER_WORD_SCANNED);
        let len = header.len();
        let scanned = if header.kind().is_raw() {
            header.kind().scanned_prefix().min(len)
        } else {
            len
        };
        for i in 0..scanned {
            self.process_slot(addr + 4 * (1 + i));
        }
    }

    fn drain(&mut self) {
        while let Some(addr) = self.stack.pop() {
            self.scan_object(addr);
        }
    }
}

impl Collector for ImmixCollector {
    fn install(&mut self, heap: &mut Heap) {
        heap.set_alloc_region(DYNAMIC_BASE, DYNAMIC_BASE, DYNAMIC_BASE);
        self.spans = vec![(DYNAMIC_BASE, self.limit())];
        self.candidates.fill(false);
        self.line_marks.fill(false);
        self.obj_marks.fill(0);
        self.high_water = DYNAMIC_BASE;
    }

    fn prepare_alloc<S: TraceSink>(&mut self, heap: &mut Heap, bytes: u32, _sink: &mut S) -> bool {
        if heap.dynamic_free() >= bytes {
            return true;
        }
        let Some(i) = self.spans.iter().position(|&(b, l)| l - b >= bytes) else {
            return false;
        };
        // Hand out at most a block at a time (more for an over-sized
        // request), so reclamation accounting tracks the allocation
        // frontier instead of the whole wilderness.
        let (base, limit) = self.spans[i];
        let want = bytes.div_ceil(LINE_BYTES) * LINE_BYTES;
        let piece_end = limit.min(base + want.max(BLOCK_BYTES));
        if piece_end == limit {
            self.spans.remove(i);
        } else {
            self.spans[i].0 = piece_end;
        }
        heap.set_alloc_region(base, base, piece_end);
        self.high_water = self.high_water.max(piece_end);
        true
    }

    fn collect<S: TraceSink>(
        &mut self,
        heap: &mut Heap,
        roots: &mut Roots<'_>,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        let _pause = probe::phase("gc_major");
        counters.charge(InstrClass::Collector, costs::PER_COLLECTION);
        // Retire the current bump span: nothing walks the heap linearly,
        // so the abandoned tail needs no filler — its lines simply come
        // back as free lines.
        let (_, top, _) = heap.alloc_region();
        heap.set_alloc_region(top, top, top);

        // Withhold headroom for opportunistic evacuation when any block
        // is flagged: the last (highest-addressed) remaining free span of
        // at least a block.
        let headroom = if self.candidates.iter().any(|&c| c) {
            self.spans
                .iter()
                .rposition(|&(b, l)| l - b >= BLOCK_BYTES)
                .map(|i| {
                    let (b, l) = self.spans[i];
                    (b, l.min(b + BLOCK_BYTES))
                })
        } else {
            None
        };

        self.line_marks.fill(false);
        self.obj_marks.fill(0);
        let mut trace = Trace {
            heap,
            sink,
            counters,
            limit: DYNAMIC_BASE + self.heap_bytes,
            candidates: &self.candidates,
            line_marks: &mut self.line_marks,
            obj_marks: &mut self.obj_marks,
            headroom,
            stack: Vec::new(),
            bytes_copied: 0,
            objects_moved: 0,
        };
        for r in roots.registers.iter_mut() {
            *r = trace.process(*r);
        }
        for &(start, end) in &roots.flat_ranges {
            let mut p = start;
            while p < end {
                trace.process_slot(p);
                p += 4;
            }
        }
        for &(start, end) in &roots.object_ranges {
            let mut p = start;
            while p < end {
                trace.scan_object(p);
                p += Header::from_bits(trace.heap.peek(p)).size_bytes();
            }
        }
        trace.drain();
        let bytes_copied = trace.bytes_copied;
        let objects_moved = trace.objects_moved;
        if let Some((free, _)) = trace.headroom {
            self.high_water = self.high_water.max(free);
        }

        // Reclamation: walk the line table only — no heap traffic. Free
        // spans are maximal runs of unmarked lines; candidate blocks for
        // the next cycle are the fragmented ones (several holes below the
        // allocation frontier).
        let frontier_line = (self.high_water - DYNAMIC_BASE).div_ceil(LINE_BYTES) as usize;
        self.spans.clear();
        let mut reclaimed = 0u64;
        let mut run: Option<usize> = None;
        for line in 0..self.line_marks.len() {
            counters.charge(InstrClass::Collector, costs::PER_LINE_SWEPT);
            if self.line_marks[line] {
                if let Some(start) = run.take() {
                    self.push_span(start, line);
                }
            } else {
                if line < frontier_line {
                    reclaimed += 1;
                }
                run.get_or_insert(line);
            }
        }
        if let Some(start) = run.take() {
            self.push_span(start, self.line_marks.len());
        }
        for block in 0..self.candidates.len() {
            let lines = &self.line_marks
                [block * LINES_PER_BLOCK as usize..(block + 1) * LINES_PER_BLOCK as usize];
            let mut holes = 0u32;
            let mut in_hole = false;
            let mut any_live = false;
            for &m in lines {
                if m {
                    any_live = true;
                    in_hole = false;
                } else if !in_hole {
                    in_hole = true;
                    holes += 1;
                }
            }
            self.candidates[block] = any_live && holes >= EVAC_HOLE_THRESHOLD;
        }

        self.stats.collections += 1;
        self.stats.major_collections += 1;
        self.stats.bytes_copied += bytes_copied;
        self.stats.bytes_swept += reclaimed * LINE_BYTES as u64;
        self.stats.lines_reclaimed += reclaimed;
        probe!(Counter::GcMajorCollections);
        probe!(Counter::GcBytesCopied, bytes_copied);
        probe!(Counter::GcBytesSwept, reclaimed * LINE_BYTES as u64);
        probe!(Counter::GcLinesReclaimed, reclaimed);
        if objects_moved > 0 {
            // Evacuation moved objects, so address-hashed structures must
            // rehash — same ΔI_prog mechanism as the copying collectors.
            heap.bump_gc_epoch();
        }
    }

    fn stats(&self) -> &GcStats {
        &self.stats
    }

    fn name(&self) -> String {
        let k = self.heap_bytes >> 10;
        if k >= 1024 {
            format!("immix/{}m", k >> 10)
        } else {
            format!("immix/{k}k")
        }
    }
}

impl ImmixCollector {
    fn push_span(&mut self, first_line: usize, end_line: usize) {
        let base = DYNAMIC_BASE + first_line as u32 * LINE_BYTES;
        let limit = DYNAMIC_BASE + end_line as u32 * LINE_BYTES;
        self.spans.push((base, limit));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_heap::{HeapConfig, ObjKind};
    use cachegc_trace::{NullSink, RefCounter};

    const M: Context = Context::Mutator;

    fn make_list(heap: &mut Heap, n: i32) -> Value {
        let mut sink = NullSink;
        let mut head = Value::nil();
        for i in (0..n).rev() {
            head = heap
                .alloc(ObjKind::Pair, &[Value::fixnum(i), head], M, &mut sink)
                .unwrap();
        }
        head
    }

    fn read_list(heap: &Heap, mut v: Value) -> Vec<i32> {
        let mut sink = NullSink;
        let mut out = Vec::new();
        while v.is_ptr() {
            out.push(heap.load(v.addr() + 4, M, &mut sink).as_fixnum());
            v = heap.load(v.addr() + 8, M, &mut sink);
        }
        out
    }

    fn fresh(bytes: u32) -> (Heap, ImmixCollector) {
        let mut heap = Heap::new(HeapConfig::unbounded());
        let mut gc = ImmixCollector::new(bytes);
        gc.install(&mut heap);
        let mut sink = NullSink;
        assert!(gc.prepare_alloc(&mut heap, 16, &mut sink));
        (heap, gc)
    }

    #[test]
    fn collection_preserves_live_data_and_reclaims_lines() {
        let (mut heap, mut gc) = fresh(8 * BLOCK_BYTES);
        let mut sink = NullSink;
        let live = make_list(&mut heap, 100);
        for _ in 0..1000 {
            // The VM's discipline: reserve before allocating, so the
            // collector hands out fresh blocks as bump spans fill.
            assert!(gc.prepare_alloc(&mut heap, 10 * 12, &mut sink));
            make_list(&mut heap, 10);
        }
        let mut regs = [live];
        let mut roots = Roots::registers_only(&mut regs);
        let mut counters = Counters::new();
        gc.collect(&mut heap, &mut roots, &mut counters, &mut sink);
        assert_eq!(
            read_list(&heap, regs[0]),
            (0..100).collect::<Vec<_>>(),
            "live list survives"
        );
        assert_eq!(gc.stats().collections, 1);
        assert!(gc.stats().lines_reclaimed > 0, "garbage lines recovered");
        assert!(counters.collector() > 0);
        // First cycle never evacuates: no candidates existed yet.
        assert_eq!(gc.stats().bytes_copied, 0);
        assert_eq!(heap.gc_epoch(), 0, "no motion, no epoch bump");
    }

    #[test]
    fn allocation_reuses_reclaimed_lines() {
        let (mut heap, mut gc) = fresh(2 * BLOCK_BYTES);
        let mut sink = NullSink;
        let live = make_list(&mut heap, 20);
        make_list(&mut heap, 2000); // garbage spanning many lines
        let mut regs = [live];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(heap.dynamic_free(), 0, "bump span retired");
        assert!(gc.prepare_alloc(&mut heap, 12, &mut sink));
        let p = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(1), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        assert!(
            p.addr() < DYNAMIC_BASE + 2 * BLOCK_BYTES,
            "reuses reclaimed lines"
        );
        assert_eq!(read_list(&heap, regs[0]), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn lines_holding_live_objects_are_never_handed_out() {
        let (mut heap, mut gc) = fresh(2 * BLOCK_BYTES);
        let mut sink = NullSink;
        // Pin widely-spaced live objects so most lines between them free.
        let mut keep = Vec::new();
        for i in 0..40 {
            keep.push(make_list(&mut heap, 1));
            if i % 2 == 0 {
                make_list(&mut heap, 40); // garbage between pins
            }
        }
        let mut regs: Vec<Value> = keep.clone();
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        // Every freed span must avoid every line a live object touches.
        for &(b, l) in &gc.spans {
            for &v in &regs {
                let a = v.addr();
                assert!(
                    a + 12 <= b || a >= l,
                    "span {b:#x}..{l:#x} overlaps live object {a:#x}"
                );
            }
        }
        // Exhaust the heap through the collector and confirm integrity.
        while gc.prepare_alloc(&mut heap, 12, &mut sink) {
            if heap
                .alloc(
                    ObjKind::Pair,
                    &[Value::fixnum(7), Value::nil()],
                    M,
                    &mut sink,
                )
                .is_err()
            {
                break;
            }
        }
        for (i, &v) in regs.iter().enumerate() {
            assert_eq!(read_list(&heap, v), vec![0], "pin {i} intact");
        }
    }

    #[test]
    fn fragmented_blocks_are_evacuated_opportunistically() {
        let (mut heap, mut gc) = fresh(8 * BLOCK_BYTES);
        let mut sink = NullSink;
        // Fragment the first blocks: alternating live pins and garbage.
        let mut keep = Vec::new();
        for _ in 0..32 {
            keep.push(make_list(&mut heap, 4));
            make_list(&mut heap, 60); // ~720 bytes of garbage: several lines
        }
        let mut regs: Vec<Value> = keep.clone();
        {
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        }
        assert!(
            gc.candidates.iter().any(|&c| c),
            "fragmented blocks flagged as candidates"
        );
        let before = regs.clone();
        {
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        }
        assert!(gc.stats().bytes_copied > 0, "second cycle evacuates");
        assert!(heap.gc_epoch() > 0, "motion bumps the epoch");
        assert!(
            regs.iter().zip(&before).any(|(a, b)| a != b),
            "some root moved"
        );
        for &v in &regs {
            assert_eq!(read_list(&heap, v), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn shared_structure_and_cycles_survive_evacuation() {
        let (mut heap, mut gc) = fresh(4 * BLOCK_BYTES);
        let mut sink = NullSink;
        let shared = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(7), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        let a = heap
            .alloc(ObjKind::Pair, &[shared, Value::nil()], M, &mut sink)
            .unwrap();
        let b = heap
            .alloc(ObjKind::Pair, &[shared, a], M, &mut sink)
            .unwrap();
        heap.store(a.addr() + 8, b, M, &mut sink); // cycle a <-> b
        let mut regs = [a, b];
        // Force candidates artificially to exercise the evacuation path
        // for every block, with garbage creating the headroom.
        make_list(&mut heap, 2000);
        {
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        }
        gc.candidates.fill(true);
        {
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        }
        assert!(gc.stats().bytes_copied > 0, "forced evacuation ran");
        let (a2, b2) = (regs[0], regs[1]);
        let car_a = heap.load(a2.addr() + 4, M, &mut sink);
        let car_b = heap.load(b2.addr() + 4, M, &mut sink);
        assert_eq!(car_a, car_b, "sharing preserved");
        assert_eq!(heap.load(a2.addr() + 8, M, &mut sink), b2, "cycle intact");
        assert_eq!(heap.load(b2.addr() + 8, M, &mut sink), a2);
        assert_eq!(
            heap.load(car_a.addr() + 4, M, &mut sink),
            Value::fixnum(7),
            "shared child intact"
        );
    }

    #[test]
    fn raw_payloads_survive_uninterpreted() {
        let (mut heap, mut gc) = fresh(2 * BLOCK_BYTES);
        let mut sink = NullSink;
        let tricky = f64::from_bits((DYNAMIC_BASE as u64) << 32 | (DYNAMIC_BASE | 1) as u64);
        let f = heap.alloc_flonum(tricky, M, &mut sink).unwrap();
        let s = heap
            .alloc_string("pointer-like \u{1} bytes", M, &mut sink)
            .unwrap();
        let mut regs = [f, s];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(heap.load_flonum(regs[0], M, &mut sink), tricky);
        assert_eq!(
            heap.load_string(regs[1], M, &mut sink),
            "pointer-like \u{1} bytes"
        );
    }

    #[test]
    fn stack_and_static_roots_are_scanned() {
        use cachegc_heap::AllocMode;
        use cachegc_trace::{STACK_BASE, STATIC_BASE};
        let (mut heap, mut gc) = fresh(2 * BLOCK_BYTES);
        let mut sink = NullSink;
        heap.set_mode(AllocMode::Static);
        let svec = heap.alloc_vector(2, Value::nil(), M, &mut sink).unwrap();
        heap.set_mode(AllocMode::Dynamic);
        let from_static = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(7), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        let from_stack = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(8), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        heap.store(svec.addr() + 4, from_static, M, &mut sink);
        heap.store(STACK_BASE, from_stack, M, &mut sink);
        let mut regs = [];
        let mut roots = Roots::registers_only(&mut regs);
        roots.flat_ranges.push((STACK_BASE, STACK_BASE + 4));
        roots.object_ranges.push((STATIC_BASE, heap.static_top()));
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(
            heap.load(
                heap.load(svec.addr() + 4, M, &mut sink).addr() + 4,
                M,
                &mut sink
            ),
            Value::fixnum(7)
        );
        assert_eq!(
            heap.load(heap.load(STACK_BASE, M, &mut sink).addr() + 4, M, &mut sink),
            Value::fixnum(8)
        );
    }

    #[test]
    fn collector_traffic_is_attributed_to_collector() {
        let (mut heap, mut gc) = fresh(2 * BLOCK_BYTES);
        let mut sink = RefCounter::new();
        let live = make_list(&mut heap, 50);
        let mutator_refs = sink.by_context(M);
        let mut regs = [live];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(sink.by_context(M), mutator_refs, "GC adds no mutator refs");
        assert!(
            sink.by_context(Context::Collector) >= 50 * 3,
            "mark trace reads"
        );
    }

    #[test]
    fn successive_collections_are_stable() {
        let (mut heap, mut gc) = fresh(2 * BLOCK_BYTES);
        let mut sink = NullSink;
        let live = make_list(&mut heap, 10);
        let mut regs = [live];
        for i in 1..=4u64 {
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
            assert_eq!(gc.stats().collections, i);
            assert_eq!(read_list(&heap, regs[0]), (0..10).collect::<Vec<_>>());
            assert!(gc.prepare_alloc(&mut heap, 64, &mut sink));
        }
    }
}
