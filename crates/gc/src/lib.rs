//! Garbage collectors for the cachegc Scheme system.
//!
//! Five collection strategies:
//!
//! * **No collection** ([`NoCollector`]) — the §5 control experiment: data
//!   objects are "allocated linearly in a single contiguous area" and never
//!   reclaimed.
//! * **Cheney semispace** ([`CheneyCollector`]) — the "simple, efficient, and
//!   infrequently-run Cheney-style compacting semispace collector" measured
//!   in §6, with 16 MB semispaces in the paper's configuration.
//! * **Generational** ([`GenerationalCollector`]) — a two-generation
//!   compacting collector with a remembered set maintained by a write
//!   barrier. With a large nursery this is the "simple and infrequently-run
//!   generational compacting collector" the paper recommends; with a
//!   cache-sized nursery it is the *aggressive* collector of Wilson et al.
//!   that the paper argues against (§6).
//! * **Immix-style mark-region** ([`ImmixCollector`]) — the heap carved
//!   into blocks of 128-byte lines, bump allocation into runs of free
//!   lines, single-pass marking that sets line marks, line-granularity
//!   reclamation with no heap sweep traffic, and opportunistic evacuation
//!   of fragmented blocks. The design the paper's era didn't have; it lets
//!   the §5 cache lens compare mark-region locality against copying.
//! * **Mark-sweep free-list** ([`MarkSweepCollector`]) — the classic
//!   non-moving baseline: mark from the roots, sweep the heap into
//!   segregated size-class free lists, allocate by carving spans from
//!   them. No motion means no forwarding, no `ΔI_prog` rehash cost, and
//!   no compaction locality.
//!
//! All collector memory traffic is emitted into the trace with
//! [`Context::Collector`](cachegc_trace::Context), so a cache simulation
//! attributes `M_gc` correctly, and collector work is charged to `I_gc`
//! through [`Counters`](cachegc_trace::Counters).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cheney;
mod copier;
mod generational;
mod immix;
mod marksweep;
mod roots;
mod stats;

pub use cheney::CheneyCollector;
pub use copier::costs;
pub use generational::GenerationalCollector;
pub use immix::ImmixCollector;
pub use marksweep::MarkSweepCollector;
pub use roots::Roots;
pub use stats::GcStats;

use cachegc_heap::{Heap, Value};
use cachegc_trace::{Counters, TraceSink};

/// A garbage collector driving the heap's dynamic region.
///
/// The VM calls [`Collector::install`] once at startup (the collector
/// configures the heap's allocation region), [`Collector::collect`] whenever
/// allocation fails, and [`Collector::note_store`] on every mutator store
/// into a heap object (the write barrier).
pub trait Collector {
    /// Configure the heap's dynamic allocation region.
    fn install(&mut self, heap: &mut Heap);

    /// Collect garbage, scanning and updating `roots` in place.
    fn collect<S: TraceSink>(
        &mut self,
        heap: &mut Heap,
        roots: &mut Roots<'_>,
        counters: &mut Counters,
        sink: &mut S,
    );

    /// Make at least `bytes` allocatable without collecting, returning
    /// `false` if the collector cannot (the VM then collects and asks
    /// again). The default — right for bump allocators whose whole free
    /// region is the allocation region — just checks the heap's free
    /// space. Free-list collectors override this to install a fresh span
    /// as the heap's allocation region; any trace traffic that costs
    /// (sealing an abandoned span tail) goes to `sink` as collector
    /// traffic.
    fn prepare_alloc<S: TraceSink>(&mut self, heap: &mut Heap, bytes: u32, _sink: &mut S) -> bool {
        heap.dynamic_free() >= bytes
    }

    /// Write-barrier hook: the mutator stored `val` into the object slot at
    /// `addr`. The default does nothing.
    #[inline]
    fn note_store(&mut self, _addr: u32, _val: Value) {}

    /// Instructions the write barrier costs the mutator per noted store
    /// (charged to the program by the VM).
    fn barrier_cost(&self) -> u64 {
        0
    }

    /// Cumulative collection statistics.
    fn stats(&self) -> &GcStats;

    /// A short human-readable name ("none", "cheney/16m", ...).
    fn name(&self) -> String;
}

/// The §5 control configuration: no collection at all. [`collect`]
/// panics — with an unbounded heap it is never called unless the dynamic
/// address range itself (1 GB) is exhausted.
///
/// [`collect`]: Collector::collect
#[derive(Debug, Default)]
pub struct NoCollector {
    stats: GcStats,
}

impl NoCollector {
    /// Create the no-op collector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Collector for NoCollector {
    fn install(&mut self, _heap: &mut Heap) {}

    fn collect<S: TraceSink>(
        &mut self,
        _heap: &mut Heap,
        _roots: &mut Roots<'_>,
        _counters: &mut Counters,
        _sink: &mut S,
    ) {
        panic!("allocation failed with garbage collection disabled");
    }

    fn stats(&self) -> &GcStats {
        &self.stats
    }

    fn name(&self) -> String {
        "none".to_string()
    }
}
