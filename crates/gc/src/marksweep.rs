//! A non-moving mark-sweep collector with segregated size-class free lists.
//!
//! The baseline the paper's copying collectors are implicitly compared
//! against: mark the live graph from the roots, sweep the heap in address
//! order rebuilding free lists, and allocate by carving bump spans out of
//! free-list entries. Nothing ever moves, so there are no forwarding
//! pointers, no `ΔI_prog` rehash cost (the GC epoch never advances), and
//! no compaction — allocation order and fragmentation are what the cache
//! sees.
//!
//! The heap's bump allocator only knows one contiguous region, so the
//! free-list discipline is expressed through [`Collector::prepare_alloc`]:
//! the collector installs one free span at a time as the heap's allocation
//! region and seals the abandoned tail of the previous span with a filler
//! object so the sweep's header walk stays well-formed.

use cachegc_heap::{Header, Heap, ObjKind, Value};
use cachegc_telemetry::{probe, Counter};
use cachegc_trace::{Context, Counters, InstrClass, TraceSink, DYNAMIC_BASE, DYNAMIC_SECOND_BASE};

use crate::copier::costs;
use crate::roots::Roots;
use crate::stats::GcStats;
use crate::Collector;

const CTX: Context = Context::Collector;

/// Free spans are binned by `floor(log2(bytes))`; 32 classes cover every
/// representable span size.
const CLASSES: usize = 32;

/// Filler objects sealing abandoned span tails are raw-payload flonums:
/// the sweep walks over them by header size and the marker never visits
/// them (they are unreachable by construction).
const FILLER: ObjKind = ObjKind::Flonum;

/// The non-moving mark-sweep free-list collector.
#[derive(Debug)]
pub struct MarkSweepCollector {
    heap_bytes: u32,
    /// Segregated free lists: `classes[k]` holds spans of `[2^k, 2^{k+1})`
    /// bytes, each kept in ascending address order (sweeping rebuilds them
    /// in address order; allocation preserves it).
    classes: Vec<Vec<(u32, u32)>>,
    /// One mark bit per heap word, indexed by `(addr - DYNAMIC_BASE) / 4`.
    marks: Vec<u64>,
    stats: GcStats,
}

impl MarkSweepCollector {
    /// Create a collector managing a heap of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero, not word-aligned, or larger than the
    /// first dynamic address region.
    pub fn new(bytes: u32) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(4),
            "heap size must be a positive word multiple"
        );
        assert!(
            bytes <= DYNAMIC_SECOND_BASE - DYNAMIC_BASE,
            "heap larger than the dynamic region"
        );
        MarkSweepCollector {
            heap_bytes: bytes,
            classes: vec![Vec::new(); CLASSES],
            marks: vec![0; (bytes as usize / 4).div_ceil(64)],
            stats: GcStats::new(),
        }
    }

    /// Managed heap size in bytes.
    pub fn heap_bytes(&self) -> u32 {
        self.heap_bytes
    }

    fn limit(&self) -> u32 {
        DYNAMIC_BASE + self.heap_bytes
    }

    fn in_region(&self, addr: u32) -> bool {
        (DYNAMIC_BASE..self.limit()).contains(&addr)
    }

    fn class_of(bytes: u32) -> usize {
        debug_assert!(bytes >= 4);
        (31 - bytes.leading_zeros()) as usize
    }

    fn is_marked(&self, addr: u32) -> bool {
        let bit = (addr - DYNAMIC_BASE) as usize / 4;
        self.marks[bit / 64] >> (bit % 64) & 1 != 0
    }

    fn set_mark(&mut self, addr: u32) {
        let bit = (addr - DYNAMIC_BASE) as usize / 4;
        self.marks[bit / 64] |= 1 << (bit % 64);
    }

    /// Take the best free span for a `bytes` request: first fit within the
    /// request's own class, then the lowest-addressed span of the smallest
    /// class that guarantees a fit. Deterministic by construction.
    fn take_span(&mut self, bytes: u32) -> Option<(u32, u32)> {
        let want = bytes.max(4);
        let k = Self::class_of(want);
        if let Some(i) = self.classes[k].iter().position(|&(b, l)| l - b >= want) {
            return Some(self.classes[k].remove(i));
        }
        for class in &mut self.classes[k + 1..] {
            if !class.is_empty() {
                return Some(class.remove(0));
            }
        }
        None
    }

    /// Seal the unallocated tail of the heap's current allocation region
    /// with filler objects and retire the region, so the sweep's header
    /// walk never reads an uninitialized word.
    fn seal_tail<S: TraceSink>(&mut self, heap: &mut Heap, sink: &mut S) {
        let (_, top, limit) = heap.alloc_region();
        let mut p = top;
        while p < limit {
            let words = (limit - p) / 4;
            let len = (words - 1).min(Header::MAX_LEN);
            heap.store_raw(p, Header::new(FILLER, len).bits(), CTX, sink);
            p += 4 * (1 + len);
        }
        heap.set_alloc_region(top, top, top);
    }

    /// Mark `v`'s target if it is an unmarked heap object, pushing it for
    /// scanning.
    fn mark_value(&mut self, v: Value, stack: &mut Vec<u32>, counters: &mut Counters) {
        if v.is_ptr() && self.in_region(v.addr()) && !self.is_marked(v.addr()) {
            self.set_mark(v.addr());
            stack.push(v.addr());
            counters.charge(InstrClass::Collector, costs::PER_OBJECT_MARKED);
        }
    }

    /// Scan one object's pointer slots, marking unmarked children.
    fn scan_object<S: TraceSink>(
        &mut self,
        addr: u32,
        heap: &Heap,
        stack: &mut Vec<u32>,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        let header = Header::from_bits(heap.load_raw(addr, CTX, sink));
        counters.charge(InstrClass::Collector, costs::PER_WORD_SCANNED);
        let len = header.len();
        let scanned = if header.kind().is_raw() {
            header.kind().scanned_prefix().min(len)
        } else {
            len
        };
        for i in 0..scanned {
            let v = Value::from_bits(heap.load_raw(addr + 4 * (1 + i), CTX, sink));
            counters.charge(InstrClass::Collector, costs::PER_WORD_SCANNED);
            self.mark_value(v, stack, counters);
        }
    }
}

impl Collector for MarkSweepCollector {
    fn install(&mut self, heap: &mut Heap) {
        heap.set_alloc_region(DYNAMIC_BASE, DYNAMIC_BASE, self.limit());
        self.classes.iter_mut().for_each(Vec::clear);
        self.marks.fill(0);
    }

    fn prepare_alloc<S: TraceSink>(&mut self, heap: &mut Heap, bytes: u32, sink: &mut S) -> bool {
        if heap.dynamic_free() >= bytes {
            return true;
        }
        let Some((base, limit)) = self.take_span(bytes) else {
            return false;
        };
        self.seal_tail(heap, sink);
        heap.set_alloc_region(base, base, limit);
        true
    }

    fn collect<S: TraceSink>(
        &mut self,
        heap: &mut Heap,
        roots: &mut Roots<'_>,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        let _pause = probe::phase("gc_major");
        counters.charge(InstrClass::Collector, costs::PER_COLLECTION);
        // Retire the current allocation span so every byte of the heap is
        // either a known free span or a walkable run of objects.
        self.seal_tail(heap, sink);
        self.marks.fill(0);

        // Mark: a depth-first trace over the live graph. No motion, so
        // roots are read (and for stack/static ranges, scanned) but never
        // rewritten.
        let mut stack: Vec<u32> = Vec::new();
        for &r in roots.registers.iter() {
            self.mark_value(r, &mut stack, counters);
        }
        for &(start, end) in &roots.flat_ranges {
            let mut p = start;
            while p < end {
                let v = Value::from_bits(heap.load_raw(p, CTX, sink));
                counters.charge(InstrClass::Collector, costs::PER_WORD_SCANNED);
                self.mark_value(v, &mut stack, counters);
                p += 4;
            }
        }
        for &(start, end) in &roots.object_ranges {
            let mut p = start;
            while p < end {
                self.scan_object(p, heap, &mut stack, counters, sink);
                p += Header::from_bits(heap.peek(p)).size_bytes();
            }
        }
        while let Some(addr) = stack.pop() {
            self.scan_object(addr, heap, &mut stack, counters, sink);
        }

        // Sweep: walk the whole heap in address order, coalescing dead
        // runs (and the previous free spans between them) into fresh
        // spans, binned by size class. Rebuilding from scratch in walk
        // order keeps every class list address-sorted.
        let old_free: Vec<(u32, u32)> = {
            let mut all: Vec<(u32, u32)> = self.classes.iter().flatten().copied().collect();
            all.sort_unstable();
            all
        };
        self.classes.iter_mut().for_each(Vec::clear);
        let mut swept = 0u64;
        let mut run: Option<u32> = None;
        let mut next_free = old_free.iter().peekable();
        let mut new_spans: Vec<(u32, u32)> = Vec::new();
        let mut p = DYNAMIC_BASE;
        let end = self.limit();
        while p < end {
            if let Some(&&(b, l)) = next_free.peek() {
                if b == p {
                    // An already-free span: no memory traffic, just extend
                    // the current run over it.
                    run.get_or_insert(p);
                    p = l;
                    next_free.next();
                    continue;
                }
            }
            let header = Header::from_bits(heap.load_raw(p, CTX, sink));
            counters.charge(InstrClass::Collector, costs::PER_OBJECT_SWEPT);
            let size = header.size_bytes();
            if self.is_marked(p) {
                if let Some(start) = run.take() {
                    new_spans.push((start, p));
                }
            } else {
                swept += size as u64;
                run.get_or_insert(p);
            }
            p += size;
        }
        if let Some(start) = run.take() {
            new_spans.push((start, end));
        }
        for (b, l) in new_spans {
            self.classes[Self::class_of(l - b)].push((b, l));
        }

        self.stats.collections += 1;
        self.stats.major_collections += 1;
        self.stats.bytes_swept += swept;
        probe!(Counter::GcMajorCollections);
        probe!(Counter::GcBytesSwept, swept);
        // No motion: addresses are stable, so the GC epoch (which drives
        // address-hashed table rehashes, a ΔI_prog cost) never advances.
    }

    fn stats(&self) -> &GcStats {
        &self.stats
    }

    fn name(&self) -> String {
        let k = self.heap_bytes >> 10;
        if k >= 1024 {
            format!("marksweep/{}m", k >> 10)
        } else {
            format!("marksweep/{k}k")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_heap::HeapConfig;
    use cachegc_trace::{NullSink, RefCounter};

    const M: Context = Context::Mutator;

    fn make_list(heap: &mut Heap, n: i32) -> Value {
        let mut sink = NullSink;
        let mut head = Value::nil();
        for i in (0..n).rev() {
            head = heap
                .alloc(ObjKind::Pair, &[Value::fixnum(i), head], M, &mut sink)
                .unwrap();
        }
        head
    }

    fn read_list(heap: &Heap, mut v: Value) -> Vec<i32> {
        let mut sink = NullSink;
        let mut out = Vec::new();
        while v.is_ptr() {
            out.push(heap.load(v.addr() + 4, M, &mut sink).as_fixnum());
            v = heap.load(v.addr() + 8, M, &mut sink);
        }
        out
    }

    fn fresh(bytes: u32) -> (Heap, MarkSweepCollector) {
        let mut heap = Heap::new(HeapConfig::unbounded());
        let mut gc = MarkSweepCollector::new(bytes);
        gc.install(&mut heap);
        (heap, gc)
    }

    #[test]
    fn collection_preserves_live_data_in_place() {
        let (mut heap, mut gc) = fresh(1 << 20);
        let mut sink = NullSink;
        let live = make_list(&mut heap, 100);
        for _ in 0..1000 {
            make_list(&mut heap, 10);
        }
        let mut regs = [live];
        let mut roots = Roots::registers_only(&mut regs);
        let mut counters = Counters::new();
        gc.collect(&mut heap, &mut roots, &mut counters, &mut sink);
        assert_eq!(regs[0], live, "non-moving: roots unchanged");
        assert_eq!(read_list(&heap, live), (0..100).collect::<Vec<_>>());
        assert_eq!(gc.stats().collections, 1);
        assert_eq!(gc.stats().major_collections, 1);
        assert!(gc.stats().bytes_swept > 1000 * 10 * 12, "garbage swept");
        assert!(counters.collector() > 0);
        assert_eq!(heap.gc_epoch(), 0, "no motion, no epoch bump");
    }

    #[test]
    fn freed_memory_is_reallocated_from_the_free_lists() {
        let (mut heap, mut gc) = fresh(1 << 16);
        let mut sink = NullSink;
        let live = make_list(&mut heap, 8);
        make_list(&mut heap, 500); // garbage
        let mut regs = [live];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        // The heap's bump region was retired; the collector must be asked
        // for a span before allocating again.
        assert_eq!(heap.dynamic_free(), 0);
        assert!(gc.prepare_alloc(&mut heap, 12, &mut sink));
        let before_live = live;
        let p = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(9), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        assert!(gc.in_region(p.addr()), "allocation lands in a freed span");
        assert_eq!(read_list(&heap, before_live), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn exhaustion_is_reported_not_panicked() {
        let (mut heap, mut gc) = fresh(1 << 12);
        let mut sink = NullSink;
        // Fill the heap with live data.
        let live = make_list(&mut heap, 300);
        let mut regs = [live];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert!(
            !gc.prepare_alloc(&mut heap, 1 << 12, &mut sink),
            "no span can satisfy a full-heap request"
        );
    }

    #[test]
    fn sweep_coalesces_adjacent_garbage() {
        let (mut heap, mut gc) = fresh(1 << 16);
        let mut sink = NullSink;
        // live, then a large contiguous run of garbage, then live.
        let a = make_list(&mut heap, 1);
        make_list(&mut heap, 400);
        let b = make_list(&mut heap, 1);
        let mut regs = [a, b];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        // The 400 * 12-byte garbage run plus the sealed wilderness tail
        // coalesce; a request the size of the garbage run must fit.
        assert!(gc.prepare_alloc(&mut heap, 400 * 12, &mut sink));
    }

    #[test]
    fn raw_payloads_survive_uninterpreted() {
        let (mut heap, mut gc) = fresh(1 << 16);
        let mut sink = NullSink;
        let tricky = f64::from_bits((DYNAMIC_BASE as u64) << 32 | (DYNAMIC_BASE | 1) as u64);
        let f = heap.alloc_flonum(tricky, M, &mut sink).unwrap();
        let s = heap
            .alloc_string("pointer-like \u{1} bytes", M, &mut sink)
            .unwrap();
        let mut regs = [f, s];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(heap.load_flonum(regs[0], M, &mut sink), tricky);
        assert_eq!(
            heap.load_string(regs[1], M, &mut sink),
            "pointer-like \u{1} bytes"
        );
    }

    #[test]
    fn cycles_and_sharing_are_handled() {
        let (mut heap, mut gc) = fresh(1 << 16);
        let mut sink = NullSink;
        let a = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(1), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        let b = heap
            .alloc(ObjKind::Pair, &[Value::fixnum(2), a], M, &mut sink)
            .unwrap();
        heap.store(a.addr() + 8, b, M, &mut sink); // cycle
        let mut regs = [a];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(heap.load(a.addr() + 8, M, &mut sink), b);
        assert_eq!(heap.load(b.addr() + 8, M, &mut sink), a);
    }

    #[test]
    fn stack_and_static_roots_are_scanned() {
        use cachegc_heap::AllocMode;
        use cachegc_trace::{STACK_BASE, STATIC_BASE};
        let (mut heap, mut gc) = fresh(1 << 16);
        let mut sink = NullSink;
        heap.set_mode(AllocMode::Static);
        let svec = heap.alloc_vector(2, Value::nil(), M, &mut sink).unwrap();
        heap.set_mode(AllocMode::Dynamic);
        let from_static = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(7), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        let from_stack = heap
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(8), Value::nil()],
                M,
                &mut sink,
            )
            .unwrap();
        heap.store(svec.addr() + 4, from_static, M, &mut sink);
        heap.store(STACK_BASE, from_stack, M, &mut sink);
        let mut regs = [];
        let mut roots = Roots::registers_only(&mut regs);
        roots.flat_ranges.push((STACK_BASE, STACK_BASE + 4));
        roots.object_ranges.push((STATIC_BASE, heap.static_top()));
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(
            heap.load(from_static.addr() + 4, M, &mut sink),
            Value::fixnum(7)
        );
        assert_eq!(
            heap.load(from_stack.addr() + 4, M, &mut sink),
            Value::fixnum(8)
        );
        // Both survive: a full-heap span request must fail.
        assert!(!gc.prepare_alloc(&mut heap, 1 << 16, &mut sink));
    }

    #[test]
    fn collector_traffic_is_attributed_to_collector() {
        let (mut heap, mut gc) = fresh(1 << 16);
        let mut sink = RefCounter::new();
        let live = make_list(&mut heap, 50);
        let mutator_refs = sink.by_context(M);
        let mut regs = [live];
        let mut roots = Roots::registers_only(&mut regs);
        gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
        assert_eq!(sink.by_context(M), mutator_refs, "GC adds no mutator refs");
        assert!(
            sink.by_context(Context::Collector) >= 50 * 3,
            "mark reads + sweep header walk"
        );
    }

    #[test]
    fn successive_collections_are_stable() {
        let (mut heap, mut gc) = fresh(1 << 16);
        let mut sink = NullSink;
        let live = make_list(&mut heap, 10);
        let mut regs = [live];
        for i in 1..=4u64 {
            let mut roots = Roots::registers_only(&mut regs);
            gc.collect(&mut heap, &mut roots, &mut Counters::new(), &mut sink);
            assert_eq!(gc.stats().collections, i);
            assert_eq!(read_list(&heap, regs[0]), (0..10).collect::<Vec<_>>());
            assert!(gc.prepare_alloc(&mut heap, 64, &mut sink));
        }
        assert_eq!(heap.gc_epoch(), 0);
    }
}
