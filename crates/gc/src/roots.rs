//! Root sets.

use cachegc_heap::Value;

/// The mutator's roots, described to a collector.
///
/// Roots live in two places: in *simulated memory* (the procedure-call
/// stack and the static area), which the collector scans with traced
/// accesses, and in the VM's machine registers, which it scans for free
/// (registers are not memory).
#[derive(Debug)]
pub struct Roots<'a> {
    /// Address ranges `[start, end)` in which every word is a tagged
    /// [`Value`] (the value stack).
    pub flat_ranges: Vec<(u32, u32)>,
    /// Address ranges `[start, end)` containing a contiguous sequence of
    /// heap objects (the static area): walked header by header so raw
    /// payloads are skipped.
    pub object_ranges: Vec<(u32, u32)>,
    /// VM registers holding values; updated in place.
    pub registers: &'a mut [Value],
}

impl<'a> Roots<'a> {
    /// A root set with only registers.
    pub fn registers_only(registers: &'a mut [Value]) -> Self {
        Roots {
            flat_ranges: Vec::new(),
            object_ranges: Vec::new(),
            registers,
        }
    }
}
