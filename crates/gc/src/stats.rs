//! Collection statistics.

/// Cumulative statistics for one collector over a program run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Total collections (for a generational collector, minor + major).
    pub collections: u64,
    /// Minor (nursery) collections.
    pub minor_collections: u64,
    /// Major (full or old-generation) collections.
    pub major_collections: u64,
    /// Bytes of live data copied by the collector.
    pub bytes_copied: u64,
    /// Bytes promoted from the nursery to the old generation.
    pub bytes_promoted: u64,
    /// Write-barrier hooks taken (generational only).
    pub barrier_stores: u64,
    /// Entries added to the remembered set.
    pub remembered: u64,
    /// Bytes of dead memory reclaimed by sweeping (non-moving collectors).
    pub bytes_swept: u64,
    /// Free lines recovered by line-granularity reclamation (mark-region).
    pub lines_reclaimed: u64,
}

impl GcStats {
    /// Zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }
}
