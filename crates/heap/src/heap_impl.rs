//! The heap: traced memory access and linear allocation.

use std::error::Error;
use std::fmt;

use cachegc_trace::{
    Access, Context, Region, TraceSink, DYNAMIC_BASE, DYNAMIC_SECOND_BASE, STACK_BASE, STATIC_BASE,
};

use crate::object::{Header, ObjKind};
use crate::space::Memory;
use crate::value::Value;

/// Heap sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapConfig {
    /// Size in bytes of the dynamic allocation region. With a semispace
    /// collector this is the size of one semispace; without collection it
    /// is effectively unbounded.
    pub semispace_bytes: u32,
}

impl HeapConfig {
    /// No-collection configuration: the dynamic area spans its entire
    /// 1 GB address range, as in the paper's control experiment (§5).
    pub fn unbounded() -> Self {
        HeapConfig {
            semispace_bytes: DYNAMIC_SECOND_BASE - DYNAMIC_BASE,
        }
    }

    /// Semispaces of `bytes` each (the paper's §6 uses 16 MB).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero, unaligned, or larger than a dynamic region.
    pub fn semispaces(bytes: u32) -> Self {
        assert!(bytes > 0 && bytes.is_multiple_of(4), "bad semispace size");
        assert!(
            bytes <= DYNAMIC_SECOND_BASE - DYNAMIC_BASE,
            "semispace too large"
        );
        HeapConfig {
            semispace_bytes: bytes,
        }
    }
}

/// Where new objects go: the static area (program load time) or the dynamic
/// area (program run time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// Load-time allocation into the static area. Static blocks "exist when
    /// a program starts running" (§7).
    Static,
    /// Run-time linear allocation into the dynamic area.
    Dynamic,
}

/// The dynamic area is exhausted; the caller should collect garbage (or
/// give up, if collection is disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapFull {
    /// Words that could not be allocated.
    pub requested_words: u32,
}

impl fmt::Display for HeapFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dynamic area full (requested {} words)",
            self.requested_words
        )
    }
}

impl Error for HeapFull {}

/// The simulated Scheme heap.
///
/// All program-visible loads and stores go through [`Heap::load`] /
/// [`Heap::store`] and emit one [`Access`] each. Type dispatch on pointers
/// ([`Heap::header`]) is untraced, modeling the T system's practice of
/// encoding type information in pointer tags rather than re-reading headers.
#[derive(Debug)]
pub struct Heap {
    mem: Memory,
    mode: AllocMode,
    dyn_base: u32,
    dyn_top: u32,
    dyn_limit: u32,
    static_top: u32,
    gc_epoch: u64,
    total_allocated: u64,
    config: HeapConfig,
}

impl Heap {
    /// Create an empty heap with allocation in [`AllocMode::Dynamic`].
    pub fn new(config: HeapConfig) -> Self {
        Heap {
            mem: Memory::new(),
            mode: AllocMode::Dynamic,
            dyn_base: DYNAMIC_BASE,
            dyn_top: DYNAMIC_BASE,
            dyn_limit: DYNAMIC_BASE + config.semispace_bytes,
            static_top: STATIC_BASE,
            gc_epoch: 0,
            total_allocated: 0,
            config,
        }
    }

    /// The heap's configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Current allocation mode.
    pub fn mode(&self) -> AllocMode {
        self.mode
    }

    /// Switch allocation mode (the VM uses static mode while loading).
    pub fn set_mode(&mut self, mode: AllocMode) {
        self.mode = mode;
    }

    /// Direct access to the backing memory (untraced; used by collectors'
    /// bookkeeping and by tests).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable untraced access to the backing memory.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    // ------------------------------------------------------------------
    // Traced access
    // ------------------------------------------------------------------

    /// Load the value at `addr`, emitting a read event.
    #[inline]
    pub fn load<S: TraceSink>(&self, addr: u32, ctx: Context, sink: &mut S) -> Value {
        sink.access(Access::read(addr, ctx));
        Value::from_bits(self.mem.load(addr))
    }

    /// Load the raw word at `addr`, emitting a read event.
    #[inline]
    pub fn load_raw<S: TraceSink>(&self, addr: u32, ctx: Context, sink: &mut S) -> u32 {
        sink.access(Access::read(addr, ctx));
        self.mem.load(addr)
    }

    /// Store `val` at `addr`, emitting a write event.
    #[inline]
    pub fn store<S: TraceSink>(&mut self, addr: u32, val: Value, ctx: Context, sink: &mut S) {
        sink.access(Access::write(addr, ctx));
        self.mem.store(addr, val.bits());
    }

    /// Store the raw word at `addr`, emitting a write event.
    #[inline]
    pub fn store_raw<S: TraceSink>(&mut self, addr: u32, word: u32, ctx: Context, sink: &mut S) {
        sink.access(Access::write(addr, ctx));
        self.mem.store(addr, word);
    }

    /// Store to a freshly allocated word, emitting an initializing write.
    /// Initializing writes to dynamic addresses are what cause the paper's
    /// *allocation misses*.
    #[inline]
    pub fn init_store<S: TraceSink>(&mut self, addr: u32, word: u32, ctx: Context, sink: &mut S) {
        let ev = if Region::is_dynamic(addr) {
            Access::alloc_write(addr, ctx)
        } else {
            Access::write(addr, ctx)
        };
        sink.access(ev);
        self.mem.store(addr, word);
    }

    /// Untraced read, for simulator-internal inspection.
    #[inline]
    pub fn peek(&self, addr: u32) -> u32 {
        self.mem.load(addr)
    }

    /// The header of the object `ptr` points at (untraced: models pointer
    /// type tags, see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not a pointer or does not point at a header.
    #[inline]
    pub fn header(&self, ptr: Value) -> Header {
        Header::from_bits(self.mem.load(ptr.addr()))
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    fn bump(&mut self, words: u32) -> Result<u32, HeapFull> {
        let bytes = words * 4;
        match self.mode {
            AllocMode::Static => {
                let addr = self.static_top;
                assert!(addr + bytes <= STACK_BASE, "static area exhausted");
                self.static_top += bytes;
                Ok(addr)
            }
            AllocMode::Dynamic => {
                let addr = self.dyn_top;
                if addr
                    .checked_add(bytes)
                    .is_none_or(|end| end > self.dyn_limit)
                {
                    return Err(HeapFull {
                        requested_words: words,
                    });
                }
                self.dyn_top += bytes;
                self.total_allocated += bytes as u64;
                Ok(addr)
            }
        }
    }

    /// Allocate an object with the given tagged payload, initializing every
    /// word (header first, then payload in ascending address order, as §7
    /// describes).
    ///
    /// # Errors
    ///
    /// Returns [`HeapFull`] when the dynamic area cannot satisfy the
    /// request; the caller should collect and retry.
    pub fn alloc<S: TraceSink>(
        &mut self,
        kind: ObjKind,
        payload: &[Value],
        ctx: Context,
        sink: &mut S,
    ) -> Result<Value, HeapFull> {
        let addr = self.bump(1 + payload.len() as u32)?;
        self.init_store(
            addr,
            Header::new(kind, payload.len() as u32).bits(),
            ctx,
            sink,
        );
        for (i, v) in payload.iter().enumerate() {
            self.init_store(addr + 4 + 4 * i as u32, v.bits(), ctx, sink);
        }
        Ok(Value::ptr(addr))
    }

    /// Allocate an object whose payload is `lead` tagged values followed by
    /// `raw` untagged words (strings, flonums).
    ///
    /// # Errors
    ///
    /// Returns [`HeapFull`] when the dynamic area is exhausted.
    pub fn alloc_raw<S: TraceSink>(
        &mut self,
        kind: ObjKind,
        lead: &[Value],
        raw: &[u32],
        ctx: Context,
        sink: &mut S,
    ) -> Result<Value, HeapFull> {
        let len = (lead.len() + raw.len()) as u32;
        let addr = self.bump(1 + len)?;
        self.init_store(addr, Header::new(kind, len).bits(), ctx, sink);
        let mut p = addr + 4;
        for v in lead {
            self.init_store(p, v.bits(), ctx, sink);
            p += 4;
        }
        for w in raw {
            self.init_store(p, *w, ctx, sink);
            p += 4;
        }
        Ok(Value::ptr(addr))
    }

    /// Allocate a vector of `len` copies of `fill`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapFull`] when the dynamic area is exhausted.
    pub fn alloc_vector<S: TraceSink>(
        &mut self,
        len: u32,
        fill: Value,
        ctx: Context,
        sink: &mut S,
    ) -> Result<Value, HeapFull> {
        let addr = self.bump(1 + len)?;
        self.init_store(addr, Header::new(ObjKind::Vector, len).bits(), ctx, sink);
        for i in 0..len {
            self.init_store(addr + 4 + 4 * i, fill.bits(), ctx, sink);
        }
        Ok(Value::ptr(addr))
    }

    /// Allocate a boxed double.
    ///
    /// # Errors
    ///
    /// Returns [`HeapFull`] when the dynamic area is exhausted.
    pub fn alloc_flonum<S: TraceSink>(
        &mut self,
        x: f64,
        ctx: Context,
        sink: &mut S,
    ) -> Result<Value, HeapFull> {
        let bits = x.to_bits();
        self.alloc_raw(
            ObjKind::Flonum,
            &[],
            &[bits as u32, (bits >> 32) as u32],
            ctx,
            sink,
        )
    }

    /// Read a flonum's value (two traced loads).
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not a flonum.
    pub fn load_flonum<S: TraceSink>(&self, ptr: Value, ctx: Context, sink: &mut S) -> f64 {
        debug_assert_eq!(self.header(ptr).kind(), ObjKind::Flonum);
        let lo = self.load_raw(ptr.addr() + 4, ctx, sink) as u64;
        let hi = self.load_raw(ptr.addr() + 8, ctx, sink) as u64;
        f64::from_bits(hi << 32 | lo)
    }

    /// Allocate a string.
    ///
    /// # Errors
    ///
    /// Returns [`HeapFull`] when the dynamic area is exhausted.
    pub fn alloc_string<S: TraceSink>(
        &mut self,
        s: &str,
        ctx: Context,
        sink: &mut S,
    ) -> Result<Value, HeapFull> {
        let bytes = s.as_bytes();
        let mut raw = Vec::with_capacity(bytes.len().div_ceil(4));
        for chunk in bytes.chunks(4) {
            let mut w = 0u32;
            for (i, b) in chunk.iter().enumerate() {
                w |= (*b as u32) << (8 * i);
            }
            raw.push(w);
        }
        self.alloc_raw(
            ObjKind::String,
            &[Value::fixnum(bytes.len() as i32)],
            &raw,
            ctx,
            sink,
        )
    }

    /// Read a string's contents (traced loads, one per word).
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not a string or holds invalid UTF-8.
    pub fn load_string<S: TraceSink>(&self, ptr: Value, ctx: Context, sink: &mut S) -> String {
        debug_assert_eq!(self.header(ptr).kind(), ObjKind::String);
        let len = self.load(ptr.addr() + 4, ctx, sink).as_fixnum() as usize;
        let mut bytes = Vec::with_capacity(len);
        for i in 0..len.div_ceil(4) {
            let w = self.load_raw(ptr.addr() + 8 + 4 * i as u32, ctx, sink);
            for b in 0..4 {
                if bytes.len() < len {
                    bytes.push((w >> (8 * b)) as u8);
                }
            }
        }
        String::from_utf8(bytes).expect("corrupt string")
    }

    // ------------------------------------------------------------------
    // Collector interface
    // ------------------------------------------------------------------

    /// The current dynamic allocation region as `(base, top, limit)`.
    pub fn alloc_region(&self) -> (u32, u32, u32) {
        (self.dyn_base, self.dyn_top, self.dyn_limit)
    }

    /// Redirect dynamic allocation to `[base, limit)` with the bump pointer
    /// at `top`. Collectors call this to flip semispaces or install a
    /// nursery.
    ///
    /// # Panics
    ///
    /// Panics unless `base <= top <= limit`.
    pub fn set_alloc_region(&mut self, base: u32, top: u32, limit: u32) {
        assert!(base <= top && top <= limit, "bad alloc region");
        self.dyn_base = base;
        self.dyn_top = top;
        self.dyn_limit = limit;
    }

    /// Total dynamic bytes allocated over the program's lifetime (the
    /// "Alloc" column of the paper's §3 table).
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }

    /// Bytes still free in the dynamic region.
    pub fn dynamic_free(&self) -> u32 {
        self.dyn_limit - self.dyn_top
    }

    /// Bytes in use in the dynamic region.
    pub fn dynamic_used(&self) -> u32 {
        self.dyn_top - self.dyn_base
    }

    /// One past the last static byte allocated.
    pub fn static_top(&self) -> u32 {
        self.static_top
    }

    /// How many collections have completed. Address-hashed tables compare
    /// their stamp against this to know when to rehash (§6: "hash-table
    /// keys are computed from object addresses").
    pub fn gc_epoch(&self) -> u64 {
        self.gc_epoch
    }

    /// Record that a collection completed.
    pub fn bump_gc_epoch(&mut self) {
        self.gc_epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::{AccessKind, RefCounter};

    fn heap() -> Heap {
        Heap::new(HeapConfig::unbounded())
    }

    #[test]
    fn alloc_writes_header_and_payload_in_order() {
        let mut h = heap();
        let mut events = Vec::new();
        struct Rec<'a>(&'a mut Vec<Access>);
        impl TraceSink for Rec<'_> {
            fn access(&mut self, a: Access) {
                self.0.push(a);
            }
        }
        let p = h
            .alloc(
                ObjKind::Pair,
                &[Value::fixnum(1), Value::fixnum(2)],
                Context::Mutator,
                &mut Rec(&mut events),
            )
            .unwrap();
        assert_eq!(events.len(), 3);
        assert!(events
            .iter()
            .all(|e| e.kind == AccessKind::Write && e.alloc_init));
        assert_eq!(events[0].addr, p.addr());
        assert_eq!(events[1].addr, p.addr() + 4);
        assert_eq!(events[2].addr, p.addr() + 8);
        assert_eq!(h.header(p).kind(), ObjKind::Pair);
        assert_eq!(h.header(p).len(), 2);
    }

    #[test]
    fn allocation_is_linear_and_contiguous() {
        let mut h = heap();
        let mut sink = cachegc_trace::NullSink;
        let a = h
            .alloc(
                ObjKind::Pair,
                &[Value::nil(), Value::nil()],
                Context::Mutator,
                &mut sink,
            )
            .unwrap();
        let b = h
            .alloc(ObjKind::Cell, &[Value::nil()], Context::Mutator, &mut sink)
            .unwrap();
        assert_eq!(b.addr(), a.addr() + 12, "objects are adjacent");
        assert_eq!(h.total_allocated(), 12 + 8);
    }

    #[test]
    fn static_mode_allocates_in_static_area() {
        let mut h = heap();
        let mut sink = cachegc_trace::NullSink;
        h.set_mode(AllocMode::Static);
        let s = h
            .alloc_string("hello", Context::Mutator, &mut sink)
            .unwrap();
        assert_eq!(Region::of(s.addr()), Region::Static);
        assert_eq!(
            h.total_allocated(),
            0,
            "static allocation is not dynamic allocation"
        );
        h.set_mode(AllocMode::Dynamic);
        let p = h
            .alloc(ObjKind::Cell, &[s], Context::Mutator, &mut sink)
            .unwrap();
        assert_eq!(Region::of(p.addr()), Region::Dynamic);
    }

    #[test]
    fn heap_full_when_semispace_exhausted() {
        let mut h = Heap::new(HeapConfig::semispaces(64));
        let mut sink = cachegc_trace::NullSink;
        // 64 bytes = 16 words; a pair is 3 words, so 5 pairs fit.
        for _ in 0..5 {
            h.alloc(
                ObjKind::Pair,
                &[Value::nil(), Value::nil()],
                Context::Mutator,
                &mut sink,
            )
            .unwrap();
        }
        let err = h
            .alloc(
                ObjKind::Pair,
                &[Value::nil(), Value::nil()],
                Context::Mutator,
                &mut sink,
            )
            .unwrap_err();
        assert_eq!(err.requested_words, 3);
        assert_eq!(h.dynamic_free(), 4);
    }

    #[test]
    fn flonum_roundtrip() {
        let mut h = heap();
        let mut sink = cachegc_trace::NullSink;
        for x in [0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE] {
            let p = h.alloc_flonum(x, Context::Mutator, &mut sink).unwrap();
            assert_eq!(h.load_flonum(p, Context::Mutator, &mut sink), x);
        }
    }

    #[test]
    fn string_roundtrip() {
        let mut h = heap();
        let mut sink = cachegc_trace::NullSink;
        for s in [
            "",
            "a",
            "hello",
            "exactly8",
            "longer than eight bytes",
            "λambda",
        ] {
            let p = h.alloc_string(s, Context::Mutator, &mut sink).unwrap();
            assert_eq!(h.load_string(p, Context::Mutator, &mut sink), s);
        }
    }

    #[test]
    fn vector_fill_and_update() {
        let mut h = heap();
        let mut sink = RefCounter::new();
        let v = h
            .alloc_vector(10, Value::fixnum(0), Context::Mutator, &mut sink)
            .unwrap();
        assert_eq!(sink.alloc_writes(), 11);
        h.store(
            v.addr() + 4 * 3,
            Value::fixnum(9),
            Context::Mutator,
            &mut sink,
        );
        assert_eq!(
            h.load(v.addr() + 4 * 3, Context::Mutator, &mut sink),
            Value::fixnum(9)
        );
        assert_eq!(
            h.load(v.addr() + 4 * 4, Context::Mutator, &mut sink),
            Value::fixnum(0)
        );
    }

    #[test]
    fn stack_stores_are_not_alloc_inits() {
        let mut h = heap();
        let mut sink = RefCounter::new();
        h.init_store(
            STACK_BASE,
            Value::fixnum(1).bits(),
            Context::Mutator,
            &mut sink,
        );
        assert_eq!(sink.alloc_writes(), 0);
        assert_eq!(sink.writes(Context::Mutator), 1);
    }

    #[test]
    fn set_alloc_region_redirects_allocation() {
        let mut h = heap();
        let mut sink = cachegc_trace::NullSink;
        h.set_alloc_region(
            DYNAMIC_SECOND_BASE,
            DYNAMIC_SECOND_BASE,
            DYNAMIC_SECOND_BASE + 1024,
        );
        let p = h
            .alloc(ObjKind::Cell, &[Value::nil()], Context::Mutator, &mut sink)
            .unwrap();
        assert_eq!(p.addr(), DYNAMIC_SECOND_BASE);
        assert_eq!(h.dynamic_used(), 8);
    }

    #[test]
    fn gc_epoch_counts() {
        let mut h = heap();
        assert_eq!(h.gc_epoch(), 0);
        h.bump_gc_epoch();
        h.bump_gc_epoch();
        assert_eq!(h.gc_epoch(), 2);
    }
}
