//! The simulated Scheme system's memory: tagged values, object layouts,
//! memory spaces, and the linear (bump-pointer) allocator.
//!
//! The paper's programs run in the Yale T system, whose runtime represents
//! Scheme data as tagged 32-bit words and allocates objects linearly in a
//! contiguous dynamic area (§7: "the allocation pointer ... starts at the
//! base of the dynamic area and grows upward"). This crate reproduces that
//! organization:
//!
//! * [`Value`] — a tagged 32-bit word: fixnum, heap pointer, or immediate.
//! * [`Header`]/[`ObjKind`] — every heap object starts with a header word
//!   recording its kind and payload length, so collectors can scan the heap
//!   uniformly.
//! * [`Space`]/[`Memory`] — the static, stack, and dynamic areas of the
//!   fixed address-space layout in [`cachegc_trace`].
//! * [`Heap`] — linear allocation plus *traced* loads and stores: every
//!   access the simulated program makes is emitted into a
//!   [`cachegc_trace::TraceSink`].
//!
//! # Example
//!
//! ```
//! use cachegc_heap::{Heap, HeapConfig, ObjKind, Value};
//! use cachegc_trace::{Context, NullSink};
//!
//! let mut heap = Heap::new(HeapConfig::unbounded());
//! let mut sink = NullSink;
//! let pair = heap
//!     .alloc(ObjKind::Pair, &[Value::fixnum(1), Value::nil()], Context::Mutator, &mut sink)
//!     .unwrap();
//! assert_eq!(heap.load(pair.addr() + 4, Context::Mutator, &mut sink), Value::fixnum(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heap_impl;
mod object;
mod space;
mod value;

pub use heap_impl::{AllocMode, Heap, HeapConfig, HeapFull};
pub use object::{Header, ObjKind};
pub use space::{Memory, Space, DYNAMIC_SECOND_LIMIT, DYNAMIC_THIRD_BASE, DYNAMIC_THIRD_LIMIT};
pub use value::Value;
