//! Heap object headers.
//!
//! Every heap object is a header word followed by its payload. The header
//! records the object's kind and payload length (in words), which is all a
//! copying collector needs to scan the heap uniformly. Kinds with *raw*
//! payloads (flonum bits, string bytes) are skipped by the pointer scan.

#[cfg(test)]
use crate::value::Value;

const TAG_HEADER: u32 = 0b11;

/// The kinds of heap objects the simulated Scheme system allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ObjKind {
    /// `(car . cdr)` — payload of two values.
    Pair = 0,
    /// A value vector.
    Vector = 1,
    /// A closure: code index (fixnum) followed by captured values.
    Closure = 2,
    /// A string: byte length (fixnum) followed by packed bytes (raw).
    String = 3,
    /// An interned symbol: name (string pointer) and hash (fixnum).
    Symbol = 4,
    /// A boxed IEEE double: two raw words.
    Flonum = 5,
    /// A mutable box for assignment-converted variables: one value.
    Cell = 6,
    /// An eq-hash table: buckets vector, entry count, GC epoch stamp.
    Table = 7,
}

impl ObjKind {
    /// All kinds, for exhaustive tests.
    pub const ALL: [ObjKind; 8] = [
        ObjKind::Pair,
        ObjKind::Vector,
        ObjKind::Closure,
        ObjKind::String,
        ObjKind::Symbol,
        ObjKind::Flonum,
        ObjKind::Cell,
        ObjKind::Table,
    ];

    fn from_bits(bits: u32) -> ObjKind {
        match bits {
            0 => ObjKind::Pair,
            1 => ObjKind::Vector,
            2 => ObjKind::Closure,
            3 => ObjKind::String,
            4 => ObjKind::Symbol,
            5 => ObjKind::Flonum,
            6 => ObjKind::Cell,
            7 => ObjKind::Table,
            k => panic!("corrupt header kind {k}"),
        }
    }

    /// True if the payload contains raw (non-value) words the collector
    /// must not interpret as pointers.
    pub fn is_raw(self) -> bool {
        matches!(self, ObjKind::String | ObjKind::Flonum)
    }

    /// How many leading payload words of a raw object are tagged values.
    /// (A string's first payload word is its byte-length fixnum.)
    pub fn scanned_prefix(self) -> u32 {
        match self {
            ObjKind::String => 1,
            ObjKind::Flonum => 0,
            _ => u32::MAX, // fully scanned
        }
    }
}

/// An object header word: kind, payload length, and the header tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Header(u32);

impl Header {
    /// Maximum payload length in words (24-bit field).
    pub const MAX_LEN: u32 = (1 << 24) - 1;

    /// Construct a header.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`Header::MAX_LEN`].
    #[inline]
    pub fn new(kind: ObjKind, len: u32) -> Header {
        assert!(len <= Self::MAX_LEN, "object too large: {len} words");
        Header(len << 8 | (kind as u32) << 2 | TAG_HEADER)
    }

    /// The raw header word as stored in memory.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Decode a header word.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a header word (e.g. it is a forwarding
    /// pointer left by a copying collector).
    #[inline]
    pub fn from_bits(bits: u32) -> Header {
        assert_eq!(bits & 0b11, TAG_HEADER, "not a header word: {bits:#x}");
        Header(bits)
    }

    /// True if a raw word is a header (vs. a forwarding pointer).
    #[inline]
    pub fn is_header_bits(bits: u32) -> bool {
        bits & 0b11 == TAG_HEADER
    }

    /// The object's kind.
    #[inline]
    pub fn kind(self) -> ObjKind {
        ObjKind::from_bits((self.0 >> 2) & 0x3f)
    }

    /// Payload length in words (excluding the header itself).
    #[inline]
    pub fn len(self) -> u32 {
        self.0 >> 8
    }

    /// True for zero-length payloads.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Total object size in words, header included.
    #[inline]
    pub fn size_words(self) -> u32 {
        1 + self.len()
    }

    /// Total object size in bytes, header included.
    #[inline]
    pub fn size_bytes(self) -> u32 {
        4 * self.size_words()
    }
}

/// Headers are never first-class values, but a forwarding pointer may sit
/// where a header was; this helper distinguishes the two during collection.
#[cfg(test)]
pub(crate) fn forwarding_target(bits: u32) -> Option<Value> {
    let v = Value::from_bits(bits);
    if v.is_ptr() {
        Some(v)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_all_kinds() {
        for kind in ObjKind::ALL {
            for len in [0u32, 1, 2, 100, Header::MAX_LEN] {
                let h = Header::new(kind, len);
                let h2 = Header::from_bits(h.bits());
                assert_eq!(h2.kind(), kind);
                assert_eq!(h2.len(), len);
                assert_eq!(h2.size_words(), len + 1);
                assert_eq!(h2.size_bytes(), 4 * (len + 1));
            }
        }
    }

    #[test]
    fn headers_are_not_values() {
        let h = Header::new(ObjKind::Pair, 2);
        let v = Value::from_bits(h.bits());
        assert!(!v.is_fixnum() && !v.is_ptr());
        assert!(Header::is_header_bits(h.bits()));
        assert!(!Header::is_header_bits(Value::fixnum(3).bits()));
    }

    #[test]
    fn raw_kinds() {
        assert!(ObjKind::String.is_raw());
        assert!(ObjKind::Flonum.is_raw());
        assert!(!ObjKind::Pair.is_raw());
        assert_eq!(ObjKind::String.scanned_prefix(), 1);
        assert_eq!(ObjKind::Flonum.scanned_prefix(), 0);
    }

    #[test]
    fn forwarding_detection() {
        assert_eq!(
            forwarding_target(Value::ptr(0x1000_0000).bits()),
            Some(Value::ptr(0x1000_0000))
        );
        assert_eq!(
            forwarding_target(Header::new(ObjKind::Cell, 1).bits()),
            None
        );
    }

    #[test]
    #[should_panic(expected = "not a header")]
    fn decoding_a_value_panics() {
        Header::from_bits(Value::fixnum(1).bits());
    }
}
