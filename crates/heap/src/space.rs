//! Word-addressable memory spaces.
//!
//! The simulated machine's memory is sparse: a handful of disjoint address
//! ranges (static area, stack area, dynamic semispaces) each backed by a
//! growable word vector. Loads of never-written words panic — in a system
//! where every allocated word is initialized before use (§7 of the paper),
//! such a load is a simulator bug.

use cachegc_trace::{DYNAMIC_BASE, DYNAMIC_SECOND_BASE, STACK_BASE, STATIC_BASE};

/// Upper bound of the second dynamic region.
pub const DYNAMIC_SECOND_LIMIT: u32 = 0x9000_0000;
/// Base of the third dynamic region (used by generational collectors as the
/// old generation's to-space).
pub const DYNAMIC_THIRD_BASE: u32 = 0x9019_9980;
/// Upper bound of the third dynamic region.
pub const DYNAMIC_THIRD_LIMIT: u32 = 0xd000_0000;

/// One contiguous address range backed by a growable word vector.
#[derive(Debug, Clone)]
pub struct Space {
    name: &'static str,
    base: u32,
    limit: u32,
    words: Vec<u32>,
}

impl Space {
    /// Create an empty space covering `[base, limit)`.
    ///
    /// # Panics
    ///
    /// Panics unless `base < limit` and both are word aligned.
    pub fn new(name: &'static str, base: u32, limit: u32) -> Self {
        assert!(base < limit && base.is_multiple_of(4) && limit.is_multiple_of(4));
        Space {
            name,
            base,
            limit,
            words: Vec::new(),
        }
    }

    /// The space's name, for diagnostics.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Lowest address in the space.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One past the highest legal address.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// True if `addr` falls in this space's range.
    #[inline]
    pub fn contains(&self, addr: u32) -> bool {
        (self.base..self.limit).contains(&addr)
    }

    /// Load the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the space or was never stored to.
    #[inline]
    pub fn load(&self, addr: u32) -> u32 {
        let idx = self.index(addr);
        match self.words.get(idx) {
            Some(&w) => w,
            None => panic!("load of uninitialized word {addr:#x} in {}", self.name),
        }
    }

    /// Store `word` at `addr`, growing the backing vector as needed.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the space.
    #[inline]
    pub fn store(&mut self, addr: u32, word: u32) {
        let idx = self.index(addr);
        if idx >= self.words.len() {
            self.words.resize(idx + 1, 0);
        }
        self.words[idx] = word;
    }

    /// Forget all contents (semispace reuse after a flip).
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Bytes currently backed by storage.
    pub fn backed_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    #[inline]
    fn index(&self, addr: u32) -> usize {
        debug_assert_eq!(addr % 4, 0, "unaligned access {addr:#x}");
        assert!(
            self.contains(addr),
            "address {addr:#x} outside space {} [{:#x},{:#x})",
            self.name,
            self.base,
            self.limit
        );
        ((addr - self.base) / 4) as usize
    }
}

/// The simulated machine's full (sparse) memory.
#[derive(Debug, Clone)]
pub struct Memory {
    spaces: [Space; 5],
}

impl Memory {
    /// Create the standard five-space layout: static, stack, and three
    /// dynamic regions.
    pub fn new() -> Self {
        Memory {
            spaces: [
                Space::new("static", STATIC_BASE, STACK_BASE),
                Space::new("stack", STACK_BASE, DYNAMIC_BASE),
                Space::new("dynamic-a", DYNAMIC_BASE, DYNAMIC_SECOND_BASE),
                Space::new("dynamic-b", DYNAMIC_SECOND_BASE, DYNAMIC_SECOND_LIMIT),
                Space::new("dynamic-c", DYNAMIC_THIRD_BASE, DYNAMIC_THIRD_LIMIT),
            ],
        }
    }

    #[inline]
    fn space_of(&self, addr: u32) -> &Space {
        // Ordered by expected access frequency: dynamic, stack, static.
        for s in &self.spaces {
            if s.contains(addr) {
                return s;
            }
        }
        panic!("address {addr:#x} outside every space");
    }

    #[inline]
    fn space_of_mut(&mut self, addr: u32) -> &mut Space {
        for s in &mut self.spaces {
            if s.contains(addr) {
                return s;
            }
        }
        panic!("address {addr:#x} outside every space");
    }

    /// Load the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped or uninitialized.
    #[inline]
    pub fn load(&self, addr: u32) -> u32 {
        self.space_of(addr).load(addr)
    }

    /// Store `word` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped.
    #[inline]
    pub fn store(&mut self, addr: u32, word: u32) {
        self.space_of_mut(addr).store(addr, word);
    }

    /// Clear a dynamic space that contains `addr` (after a semispace flip).
    pub fn clear_space_at(&mut self, addr: u32) {
        self.space_of_mut(addr).clear();
    }

    /// Sum of bytes currently backed across all spaces.
    pub fn footprint_bytes(&self) -> u64 {
        self.spaces.iter().map(|s| s.backed_bytes() as u64).sum()
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_load() {
        let mut m = Memory::new();
        m.store(STATIC_BASE, 42);
        m.store(DYNAMIC_BASE + 400, 7);
        assert_eq!(m.load(STATIC_BASE), 42);
        assert_eq!(m.load(DYNAMIC_BASE + 400), 7);
    }

    #[test]
    #[should_panic(expected = "uninitialized")]
    fn uninitialized_load_panics() {
        Memory::new().load(DYNAMIC_BASE + 8);
    }

    #[test]
    #[should_panic(expected = "outside every space")]
    fn unmapped_address_panics() {
        Memory::new().load(0x10);
    }

    #[test]
    fn clearing_a_space_forgets_contents() {
        let mut m = Memory::new();
        m.store(DYNAMIC_BASE, 1);
        m.clear_space_at(DYNAMIC_BASE);
        assert_eq!(m.footprint_bytes(), 0);
    }

    #[test]
    fn spaces_are_independent() {
        let mut m = Memory::new();
        m.store(DYNAMIC_BASE, 1);
        m.store(DYNAMIC_SECOND_BASE, 2);
        assert_eq!(m.load(DYNAMIC_BASE), 1);
        assert_eq!(m.load(DYNAMIC_SECOND_BASE), 2);
    }

    #[test]
    fn footprint_tracks_high_water() {
        let mut m = Memory::new();
        m.store(STACK_BASE + 36, 5); // word index 9 -> 10 words backed
        assert_eq!(m.footprint_bytes(), 40);
    }
}
