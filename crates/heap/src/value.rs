//! Tagged 32-bit Scheme values.
//!
//! Tag assignment (low two bits):
//!
//! | bits | meaning |
//! |------|---------|
//! | `00` | fixnum: signed 30-bit integer in the high 30 bits |
//! | `01` | heap pointer: word-aligned byte address with bit 0 set |
//! | `10` | immediate: nil, booleans, characters, and friends |
//! | `11` | object header / reserved (never a first-class value) |

use std::fmt;

const TAG_MASK: u32 = 0b11;
const TAG_FIXNUM: u32 = 0b00;
const TAG_PTR: u32 = 0b01;

// Immediate sub-tags occupy bits 2..4; the payload sits above bit 4.
const IMM_SPECIAL: u32 = 0b00_10;
const IMM_CHAR: u32 = 0b01_10;

const SPECIAL_NIL: u32 = 0;
const SPECIAL_FALSE: u32 = 1;
const SPECIAL_TRUE: u32 = 2;
const SPECIAL_UNSPECIFIED: u32 = 3;
const SPECIAL_EOF: u32 = 4;
const SPECIAL_UNDEFINED: u32 = 5;

/// Range of representable fixnums: signed 30 bits.
pub const FIXNUM_MIN: i32 = -(1 << 29);
/// Largest representable fixnum.
pub const FIXNUM_MAX: i32 = (1 << 29) - 1;

/// A tagged 32-bit Scheme value.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value(u32);

impl Value {
    /// The raw tagged word.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstruct a value from its raw bits.
    #[inline]
    pub fn from_bits(bits: u32) -> Value {
        Value(bits)
    }

    /// The empty list.
    #[inline]
    pub fn nil() -> Value {
        Value(SPECIAL_NIL << 4 | IMM_SPECIAL)
    }

    /// A boolean.
    #[inline]
    pub fn bool(b: bool) -> Value {
        Value((if b { SPECIAL_TRUE } else { SPECIAL_FALSE }) << 4 | IMM_SPECIAL)
    }

    /// The unspecified value (result of `set!` and friends).
    #[inline]
    pub fn unspecified() -> Value {
        Value(SPECIAL_UNSPECIFIED << 4 | IMM_SPECIAL)
    }

    /// The end-of-file object.
    #[inline]
    pub fn eof() -> Value {
        Value(SPECIAL_EOF << 4 | IMM_SPECIAL)
    }

    /// The "unbound" marker used in global-variable slots.
    #[inline]
    pub fn undefined() -> Value {
        Value(SPECIAL_UNDEFINED << 4 | IMM_SPECIAL)
    }

    /// A character.
    #[inline]
    pub fn char(c: char) -> Value {
        Value((c as u32) << 4 | IMM_CHAR)
    }

    /// A fixnum.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n` is outside the 30-bit signed range;
    /// release builds wrap.
    #[inline]
    pub fn fixnum(n: i32) -> Value {
        debug_assert!(
            (FIXNUM_MIN..=FIXNUM_MAX).contains(&n),
            "fixnum overflow: {n}"
        );
        Value((n as u32) << 2)
    }

    /// A pointer to a heap object's header word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word aligned.
    #[inline]
    pub fn ptr(addr: u32) -> Value {
        assert_eq!(addr & TAG_MASK, 0, "unaligned pointer {addr:#x}");
        Value(addr | TAG_PTR)
    }

    /// True for fixnums.
    #[inline]
    pub fn is_fixnum(self) -> bool {
        self.0 & TAG_MASK == TAG_FIXNUM
    }

    /// True for heap pointers.
    #[inline]
    pub fn is_ptr(self) -> bool {
        self.0 & TAG_MASK == TAG_PTR
    }

    /// True for the empty list.
    #[inline]
    pub fn is_nil(self) -> bool {
        self.0 == Value::nil().0
    }

    /// True for `#t` or `#f`.
    #[inline]
    pub fn is_bool(self) -> bool {
        self == Value::bool(true) || self == Value::bool(false)
    }

    /// True for characters.
    #[inline]
    pub fn is_char(self) -> bool {
        self.0 & 0b1111 == IMM_CHAR
    }

    /// True for the unspecified value.
    #[inline]
    pub fn is_unspecified(self) -> bool {
        self.0 == Value::unspecified().0
    }

    /// True for the unbound marker.
    #[inline]
    pub fn is_undefined(self) -> bool {
        self.0 == Value::undefined().0
    }

    /// Scheme truth: everything but `#f` is true.
    #[inline]
    pub fn is_truthy(self) -> bool {
        self.0 != Value::bool(false).0
    }

    /// The fixnum's integer value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a fixnum.
    #[inline]
    pub fn as_fixnum(self) -> i32 {
        assert!(self.is_fixnum(), "not a fixnum: {self:?}");
        (self.0 as i32) >> 2
    }

    /// The pointer's byte address.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a pointer.
    #[inline]
    pub fn addr(self) -> u32 {
        assert!(self.is_ptr(), "not a pointer: {self:?}");
        self.0 & !TAG_MASK
    }

    /// The character, if this value is one.
    #[inline]
    pub fn as_char(self) -> Option<char> {
        if self.is_char() {
            char::from_u32(self.0 >> 4)
        } else {
            None
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::unspecified()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fixnum() {
            write!(f, "Fixnum({})", self.as_fixnum())
        } else if self.is_ptr() {
            write!(f, "Ptr({:#x})", self.addr())
        } else if self.is_nil() {
            write!(f, "Nil")
        } else if *self == Value::bool(true) {
            write!(f, "True")
        } else if *self == Value::bool(false) {
            write!(f, "False")
        } else if let Some(c) = self.as_char() {
            write!(f, "Char({c:?})")
        } else if self.is_unspecified() {
            write!(f, "Unspecified")
        } else if self.is_undefined() {
            write!(f, "Undefined")
        } else {
            write!(f, "Value({:#x})", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixnum_roundtrip_extremes() {
        for n in [0, 1, -1, 12345, -12345, FIXNUM_MIN, FIXNUM_MAX] {
            let v = Value::fixnum(n);
            assert!(v.is_fixnum());
            assert!(!v.is_ptr());
            assert_eq!(v.as_fixnum(), n, "roundtrip {n}");
        }
    }

    #[test]
    fn pointer_roundtrip() {
        let v = Value::ptr(0x1000_0040);
        assert!(v.is_ptr() && !v.is_fixnum());
        assert_eq!(v.addr(), 0x1000_0040);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn rejects_unaligned_pointer() {
        Value::ptr(0x1000_0002);
    }

    #[test]
    fn immediates_are_distinct() {
        let all = [
            Value::nil(),
            Value::bool(true),
            Value::bool(false),
            Value::unspecified(),
            Value::eof(),
            Value::undefined(),
            Value::char('a'),
            Value::char('b'),
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(a == b, i == j, "{a:?} vs {b:?}");
            }
            assert!(!a.is_fixnum() && !a.is_ptr());
        }
    }

    #[test]
    fn truthiness() {
        assert!(!Value::bool(false).is_truthy());
        assert!(Value::bool(true).is_truthy());
        assert!(Value::nil().is_truthy(), "empty list is true in Scheme");
        assert!(Value::fixnum(0).is_truthy());
    }

    #[test]
    fn char_roundtrip() {
        for c in ['a', 'λ', '\n', '\0'] {
            assert_eq!(Value::char(c).as_char(), Some(c));
        }
        assert_eq!(Value::fixnum(7).as_char(), None);
    }
}
