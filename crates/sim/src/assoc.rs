//! A set-associative cache with LRU replacement, for ablation against the
//! paper's direct-mapped choice (§4 argues direct-mapped caches are what
//! high-performance machines actually ship).

use cachegc_trace::{Access, TraceSink};

use crate::config::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
use crate::stats::CacheStats;

const EMPTY: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Way {
    tag: u32,
    valid: u64,
    dirty: u64,
    lru: u64,
}

/// An LRU set-associative cache with the same policies and statistics as
/// [`crate::Cache`]. Per-"block" statistics are tracked per *set*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    offset_bits: u32,
    set_mask: u32,
    sets: Vec<Vec<Way>>,
    full_mask: u64,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Create an empty set-associative cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let nsets = cfg.num_sets() as usize;
        let wpb = cfg.words_per_block();
        let full_mask = if wpb >= 64 {
            u64::MAX
        } else {
            (1u64 << wpb) - 1
        };
        SetAssocCache {
            cfg,
            offset_bits: cfg.block.trailing_zeros(),
            set_mask: cfg.num_sets() - 1,
            sets: vec![
                vec![
                    Way {
                        tag: EMPTY,
                        ..Default::default()
                    };
                    cfg.assoc as usize
                ];
                nsets
            ],
            full_mask,
            clock: 0,
            stats: CacheStats::new(cfg.num_sets()),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_index(&self, addr: u32) -> usize {
        ((addr >> self.offset_bits) & self.set_mask) as usize
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr >> self.offset_bits >> self.set_mask.count_ones()
    }

    /// Simulate one access.
    pub fn access_one(&mut self, a: Access) {
        self.clock += 1;
        let s = self.set_index(a.addr);
        let tag = self.tag_of(a.addr);
        let bit = 1u64 << ((a.addr & (self.cfg.block - 1)) >> 2);
        self.stats.count_ref(a.ctx, a.is_read(), s);
        let writeback = self.cfg.write_hit == WriteHitPolicy::WriteBack;
        if !a.is_read() && self.cfg.write_hit == WriteHitPolicy::WriteThrough {
            self.stats.count_write_through();
        }

        let set = &mut self.sets[s];
        if let Some(w) = set.iter_mut().find(|w| w.tag == tag) {
            w.lru = self.clock;
            if a.is_read() {
                if w.valid & bit != 0 {
                    return; // hit
                }
                w.valid = self.full_mask;
                self.stats.count_partial_fill();
                self.stats.count_fetch(a.ctx);
                self.stats.count_block_miss(s, false);
            } else {
                w.valid |= bit;
                if writeback {
                    w.dirty |= bit;
                }
            }
            return;
        }

        // Miss: pick the LRU way as the victim.
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.tag == EMPTY { 0 } else { w.lru + 1 })
            .expect("associativity >= 1");
        if writeback && victim.dirty != 0 {
            self.stats.count_writeback();
        }
        victim.tag = tag;
        victim.lru = self.clock;
        victim.dirty = 0;
        self.stats.count_block_miss(s, a.alloc_init);
        if a.is_read() {
            victim.valid = self.full_mask;
            self.stats.count_read_miss_fetch();
            self.stats.count_fetch(a.ctx);
        } else {
            match self.cfg.write_miss {
                WriteMissPolicy::WriteValidate => {
                    victim.valid = bit;
                    self.stats.count_write_validate_install();
                }
                WriteMissPolicy::FetchOnWrite => {
                    victim.valid = self.full_mask;
                    self.stats.count_write_miss_fetch();
                    self.stats.count_fetch(a.ctx);
                }
            }
            if writeback {
                victim.dirty = bit;
            }
        }
    }
}

impl TraceSink for SetAssocCache {
    #[inline]
    fn access(&mut self, access: Access) {
        self.access_one(access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cache;
    use cachegc_trace::Context;

    const M: Context = Context::Mutator;

    #[test]
    fn two_way_absorbs_direct_mapped_thrash() {
        let size = 1 << 15;
        let a = 0x1000_0000u32;
        let b = a + size; // conflicts in a direct-mapped cache of `size`
        let mut dm = Cache::new(CacheConfig::direct_mapped(size, 16));
        let mut sa = SetAssocCache::new(CacheConfig::direct_mapped(size, 16).with_assoc(2));
        for _ in 0..100 {
            for addr in [a, b] {
                dm.access(Access::read(addr, M));
                sa.access(Access::read(addr, M));
            }
        }
        assert_eq!(dm.stats().fetches(), 200);
        assert_eq!(
            sa.stats().fetches(),
            2,
            "both blocks co-resident in a 2-way set"
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way set; touch three conflicting blocks in order a,b,c: c evicts a.
        let size = 1 << 15;
        let cfg = CacheConfig::direct_mapped(size, 16).with_assoc(2);
        let a = 0x1000_0000u32;
        let b = a + size / 2; // same set in a 2-way cache of this geometry
        let c = a + size;
        let mut sa = SetAssocCache::new(cfg);
        sa.access(Access::read(a, M));
        sa.access(Access::read(b, M));
        sa.access(Access::read(c, M)); // evicts a (LRU)
        sa.access(Access::read(b, M)); // still resident
        assert_eq!(sa.stats().fetches(), 3);
        sa.access(Access::read(a, M)); // was evicted, misses
        assert_eq!(sa.stats().fetches(), 4);
    }

    #[test]
    fn one_way_behaves_like_direct_mapped() {
        let cfg = CacheConfig::direct_mapped(1 << 14, 32);
        let mut dm = Cache::new(cfg);
        let mut sa = SetAssocCache::new(cfg.with_assoc(1));
        // A small pseudo-random access pattern.
        let mut x = 12345u32;
        for i in 0..5000u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let addr = 0x1000_0000 + (x % (1 << 16)) * 4;
            let acc = if i % 3 == 0 {
                Access::write(addr, M)
            } else {
                Access::read(addr, M)
            };
            dm.access(acc);
            sa.access(acc);
        }
        assert_eq!(dm.stats().fetches(), sa.stats().fetches());
        assert_eq!(dm.stats().misses(), sa.stats().misses());
        assert_eq!(dm.stats().writebacks(), sa.stats().writebacks());
    }
}
