//! The direct-mapped cache simulator.

use cachegc_trace::{Access, TraceSink};

use crate::config::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
use crate::stats::CacheStats;

const EMPTY: u32 = u32::MAX;

/// What one access did to the cache, for analyses that need per-event
/// detail (the §7 sweep plots and cache-activity graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// The cache block the access indexed.
    pub cache_block: u32,
    /// True if the access hit.
    pub hit: bool,
    /// True if the miss required a block fetch from memory (stalling the
    /// processor); write-validate write misses do not.
    pub fetched: bool,
    /// True if this was an allocation miss.
    pub alloc_miss: bool,
}

/// A virtually-indexed direct-mapped data cache with per-word valid bits
/// (sub-block placement), the cache organization the paper studies.
///
/// Data contents are not modeled — only tags, valid bits, and dirty bits —
/// because the simulated program's data lives in [`cachegc-heap`]'s memory;
/// the cache tracks exactly what a trace-driven simulator needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cache {
    cfg: CacheConfig,
    offset_bits: u32,
    index_mask: u32,
    tags: Vec<u32>,
    valid: Vec<u64>,
    dirty: Vec<u64>,
    full_mask: u64,
    stats: CacheStats,
}

impl Cache {
    /// Create an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.assoc != 1`; use [`crate::SetAssocCache`] for
    /// associative configurations.
    pub fn new(cfg: CacheConfig) -> Self {
        assert_eq!(cfg.assoc, 1, "Cache is direct-mapped; use SetAssocCache");
        let n = cfg.num_blocks() as usize;
        let wpb = cfg.words_per_block();
        let full_mask = if wpb >= 64 {
            u64::MAX
        } else {
            (1u64 << wpb) - 1
        };
        Cache {
            cfg,
            offset_bits: cfg.block.trailing_zeros(),
            index_mask: cfg.num_blocks() - 1,
            tags: vec![EMPTY; n],
            valid: vec![0; n],
            dirty: vec![0; n],
            full_mask,
            stats: CacheStats::new(cfg.num_blocks()),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Consume the cache, returning its statistics.
    pub fn into_stats(self) -> CacheStats {
        self.stats
    }

    /// Which cache block an address maps to.
    #[inline]
    pub fn block_index(&self, addr: u32) -> u32 {
        (addr >> self.offset_bits) & self.index_mask
    }

    #[inline]
    fn tag_of(&self, addr: u32) -> u32 {
        addr >> self.offset_bits >> self.index_mask.count_ones()
    }

    #[inline]
    fn word_bit(&self, addr: u32) -> u64 {
        1u64 << ((addr & (self.cfg.block - 1)) >> 2)
    }

    #[inline]
    fn evict(&mut self, b: usize) {
        if self.cfg.write_hit == WriteHitPolicy::WriteBack && self.dirty[b] != 0 {
            self.stats.count_writeback();
        }
        self.dirty[b] = 0;
    }

    /// Simulate one access and report what happened.
    pub fn access_classified(&mut self, a: Access) -> Outcome {
        let b = self.block_index(a.addr) as usize;
        let tag = self.tag_of(a.addr);
        let bit = self.word_bit(a.addr);
        self.stats.count_ref(a.ctx, a.is_read(), b);

        if a.is_read() {
            if self.tags[b] == tag {
                if self.valid[b] & bit != 0 {
                    return Outcome {
                        cache_block: b as u32,
                        hit: true,
                        fetched: false,
                        alloc_miss: false,
                    };
                }
                // Present tag, invalid word: sub-block fill of the rest.
                self.valid[b] = self.full_mask;
                self.stats.count_partial_fill();
                self.stats.count_fetch(a.ctx);
                self.stats.count_block_miss(b, false);
                Outcome {
                    cache_block: b as u32,
                    hit: false,
                    fetched: true,
                    alloc_miss: false,
                }
            } else {
                self.evict(b);
                self.tags[b] = tag;
                self.valid[b] = self.full_mask;
                self.stats.count_read_miss_fetch();
                self.stats.count_fetch(a.ctx);
                self.stats.count_block_miss(b, false);
                Outcome {
                    cache_block: b as u32,
                    hit: false,
                    fetched: true,
                    alloc_miss: false,
                }
            }
        } else {
            // Write.
            if self.cfg.write_hit == WriteHitPolicy::WriteThrough {
                self.stats.count_write_through();
            }
            if self.tags[b] == tag {
                self.valid[b] |= bit;
                if self.cfg.write_hit == WriteHitPolicy::WriteBack {
                    self.dirty[b] |= bit;
                }
                return Outcome {
                    cache_block: b as u32,
                    hit: true,
                    fetched: false,
                    alloc_miss: false,
                };
            }
            self.evict(b);
            self.tags[b] = tag;
            self.stats.count_block_miss(b, a.alloc_init);
            let fetched = match self.cfg.write_miss {
                WriteMissPolicy::WriteValidate => {
                    self.valid[b] = bit;
                    self.stats.count_write_validate_install();
                    false
                }
                WriteMissPolicy::FetchOnWrite => {
                    self.valid[b] = self.full_mask;
                    self.stats.count_write_miss_fetch();
                    self.stats.count_fetch(a.ctx);
                    true
                }
            };
            if self.cfg.write_hit == WriteHitPolicy::WriteBack {
                self.dirty[b] = bit;
            }
            Outcome {
                cache_block: b as u32,
                hit: false,
                fetched,
                alloc_miss: a.alloc_init,
            }
        }
    }

    /// Flush the cache contents (tags and valid bits), keeping statistics.
    /// Models a context switch or an explicit invalidation; also used by
    /// tests.
    pub fn flush(&mut self) {
        for b in 0..self.tags.len() {
            if self.cfg.write_hit == WriteHitPolicy::WriteBack && self.dirty[b] != 0 {
                self.stats.count_writeback();
            }
            self.tags[b] = EMPTY;
            self.valid[b] = 0;
            self.dirty[b] = 0;
        }
    }
}

impl TraceSink for Cache {
    #[inline]
    fn access(&mut self, access: Access) {
        self.access_classified(access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::Context;

    const M: Context = Context::Mutator;

    fn cache(size: u32, block: u32) -> Cache {
        Cache::new(CacheConfig::direct_mapped(size, block))
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = cache(1 << 15, 16);
        let o = c.access_classified(Access::read(0x1000_0000, M));
        assert!(!o.hit && o.fetched);
        let o = c.access_classified(Access::read(0x1000_0004, M));
        assert!(o.hit, "same block, different word");
        assert_eq!(c.stats().fetches(), 1);
    }

    #[test]
    fn conflicting_blocks_thrash() {
        let mut c = cache(1 << 15, 16);
        let a = 0x1000_0000;
        let b = a + (1 << 15); // same index, different tag
        assert_eq!(c.block_index(a), c.block_index(b));
        for _ in 0..10 {
            c.access_classified(Access::read(a, M));
            c.access_classified(Access::read(b, M));
        }
        assert_eq!(c.stats().fetches(), 20, "perfect alternation always misses");
    }

    #[test]
    fn write_validate_skips_fetch() {
        let mut c = cache(1 << 15, 64);
        let o = c.access_classified(Access::alloc_write(0x1000_0000, M));
        assert!(!o.hit && !o.fetched && o.alloc_miss);
        assert_eq!(c.stats().fetches(), 0);
        assert_eq!(c.stats().alloc_misses(), 1);
        // Write the rest of the block: all hits (tag present).
        for w in 1..16 {
            let o = c.access_classified(Access::alloc_write(0x1000_0000 + w * 4, M));
            assert!(o.hit);
        }
        // Reading a word we wrote: hit, no fetch ever needed.
        assert!(c.access_classified(Access::read(0x1000_0004, M)).hit);
        assert_eq!(c.stats().fetches(), 0);
    }

    #[test]
    fn partial_fill_on_read_of_invalid_word() {
        let mut c = cache(1 << 15, 64);
        c.access_classified(Access::write(0x1000_0000, M)); // validates word 0 only
        let o = c.access_classified(Access::read(0x1000_0008, M)); // word 2: invalid
        assert!(!o.hit && o.fetched);
        assert_eq!(c.stats().partial_fill_fetches(), 1);
        // Now the whole block is valid.
        assert!(c.access_classified(Access::read(0x1000_003c, M)).hit);
    }

    #[test]
    fn fetch_on_write_fetches() {
        let cfg =
            CacheConfig::direct_mapped(1 << 15, 64).with_write_miss(WriteMissPolicy::FetchOnWrite);
        let mut c = Cache::new(cfg);
        let o = c.access_classified(Access::alloc_write(0x1000_0000, M));
        assert!(!o.hit && o.fetched);
        assert_eq!(c.stats().write_miss_fetches(), 1);
        // Whole block valid after the fetch.
        assert!(c.access_classified(Access::read(0x1000_0020, M)).hit);
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = cache(1 << 15, 16);
        let a = 0x1000_0000;
        let b = a + (1 << 15);
        c.access_classified(Access::write(a, M)); // dirty install
        c.access_classified(Access::read(b, M)); // evicts dirty block
        assert_eq!(c.stats().writebacks(), 1);
        c.access_classified(Access::read(a, M)); // evicts clean block
        assert_eq!(c.stats().writebacks(), 1);
    }

    #[test]
    fn write_through_counts_words() {
        let cfg =
            CacheConfig::direct_mapped(1 << 15, 16).with_write_hit(WriteHitPolicy::WriteThrough);
        let mut c = Cache::new(cfg);
        c.access_classified(Access::write(0x1000_0000, M));
        c.access_classified(Access::write(0x1000_0000, M));
        assert_eq!(c.stats().write_through_words(), 2);
        c.flush();
        assert_eq!(c.stats().writebacks(), 0, "write-through never writes back");
    }

    #[test]
    fn flush_writes_back_dirty_blocks() {
        let mut c = cache(1 << 15, 16);
        c.access_classified(Access::write(0x1000_0000, M));
        c.access_classified(Access::write(0x2000_0000, M));
        c.flush();
        assert_eq!(c.stats().writebacks(), 2);
        assert!(!c.access_classified(Access::read(0x1000_0000, M)).hit);
    }

    #[test]
    fn per_block_stats_accumulate() {
        let mut c = cache(1 << 15, 16);
        let a = 0x1000_0000;
        c.access_classified(Access::alloc_write(a, M));
        c.access_classified(Access::read(a, M));
        let b = c.block_index(a) as usize;
        assert_eq!(c.stats().blocks()[b].refs, 2);
        assert_eq!(c.stats().blocks()[b].misses, 1);
        assert_eq!(c.stats().blocks()[b].alloc_misses, 1);
    }

    #[test]
    fn largest_block_size_valid_mask() {
        let mut c = cache(1 << 20, 256); // 64 words per block
        c.access_classified(Access::write(0x1000_00fc, M)); // last word
        assert!(c.access_classified(Access::read(0x1000_00fc, M)).hit);
        assert!(!c.access_classified(Access::read(0x1000_0000, M)).hit);
    }
}
