//! Cache configuration.

use std::fmt;

/// Write-miss policy (§4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WriteMissPolicy {
    /// Write-allocate with sub-block placement at one-word granularity: a
    /// write miss installs the block's tag and validates only the written
    /// word, *without* fetching the block from memory. The paper's default.
    #[default]
    WriteValidate,
    /// The conventional policy: a write miss fetches the whole block from
    /// memory before the write proceeds.
    FetchOnWrite,
}

/// Write-hit policy, used for write-traffic accounting (§5's "write
/// overheads" discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WriteHitPolicy {
    /// Dirty blocks are written back to memory on eviction.
    #[default]
    WriteBack,
    /// Every store is propagated to memory.
    WriteThrough,
}

/// Geometry and policies for one simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a power of two.
    pub size: u32,
    /// Block (line) size in bytes: 16–256, a power of two. The fetch size
    /// equals the block size (§4).
    pub block: u32,
    /// Associativity; 1 for the direct-mapped caches the paper studies.
    pub assoc: u32,
    /// Write-miss policy.
    pub write_miss: WriteMissPolicy,
    /// Write-hit policy.
    pub write_hit: WriteHitPolicy,
}

impl CacheConfig {
    /// A direct-mapped, write-validate, write-back cache — the paper's
    /// default configuration.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `block` is not a power of two, if `block` is
    /// outside 8..=1024 bytes, or if `block > size`.
    pub fn direct_mapped(size: u32, block: u32) -> Self {
        let cfg = CacheConfig {
            size,
            block,
            assoc: 1,
            write_miss: WriteMissPolicy::WriteValidate,
            write_hit: WriteHitPolicy::WriteBack,
        };
        cfg.validate();
        cfg
    }

    /// Same geometry, different write-miss policy.
    pub fn with_write_miss(mut self, policy: WriteMissPolicy) -> Self {
        self.write_miss = policy;
        self
    }

    /// Same geometry, different write-hit policy.
    pub fn with_write_hit(mut self, policy: WriteHitPolicy) -> Self {
        self.write_hit = policy;
        self
    }

    /// Same size/block/policies with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` does not divide the number of blocks.
    pub fn with_assoc(mut self, assoc: u32) -> Self {
        assert!(
            assoc >= 1 && self.num_blocks().is_multiple_of(assoc),
            "bad associativity {assoc}"
        );
        self.assoc = assoc;
        self
    }

    fn validate(&self) {
        assert!(
            self.size.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            self.block.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!((8..=1024).contains(&self.block), "block size out of range");
        assert!(self.block <= self.size, "block larger than cache");
    }

    /// Number of blocks in the cache.
    #[inline]
    pub fn num_blocks(&self) -> u32 {
        self.size / self.block
    }

    /// Number of sets (`num_blocks / assoc`).
    #[inline]
    pub fn num_sets(&self) -> u32 {
        self.num_blocks() / self.assoc
    }

    /// Words per block.
    #[inline]
    pub fn words_per_block(&self) -> u32 {
        self.block / 4
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let size = if self.size >= 1 << 20 {
            format!("{}m", self.size >> 20)
        } else {
            format!("{}k", self.size >> 10)
        };
        write!(f, "{size}/{}b/{}-way", self.block, self.assoc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::direct_mapped(64 * 1024, 64);
        assert_eq!(c.num_blocks(), 1024);
        assert_eq!(c.num_sets(), 1024);
        assert_eq!(c.words_per_block(), 16);
        assert_eq!(c.to_string(), "64k/64b/1-way");
        assert_eq!(
            CacheConfig::direct_mapped(4 << 20, 256).to_string(),
            "4m/256b/1-way"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        CacheConfig::direct_mapped(48 * 1024, 64);
    }

    #[test]
    #[should_panic(expected = "block size out of range")]
    fn rejects_tiny_blocks() {
        CacheConfig::direct_mapped(64 * 1024, 4);
    }

    #[test]
    fn associativity_divides() {
        let c = CacheConfig::direct_mapped(64 * 1024, 64).with_assoc(4);
        assert_eq!(c.num_sets(), 256);
    }
}
