//! The grid-vectorized direct-mapped simulator.
//!
//! The paper's §5 result is one address stream measured against a whole
//! grid of cache configurations (size × block × policy). Simulating the
//! grid as K independent [`Cache`] sinks pays the stream-dispatch cost K
//! times per event; [`GridCache`] instead holds all K configurations as
//! lanes over one shared flat block-state arena and updates every lane
//! per event — so a single decode pass (see
//! [`cachegc_trace::RecordedTrace::replay_batched`]) drives the entire
//! grid, and each lane's precomputed geometry stays in registers across a
//! whole [`EventBatch`].
//!
//! Bit-identity is the bar: every lane replicates
//! [`Cache::access_classified`] exactly — same state transitions, same
//! statistics counters in the same order — which the differential tests
//! below check against K independent [`Cache`] oracles for every
//! write-hit × write-miss policy combination.

use cachegc_trace::{Access, EventBatch, TraceSink};

use crate::cache::Cache;
use crate::config::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
use crate::stats::CacheStats;

const EMPTY: u32 = u32::MAX;

/// One cache block's state, packed so an access touches a single record
/// (one or two cache lines) instead of three parallel arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockState {
    tag: u32,
    valid: u64,
    dirty: u64,
}

/// One configuration's lane: precomputed geometry, policy flags, the
/// lane's window into the shared arena, and its statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Lane {
    cfg: CacheConfig,
    offset_bits: u32,
    index_bits: u32,
    index_mask: u32,
    block_mask: u32,
    full_mask: u64,
    write_back: bool,
    fetch_on_write: bool,
    /// First arena slot of this lane's blocks.
    base: usize,
    stats: CacheStats,
}

/// K direct-mapped caches simulated in lockstep over one event stream.
///
/// Behaves exactly like a `Vec<Cache>` fanout — per-lane statistics are
/// bit-identical — but consumes the stream once per *batch* instead of
/// once per `(event, cache)` pair, with all lane state (tag, valid and
/// dirty bitmaps) in one shared flat arena of per-block records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridCache {
    lanes: Vec<Lane>,
    blocks: Vec<BlockState>,
    events: u64,
}

impl GridCache {
    /// A grid over `configs`, every lane empty.
    ///
    /// # Panics
    ///
    /// Panics if any configuration is not direct-mapped (`assoc != 1`);
    /// use [`crate::SetAssocCache`] sinks for associative ablations.
    pub fn new(configs: Vec<CacheConfig>) -> Self {
        let mut lanes = Vec::with_capacity(configs.len());
        let mut total = 0usize;
        for cfg in configs {
            assert_eq!(cfg.assoc, 1, "GridCache is direct-mapped; got {cfg}");
            let wpb = cfg.words_per_block();
            let full_mask = if wpb >= 64 {
                u64::MAX
            } else {
                (1u64 << wpb) - 1
            };
            let index_mask = cfg.num_blocks() - 1;
            lanes.push(Lane {
                cfg,
                offset_bits: cfg.block.trailing_zeros(),
                index_bits: index_mask.count_ones(),
                index_mask,
                block_mask: cfg.block - 1,
                full_mask,
                write_back: cfg.write_hit == WriteHitPolicy::WriteBack,
                fetch_on_write: cfg.write_miss == WriteMissPolicy::FetchOnWrite,
                base: total,
                stats: CacheStats::new(cfg.num_blocks()),
            });
            total += cfg.num_blocks() as usize;
        }
        GridCache {
            lanes,
            blocks: vec![
                BlockState {
                    tag: EMPTY,
                    valid: 0,
                    dirty: 0,
                };
                total
            ],
            events: 0,
        }
    }

    /// Number of configurations (lanes) in the grid.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when the grid holds no configurations.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Events consumed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// `(config, event)` cell updates performed so far — the grid-kernel
    /// work metric (`events × lanes`).
    pub fn cells_simulated(&self) -> u64 {
        self.events * self.lanes.len() as u64
    }

    /// The configurations, in lane order.
    pub fn configs(&self) -> Vec<CacheConfig> {
        self.lanes.iter().map(|l| l.cfg).collect()
    }

    /// One lane's accumulated statistics.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.len()`.
    pub fn stats(&self, lane: usize) -> &CacheStats {
        &self.lanes[lane].stats
    }

    /// Consume the grid, returning `(config, stats)` per lane in order.
    pub fn into_cells(self) -> Vec<(CacheConfig, CacheStats)> {
        self.lanes.into_iter().map(|l| (l.cfg, l.stats)).collect()
    }

    /// Simulate one access in `lane`, whose block window is `blocks`
    /// (a power-of-two-length slice, so the mask derived from its length
    /// provably bounds the index). Replicates
    /// [`Cache::access_classified`] exactly: same transitions, same
    /// counters, same order.
    #[inline]
    fn step(lane: &mut Lane, blocks: &mut [BlockState], a: Access) {
        let rel = ((a.addr >> lane.offset_bits) as usize) & (blocks.len() - 1);
        let blk = &mut blocks[rel];
        let tag = a.addr >> lane.offset_bits >> lane.index_bits;
        let bit = 1u64 << ((a.addr & lane.block_mask) >> 2);
        lane.stats.count_ref(a.ctx, a.is_read(), rel);

        if a.is_read() {
            if blk.tag == tag {
                if blk.valid & bit != 0 {
                    return;
                }
                // Present tag, invalid word: sub-block fill of the rest.
                blk.valid = lane.full_mask;
                lane.stats.count_partial_fill();
                lane.stats.count_fetch(a.ctx);
                lane.stats.count_block_miss(rel, false);
            } else {
                if lane.write_back && blk.dirty != 0 {
                    lane.stats.count_writeback();
                }
                blk.dirty = 0;
                blk.tag = tag;
                blk.valid = lane.full_mask;
                lane.stats.count_read_miss_fetch();
                lane.stats.count_fetch(a.ctx);
                lane.stats.count_block_miss(rel, false);
            }
        } else {
            // Write.
            if !lane.write_back {
                lane.stats.count_write_through();
            }
            if blk.tag == tag {
                blk.valid |= bit;
                if lane.write_back {
                    blk.dirty |= bit;
                }
                return;
            }
            if lane.write_back && blk.dirty != 0 {
                lane.stats.count_writeback();
            }
            blk.dirty = 0;
            blk.tag = tag;
            lane.stats.count_block_miss(rel, a.alloc_init);
            if lane.fetch_on_write {
                blk.valid = lane.full_mask;
                lane.stats.count_write_miss_fetch();
                lane.stats.count_fetch(a.ctx);
            } else {
                blk.valid = bit;
                lane.stats.count_write_validate_install();
            }
            if lane.write_back {
                blk.dirty = bit;
            }
        }
    }

    /// Update every lane with one decoded batch. Lanes are the outer loop
    /// so each lane's geometry and hot blocks stay cached across the
    /// whole batch — this is the kernel one batched decode pass drives.
    pub fn consume(&mut self, batch: &EventBatch) {
        let GridCache {
            lanes,
            blocks,
            events,
        } = self;
        for lane in lanes.iter_mut() {
            let n = lane.index_mask as usize + 1;
            let blocks = &mut blocks[lane.base..lane.base + n];
            for a in batch.accesses() {
                Self::step(lane, blocks, a);
            }
        }
        *events += batch.len() as u64;
    }
}

impl TraceSink for GridCache {
    #[inline]
    fn access(&mut self, a: Access) {
        let GridCache {
            lanes,
            blocks,
            events,
        } = self;
        for lane in lanes.iter_mut() {
            let n = lane.index_mask as usize + 1;
            Self::step(lane, &mut blocks[lane.base..lane.base + n], a);
        }
        *events += 1;
    }
}

/// A `Vec<Cache>` built over the same configurations — the sequential
/// oracle the grid is differentially tested (and golden-checked) against.
pub fn grid_oracle(configs: &[CacheConfig]) -> Vec<Cache> {
    configs.iter().map(|&c| Cache::new(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegc_trace::Context;

    /// SplitMix64, inlined (no registry deps in this workspace).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A random mixed stream: monotone allocation walks, absolute jumps,
    /// context flips, and all three access kinds.
    fn mixed_stream(seed: u64, n: usize) -> Vec<Access> {
        let mut state = seed;
        let mut addr = 0x1000_0000u32;
        (0..n)
            .map(|_| {
                let r = splitmix(&mut state);
                addr = match r % 4 {
                    0 => addr.wrapping_add(4),
                    1 => addr.wrapping_add((r >> 40) as u32 & 0xfff),
                    2 => (r >> 16) as u32,
                    _ => addr.wrapping_sub(64),
                };
                let ctx = if r & (1 << 60) != 0 {
                    Context::Collector
                } else {
                    Context::Mutator
                };
                match (r >> 61) % 3 {
                    0 => Access::read(addr, ctx),
                    1 => Access::write(addr, ctx),
                    _ => Access::alloc_write(addr, ctx),
                }
            })
            .collect()
    }

    /// Every write-hit × write-miss policy combination over a small
    /// size/block grid.
    fn policy_grid() -> Vec<CacheConfig> {
        let mut configs = Vec::new();
        for &(size, block) in &[(32u32 << 10, 16u32), (32 << 10, 64), (128 << 10, 32)] {
            for hit in [WriteHitPolicy::WriteBack, WriteHitPolicy::WriteThrough] {
                for miss in [
                    WriteMissPolicy::WriteValidate,
                    WriteMissPolicy::FetchOnWrite,
                ] {
                    configs.push(
                        CacheConfig::direct_mapped(size, block)
                            .with_write_hit(hit)
                            .with_write_miss(miss),
                    );
                }
            }
        }
        configs
    }

    #[test]
    fn grid_matches_independent_caches_for_every_policy_combo() {
        let configs = policy_grid();
        for seed in [1u64, 0xdead_beef, 0x5eed_5eed_5eed] {
            let stream = mixed_stream(seed, 20_000);
            let mut grid = GridCache::new(configs.clone());
            let mut oracle = grid_oracle(&configs);
            for &a in &stream {
                grid.access(a);
                for c in &mut oracle {
                    c.access(a);
                }
            }
            assert_eq!(grid.events(), stream.len() as u64);
            assert_eq!(
                grid.cells_simulated(),
                stream.len() as u64 * configs.len() as u64
            );
            for (i, ((cfg, stats), cache)) in grid.into_cells().into_iter().zip(oracle).enumerate()
            {
                assert_eq!(cfg, configs[i], "lane order preserved");
                assert_eq!(
                    stats,
                    cache.into_stats(),
                    "seed {seed:#x}: lane {i} ({cfg}) diverged from its Cache oracle"
                );
            }
        }
    }

    #[test]
    fn batch_consume_matches_per_event_access() {
        use cachegc_trace::Recorder;
        let configs = policy_grid();
        let stream = mixed_stream(0xabcd_ef01, 30_000);
        let mut rec = Recorder::new().with_segment_bytes(4096);
        for &a in &stream {
            rec.access(a);
        }
        let trace = rec.finish().unwrap();
        // Batched: one decode pass drives the whole grid.
        let mut batched = GridCache::new(configs.clone());
        trace.replay_batched(|b| batched.consume(b));
        // Per-event oracle path.
        let mut scalar = GridCache::new(configs);
        for &a in &stream {
            scalar.access(a);
        }
        assert_eq!(batched.events(), scalar.events());
        for (i, (a, b)) in batched
            .into_cells()
            .into_iter()
            .zip(scalar.into_cells())
            .enumerate()
        {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1, "lane {i} ({}) batch/scalar divergence", a.0);
        }
    }

    #[test]
    #[should_panic(expected = "direct-mapped")]
    fn associative_configs_are_rejected() {
        GridCache::new(vec![CacheConfig::direct_mapped(32 << 10, 64).with_assoc(2)]);
    }

    #[test]
    fn empty_grid_is_harmless() {
        let mut g = GridCache::new(Vec::new());
        assert!(g.is_empty());
        g.access(Access::read(0, Context::Mutator));
        assert_eq!(g.events(), 1);
        assert_eq!(g.cells_simulated(), 0);
        assert!(g.into_cells().is_empty());
    }
}
