//! Trace-driven data-cache simulation for the cachegc system.
//!
//! Implements the portion of the cache design space the paper considers
//! (§4): virtually-indexed direct-mapped caches from 32 KB to 4 MB with
//! block sizes from 16 to 256 bytes, a write-miss policy of *write-validate*
//! (write-allocate with per-word sub-block placement) or the conventional
//! *fetch-on-write*, and write-back or write-through write-hit accounting.
//! A set-associative variant is provided for ablation against the paper's
//! direct-mapped choice.
//!
//! Timing follows the paper exactly: the Przybylski main-memory model
//! (30 ns address setup, 180 ns access, 30 ns per 16 bytes transferred) and
//! two hypothetical processors (slow: 30 ns cycle, fast: 2 ns cycle), with a
//! one-cycle hit time.
//!
//! # Example
//!
//! ```
//! use cachegc_sim::{Cache, CacheConfig};
//! use cachegc_trace::{Access, Context, TraceSink};
//!
//! let mut cache = Cache::new(CacheConfig::direct_mapped(64 * 1024, 64));
//! cache.access(Access::read(0x1000_0000, Context::Mutator)); // cold miss
//! cache.access(Access::read(0x1000_0000, Context::Mutator)); // hit
//! assert_eq!(cache.stats().fetches(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assoc;
mod cache;
mod config;
mod grid;
mod stats;
mod timing;

pub use assoc::SetAssocCache;
pub use cache::{Cache, Outcome};
pub use config::{CacheConfig, WriteHitPolicy, WriteMissPolicy};
pub use grid::{grid_oracle, GridCache};
pub use stats::{BlockStats, CacheStats, CacheTotals};
pub use timing::{miss_penalty_cycles, writeback_cycles, MainMemory, Processor, FAST, SLOW};
