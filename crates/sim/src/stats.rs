//! Cache statistics.

use cachegc_trace::Context;

/// Per-cache-block counters, used by the §7 cache-activity analyses.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BlockStats {
    /// References that indexed this cache block.
    pub refs: u64,
    /// Misses of any kind in this cache block (tag installs and partial
    /// fills, including no-fetch write-validate installs).
    pub misses: u64,
    /// Misses caused by initializing stores to fresh dynamic memory blocks —
    /// the paper's *allocation misses*.
    pub alloc_misses: u64,
}

impl BlockStats {
    /// Local miss ratio of this cache block (all misses / refs), the
    /// quantity plotted per-block in the paper's cache-activity graphs.
    pub fn local_miss_ratio(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.misses as f64 / self.refs as f64
        }
    }

    /// Misses excluding allocation misses, as accumulated by the paper's
    /// cumulative miss curves. Allocation misses are a subset of misses by
    /// construction; if a counting bug ever desyncs them, saturate rather
    /// than panic — a degraded plot beats aborting a multi-hour sweep.
    pub fn non_alloc_misses(&self) -> u64 {
        debug_assert!(
            self.alloc_misses <= self.misses,
            "alloc_misses ({}) exceeds misses ({})",
            self.alloc_misses,
            self.misses
        );
        self.misses.saturating_sub(self.alloc_misses)
    }
}

/// Copyable snapshot of the scalar counters in a [`CacheStats`].
///
/// Timeline instruments take a snapshot at each window boundary and subtract
/// consecutive snapshots to attribute traffic to fixed event windows; because
/// every counter is monotonic, `later.delta(earlier)` is exact and the window
/// deltas sum back to the aggregate by construction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheTotals {
    /// Mutator read references.
    pub mutator_reads: u64,
    /// Mutator write references.
    pub mutator_writes: u64,
    /// Collector read references.
    pub collector_reads: u64,
    /// Collector write references.
    pub collector_writes: u64,
    /// Fetches caused by read misses on absent blocks.
    pub read_miss_fetches: u64,
    /// Fetches caused by reads of not-yet-validated words (partial fills).
    pub partial_fill_fetches: u64,
    /// Fetches caused by write misses (fetch-on-write policy only).
    pub write_miss_fetches: u64,
    /// Write misses that installed a tag without fetching (write-validate).
    pub write_validate_installs: u64,
    /// Allocation misses (§7).
    pub alloc_misses: u64,
    /// Fetches attributed to the mutator.
    pub mutator_fetches: u64,
    /// Fetches attributed to the collector.
    pub collector_fetches: u64,
    /// Dirty-block evictions (write-back caches).
    pub writebacks: u64,
    /// Words written through to memory (write-through caches).
    pub write_through_words: u64,
}

impl CacheTotals {
    /// Total references.
    pub fn refs(&self) -> u64 {
        self.mutator_reads + self.mutator_writes + self.collector_reads + self.collector_writes
    }

    /// Read references.
    pub fn reads(&self) -> u64 {
        self.mutator_reads + self.collector_reads
    }

    /// Write references.
    pub fn writes(&self) -> u64 {
        self.mutator_writes + self.collector_writes
    }

    /// Total misses of all kinds, fetching or not.
    pub fn misses(&self) -> u64 {
        self.read_miss_fetches
            + self.partial_fill_fetches
            + self.write_miss_fetches
            + self.write_validate_installs
    }

    /// Misses on the read side (absent-block read misses plus partial fills).
    pub fn read_misses(&self) -> u64 {
        self.read_miss_fetches + self.partial_fill_fetches
    }

    /// Misses on the write side (fetching write misses plus no-fetch installs).
    pub fn write_misses(&self) -> u64 {
        self.write_miss_fetches + self.write_validate_installs
    }

    /// Block fetches from main memory.
    pub fn fetches(&self) -> u64 {
        self.mutator_fetches + self.collector_fetches
    }

    /// Element-wise difference `self - earlier`. Panics in debug builds if
    /// any counter moved backwards (snapshots must come from the same cache
    /// in chronological order); saturates in release builds.
    pub fn delta(&self, earlier: &CacheTotals) -> CacheTotals {
        macro_rules! sub {
            ($field:ident) => {{
                debug_assert!(
                    self.$field >= earlier.$field,
                    concat!(stringify!($field), " went backwards between snapshots"),
                );
                self.$field.saturating_sub(earlier.$field)
            }};
        }
        CacheTotals {
            mutator_reads: sub!(mutator_reads),
            mutator_writes: sub!(mutator_writes),
            collector_reads: sub!(collector_reads),
            collector_writes: sub!(collector_writes),
            read_miss_fetches: sub!(read_miss_fetches),
            partial_fill_fetches: sub!(partial_fill_fetches),
            write_miss_fetches: sub!(write_miss_fetches),
            write_validate_installs: sub!(write_validate_installs),
            alloc_misses: sub!(alloc_misses),
            mutator_fetches: sub!(mutator_fetches),
            collector_fetches: sub!(collector_fetches),
            writebacks: sub!(writebacks),
            write_through_words: sub!(write_through_words),
        }
    }

    /// Element-wise sum, for reconstructing aggregates from window deltas.
    pub fn add(&self, other: &CacheTotals) -> CacheTotals {
        CacheTotals {
            mutator_reads: self.mutator_reads + other.mutator_reads,
            mutator_writes: self.mutator_writes + other.mutator_writes,
            collector_reads: self.collector_reads + other.collector_reads,
            collector_writes: self.collector_writes + other.collector_writes,
            read_miss_fetches: self.read_miss_fetches + other.read_miss_fetches,
            partial_fill_fetches: self.partial_fill_fetches + other.partial_fill_fetches,
            write_miss_fetches: self.write_miss_fetches + other.write_miss_fetches,
            write_validate_installs: self.write_validate_installs + other.write_validate_installs,
            alloc_misses: self.alloc_misses + other.alloc_misses,
            mutator_fetches: self.mutator_fetches + other.mutator_fetches,
            collector_fetches: self.collector_fetches + other.collector_fetches,
            writebacks: self.writebacks + other.writebacks,
            write_through_words: self.write_through_words + other.write_through_words,
        }
    }
}

/// Aggregate and per-block statistics for one simulated cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    mutator_reads: u64,
    mutator_writes: u64,
    collector_reads: u64,
    collector_writes: u64,

    read_miss_fetches: u64,
    partial_fill_fetches: u64,
    write_miss_fetches: u64,
    write_validate_installs: u64,
    alloc_misses: u64,

    mutator_fetches: u64,
    collector_fetches: u64,

    writebacks: u64,
    write_through_words: u64,

    blocks: Vec<BlockStats>,
}

impl CacheStats {
    pub(crate) fn new(num_blocks: u32) -> Self {
        CacheStats {
            blocks: vec![BlockStats::default(); num_blocks as usize],
            ..Default::default()
        }
    }

    #[inline]
    pub(crate) fn count_ref(&mut self, ctx: Context, is_read: bool, block: usize) {
        match (ctx, is_read) {
            (Context::Mutator, true) => self.mutator_reads += 1,
            (Context::Mutator, false) => self.mutator_writes += 1,
            (Context::Collector, true) => self.collector_reads += 1,
            (Context::Collector, false) => self.collector_writes += 1,
        }
        self.blocks[block].refs += 1;
    }

    #[inline]
    pub(crate) fn count_fetch(&mut self, ctx: Context) {
        match ctx {
            Context::Mutator => self.mutator_fetches += 1,
            Context::Collector => self.collector_fetches += 1,
        }
    }

    #[inline]
    pub(crate) fn count_block_miss(&mut self, block: usize, alloc: bool) {
        self.blocks[block].misses += 1;
        if alloc {
            self.blocks[block].alloc_misses += 1;
            self.alloc_misses += 1;
        }
    }

    #[inline]
    pub(crate) fn count_read_miss_fetch(&mut self) {
        self.read_miss_fetches += 1;
    }

    #[inline]
    pub(crate) fn count_partial_fill(&mut self) {
        self.partial_fill_fetches += 1;
    }

    #[inline]
    pub(crate) fn count_write_miss_fetch(&mut self) {
        self.write_miss_fetches += 1;
    }

    #[inline]
    pub(crate) fn count_write_validate_install(&mut self) {
        self.write_validate_installs += 1;
    }

    #[inline]
    pub(crate) fn count_writeback(&mut self) {
        self.writebacks += 1;
    }

    #[inline]
    pub(crate) fn count_write_through(&mut self) {
        self.write_through_words += 1;
    }

    /// Total references seen.
    pub fn refs(&self) -> u64 {
        self.mutator_reads + self.mutator_writes + self.collector_reads + self.collector_writes
    }

    /// References made by `ctx`.
    pub fn refs_by(&self, ctx: Context) -> u64 {
        match ctx {
            Context::Mutator => self.mutator_reads + self.mutator_writes,
            Context::Collector => self.collector_reads + self.collector_writes,
        }
    }

    /// Block fetches from main memory — the misses that stall the processor
    /// and thus the `M` of the paper's overhead formulas.
    pub fn fetches(&self) -> u64 {
        self.mutator_fetches + self.collector_fetches
    }

    /// Fetches attributed to `ctx` (`M_prog` vs `M_gc`).
    pub fn fetches_by(&self, ctx: Context) -> u64 {
        match ctx {
            Context::Mutator => self.mutator_fetches,
            Context::Collector => self.collector_fetches,
        }
    }

    /// Fetches caused by read misses on absent blocks.
    pub fn read_miss_fetches(&self) -> u64 {
        self.read_miss_fetches
    }

    /// Fetches caused by reads of not-yet-validated words in a present
    /// block (write-validate sub-block fills).
    pub fn partial_fill_fetches(&self) -> u64 {
        self.partial_fill_fetches
    }

    /// Fetches caused by write misses (fetch-on-write policy only).
    pub fn write_miss_fetches(&self) -> u64 {
        self.write_miss_fetches
    }

    /// Write misses that installed a tag without fetching (write-validate).
    pub fn write_validate_installs(&self) -> u64 {
        self.write_validate_installs
    }

    /// Allocation misses (§7): tag-installing misses caused by initializing
    /// stores to fresh dynamic memory blocks.
    pub fn alloc_misses(&self) -> u64 {
        self.alloc_misses
    }

    /// Total misses of all kinds, fetching or not.
    pub fn misses(&self) -> u64 {
        self.read_miss_fetches
            + self.partial_fill_fetches
            + self.write_miss_fetches
            + self.write_validate_installs
    }

    /// Classic miss ratio (all misses over all references).
    pub fn miss_ratio(&self) -> f64 {
        if self.refs() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.refs() as f64
        }
    }

    /// Dirty-block evictions (write-back caches).
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Words written through to memory (write-through caches).
    pub fn write_through_words(&self) -> u64 {
        self.write_through_words
    }

    /// Per-cache-block statistics.
    pub fn blocks(&self) -> &[BlockStats] {
        &self.blocks
    }

    /// Copyable snapshot of the scalar counters (everything except the
    /// per-block vectors), for windowed timeline deltas.
    pub fn totals(&self) -> CacheTotals {
        CacheTotals {
            mutator_reads: self.mutator_reads,
            mutator_writes: self.mutator_writes,
            collector_reads: self.collector_reads,
            collector_writes: self.collector_writes,
            read_miss_fetches: self.read_miss_fetches,
            partial_fill_fetches: self.partial_fill_fetches,
            write_miss_fetches: self.write_miss_fetches,
            write_validate_installs: self.write_validate_installs,
            alloc_misses: self.alloc_misses,
            mutator_fetches: self.mutator_fetches,
            collector_fetches: self.collector_fetches,
            writebacks: self.writebacks,
            write_through_words: self.write_through_words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_stats_ratios() {
        let b = BlockStats {
            refs: 100,
            misses: 10,
            alloc_misses: 4,
        };
        assert!((b.local_miss_ratio() - 0.1).abs() < 1e-12);
        assert_eq!(b.non_alloc_misses(), 6);
        assert_eq!(BlockStats::default().local_miss_ratio(), 0.0);
    }

    #[test]
    fn non_alloc_misses_saturates_on_desynced_counters() {
        let b = BlockStats {
            refs: 1,
            misses: 1,
            alloc_misses: 2,
        };
        if cfg!(debug_assertions) {
            // Debug builds surface the counting bug loudly.
            assert!(std::panic::catch_unwind(|| b.non_alloc_misses()).is_err());
        } else {
            // Release sweeps degrade to zero instead of aborting.
            assert_eq!(b.non_alloc_misses(), 0);
        }
    }

    #[test]
    fn totals_snapshot_and_delta() {
        let mut s = CacheStats::new(4);
        s.count_ref(Context::Mutator, true, 0);
        s.count_fetch(Context::Mutator);
        s.count_read_miss_fetch();
        let early = s.totals();
        s.count_ref(Context::Collector, false, 1);
        s.count_write_validate_install();
        s.count_writeback();
        let late = s.totals();
        let d = late.delta(&early);
        assert_eq!(d.refs(), 1);
        assert_eq!(d.collector_writes, 1);
        assert_eq!(d.misses(), 1);
        assert_eq!(d.write_misses(), 1);
        assert_eq!(d.read_misses(), 0);
        assert_eq!(d.writebacks, 1);
        assert_eq!(early.add(&d), late);
        assert_eq!(late.delta(&late), CacheTotals::default());
    }

    #[test]
    fn aggregate_accounting() {
        let mut s = CacheStats::new(4);
        s.count_ref(Context::Mutator, true, 0);
        s.count_ref(Context::Collector, false, 1);
        s.count_fetch(Context::Mutator);
        s.count_read_miss_fetch();
        s.count_block_miss(0, true);
        assert_eq!(s.refs(), 2);
        assert_eq!(s.refs_by(Context::Mutator), 1);
        assert_eq!(s.fetches(), 1);
        assert_eq!(s.fetches_by(Context::Collector), 0);
        assert_eq!(s.alloc_misses(), 1);
        assert_eq!(s.blocks()[0].misses, 1);
    }
}
