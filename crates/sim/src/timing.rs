//! The paper's timing model (§5).
//!
//! Main memory follows Przybylski's system: a 30 ns address setup, a 180 ns
//! access time, and a 30 ns transfer time per 16 bytes. Fetching an
//! `n`-byte block therefore takes `210 + 30·(n/16)` ns. Two hypothetical
//! processors are considered: *slow* (30 ns cycle, a 33 MHz machine of the
//! paper's day) and *fast* (2 ns cycle, 500 MHz). Hits take one cycle and
//! never stall the processor.

/// Main-memory timing parameters, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MainMemory {
    /// Address setup time.
    pub setup_ns: f64,
    /// Access time for the first datum.
    pub access_ns: f64,
    /// Transfer time per 16 bytes moved.
    pub transfer_ns_per_16b: f64,
}

impl MainMemory {
    /// The Przybylski memory system used throughout the paper.
    pub const fn przybylski() -> Self {
        MainMemory {
            setup_ns: 30.0,
            access_ns: 180.0,
            transfer_ns_per_16b: 30.0,
        }
    }

    /// Time to fetch an `bytes`-byte block from memory.
    pub fn fetch_ns(&self, bytes: u32) -> f64 {
        self.setup_ns + self.access_ns + self.transfer_ns_per_16b * (bytes as f64 / 16.0).ceil()
    }

    /// Time to write an `bytes`-byte block back to memory (setup plus
    /// transfer; no access latency is charged for a write).
    ///
    /// The paper does not analyze write costs in detail (§4), reporting only
    /// that preliminary measurements show them to be low; this model is the
    /// natural completion of the Przybylski parameters.
    pub fn writeback_ns(&self, bytes: u32) -> f64 {
        self.setup_ns + self.transfer_ns_per_16b * (bytes as f64 / 16.0).ceil()
    }
}

impl Default for MainMemory {
    fn default() -> Self {
        Self::przybylski()
    }
}

/// A hypothetical processor, defined by its cycle time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Processor {
    /// Short name used in reports ("slow" / "fast").
    pub name: &'static str,
    /// Cycle time in nanoseconds.
    pub cycle_ns: f64,
}

/// The slow processor: 30 ns cycle (33 MHz), a workstation of 1994.
pub const SLOW: Processor = Processor {
    name: "slow",
    cycle_ns: 30.0,
};

/// The fast processor: 2 ns cycle (500 MHz), the near future of 1994.
pub const FAST: Processor = Processor {
    name: "fast",
    cycle_ns: 2.0,
};

/// Miss penalty in processor cycles for fetching a block of `block_bytes`.
///
/// ```
/// use cachegc_sim::{miss_penalty_cycles, MainMemory, FAST, SLOW};
/// let mem = MainMemory::przybylski();
/// assert_eq!(miss_penalty_cycles(&mem, &SLOW, 16), 8);   // 240 ns / 30 ns
/// assert_eq!(miss_penalty_cycles(&mem, &FAST, 16), 120); // 240 ns / 2 ns
/// ```
pub fn miss_penalty_cycles(mem: &MainMemory, cpu: &Processor, block_bytes: u32) -> u64 {
    (mem.fetch_ns(block_bytes) / cpu.cycle_ns).ceil() as u64
}

/// Write-back penalty in processor cycles for a `block_bytes` block.
pub fn writeback_cycles(mem: &MainMemory, cpu: &Processor, block_bytes: u32) -> u64 {
    (mem.writeback_ns(block_bytes) / cpu.cycle_ns).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §5 penalty table, reconstructed from the stated memory model.
    #[test]
    fn penalty_table_matches_paper_model() {
        let mem = MainMemory::przybylski();
        let cases = [
            (16u32, 8u64, 120u64),
            (32, 9, 135),
            (64, 11, 165),
            (128, 15, 225),
            (256, 23, 345),
        ];
        for (block, slow, fast) in cases {
            assert_eq!(
                miss_penalty_cycles(&mem, &SLOW, block),
                slow,
                "slow, {block}b"
            );
            assert_eq!(
                miss_penalty_cycles(&mem, &FAST, block),
                fast,
                "fast, {block}b"
            );
        }
    }

    #[test]
    fn fetch_time_is_affine_in_transfer_units() {
        let mem = MainMemory::przybylski();
        assert_eq!(mem.fetch_ns(16), 240.0);
        assert_eq!(mem.fetch_ns(32), 270.0);
        assert_eq!(mem.fetch_ns(256), 210.0 + 30.0 * 16.0);
    }

    #[test]
    fn writeback_cheaper_than_fetch() {
        let mem = MainMemory::przybylski();
        for block in [16, 32, 64, 128, 256] {
            assert!(mem.writeback_ns(block) < mem.fetch_ns(block));
        }
    }
}
