//! Engine observability: what a packet-crew run reports about its
//! workers.
//!
//! The engine cannot use the thread-local probe shards — its workers are
//! plain scoped threads with closures that outlive the caller — so each
//! worker keeps a private [`WorkerStats`] and hands it back at join
//! time. The fanout assembles one [`EngineReport`] per run and feeds
//! it to [`Telemetry::record_engine`](crate::Telemetry::record_engine),
//! which folds it into bounded [`EngineTotals`] (per-worker sums, never a
//! per-run log, so a ten-thousand-pass sweep stays O(workers)).

use std::collections::BTreeMap;

/// One worker thread's private counters for one engine run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Sink-events applied: every `(event, sink)` pair this worker drove.
    pub events: u64,
    /// Chunks replayed (per sink under work-stealing, per shard under
    /// round-robin).
    pub chunks: u64,
    /// Work-stealing task claims (0 under round-robin, where assignment
    /// is static).
    pub steals: u64,
    /// Time spent waiting for work (blocked on the channel or the steal
    /// queue's condvar).
    pub idle_ns: u64,
}

impl WorkerStats {
    /// Add `other`'s counters into `self`.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.events += other.events;
        self.chunks += other.chunks;
        self.steals += other.steals;
        self.idle_ns += other.idle_ns;
    }
}

/// Everything one packet-fanout run observed about itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// Schedule name (`round-robin` / `work-stealing`).
    pub schedule: &'static str,
    /// Worker threads in the run.
    pub jobs: usize,
    /// Sinks the run drove.
    pub sinks: usize,
    /// Chunks the producer published.
    pub chunks_published: u64,
    /// Events the producer published (per-stream, not per-sink).
    pub events_published: u64,
    /// Time the producer spent blocked on backpressure (full channel or
    /// full steal window).
    pub backpressure_ns: u64,
    /// High-water mark of unconsumed chunks queued for any one worker
    /// (round-robin) or in the steal window (work-stealing).
    pub queue_depth_hwm: u64,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

/// A worker slot's totals across every observed engine run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerTotals {
    /// Engine runs this worker slot participated in.
    pub runs: u64,
    /// Summed per-run counters.
    pub stats: WorkerStats,
}

/// Bounded aggregate of every [`EngineReport`] a run produced.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EngineTotals {
    /// Engine runs observed.
    pub runs: u64,
    /// Total chunks published across runs.
    pub chunks_published: u64,
    /// Total events published across runs.
    pub events_published: u64,
    /// Total producer backpressure time across runs.
    pub backpressure_ns: u64,
    /// Maximum queue depth seen in any run.
    pub queue_depth_hwm: u64,
    /// Runs per schedule name.
    pub by_schedule: BTreeMap<&'static str, u64>,
    /// Per-worker-slot totals; slot `i` aggregates worker `i` of every
    /// run that had at least `i + 1` workers.
    pub workers: Vec<WorkerTotals>,
}

impl EngineTotals {
    /// Fold one run's report into the totals.
    pub fn absorb(&mut self, report: &EngineReport) {
        self.runs += 1;
        self.chunks_published += report.chunks_published;
        self.events_published += report.events_published;
        self.backpressure_ns += report.backpressure_ns;
        self.queue_depth_hwm = self.queue_depth_hwm.max(report.queue_depth_hwm);
        *self.by_schedule.entry(report.schedule).or_insert(0) += 1;
        if self.workers.len() < report.workers.len() {
            self.workers
                .resize(report.workers.len(), WorkerTotals::default());
        }
        for (slot, stats) in self.workers.iter_mut().zip(&report.workers) {
            slot.runs += 1;
            slot.stats.merge(stats);
        }
    }

    /// Sink-events applied across all runs and workers.
    pub fn events_applied(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.events).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(jobs: usize, events: u64) -> EngineReport {
        EngineReport {
            schedule: "round-robin",
            jobs,
            sinks: 4,
            chunks_published: 10,
            events_published: events,
            backpressure_ns: 5,
            queue_depth_hwm: 3,
            workers: (0..jobs)
                .map(|i| WorkerStats {
                    events: events * (i as u64 + 1),
                    chunks: 10,
                    steals: 0,
                    idle_ns: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn totals_absorb_reports_of_mixed_width() {
        let mut t = EngineTotals::default();
        t.absorb(&report(2, 100));
        t.absorb(&report(3, 10));
        assert_eq!(t.runs, 2);
        assert_eq!(t.chunks_published, 20);
        assert_eq!(t.events_published, 110);
        assert_eq!(t.queue_depth_hwm, 3);
        assert_eq!(t.by_schedule["round-robin"], 2);
        assert_eq!(t.workers.len(), 3);
        // Slot 0 saw both runs, slot 2 only the wider one.
        assert_eq!(t.workers[0].runs, 2);
        assert_eq!(t.workers[0].stats.events, 110);
        assert_eq!(t.workers[2].runs, 1);
        assert_eq!(t.workers[2].stats.events, 30);
        assert_eq!(t.events_applied(), 110 + 220 + 30);
    }
}
