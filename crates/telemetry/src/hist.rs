//! Log-scale duration histograms for GC pauses and phase spans.

/// Number of log2 buckets. Bucket `i` covers `[2^i, 2^(i+1))` nanoseconds
/// (bucket 0 also absorbs 0 ns); the last bucket absorbs everything from
/// `2^(BUCKETS-1)` ns (~2.3 s) up.
pub const BUCKETS: usize = 32;

/// A histogram of durations in log2-nanosecond buckets.
///
/// Fixed-size and allocation-free so per-thread shards can carry one per
/// phase; sums of histograms are themselves histograms, which is what makes
/// the per-worker-shard merge exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauseHist {
    buckets: [u64; BUCKETS],
}

impl Default for PauseHist {
    fn default() -> Self {
        PauseHist {
            buckets: [0; BUCKETS],
        }
    }
}

impl PauseHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Which bucket a span of `ns` nanoseconds lands in.
    pub fn bucket_of(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Record one span.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
    }

    /// Add every count from `other` into `self`.
    pub fn merge(&mut self, other: &PauseHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Total spans recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// The raw bucket counts; index `i` counts spans in `[2^i, 2^(i+1))` ns.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Non-empty buckets as `(log2_ns, count)` pairs, ascending — the
    /// manifest serialization.
    pub fn sparse(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(PauseHist::bucket_of(0), 0);
        assert_eq!(PauseHist::bucket_of(1), 0);
        assert_eq!(PauseHist::bucket_of(2), 1);
        assert_eq!(PauseHist::bucket_of(3), 1);
        assert_eq!(PauseHist::bucket_of(4), 2);
        assert_eq!(PauseHist::bucket_of(1023), 9);
        assert_eq!(PauseHist::bucket_of(1024), 10);
        assert_eq!(PauseHist::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn record_merge_and_count() {
        let mut a = PauseHist::new();
        a.record(100);
        a.record(100);
        a.record(1 << 20);
        let mut b = PauseHist::new();
        b.record(100);
        b.merge(&a);
        assert_eq!(b.count(), 4);
        assert_eq!(b.sparse(), vec![(6, 3), (20, 1)]);
        assert!(PauseHist::new().is_empty());
        assert!(!b.is_empty());
    }
}
