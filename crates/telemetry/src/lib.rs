//! Low-overhead instrumentation: monotonic counters, phase timers with
//! pause histograms, and engine observability.
//!
//! Modeled on mmtk-core's `EventCounter`/`PhaseTimer` statistics layer,
//! but lock-free on the hot path: a thread that wants to emit events
//! attaches a private [`Shard`]-per-thread via [`Telemetry::attach`], the
//! [`probe!`] macro and [`probe`] functions write plain (non-atomic)
//! integers into that shard, and the shard merges into the shared
//! [`Telemetry`] totals exactly once, when the attach guard drops. A
//! `--jobs N` run therefore never serializes its workers on a statistics
//! mutex.
//!
//! When no shard is attached to the current thread — the default; nothing
//! in this crate has process-global state — every probe is a thread-local
//! check and a branch. For the truly paranoid, building the workspace with
//! `RUSTFLAGS="--cfg cachegc_probes_off"` compiles every probe body out
//! entirely.
//!
//! This crate sits at the root of the workspace dependency graph (no
//! dependencies, like `cachegc-trace`) so the GC, the VM, and the trace
//! engine can all emit into one registry without knowing who aggregates
//! it. The manifest/reporting layer lives downstream in
//! `cachegc_core::telemetry`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod hist;
pub mod probe;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use engine::{EngineReport, EngineTotals, WorkerStats, WorkerTotals};
pub use hist::{PauseHist, BUCKETS};

/// The closed set of event/byte counters.
///
/// A closed enum (rather than string-keyed registration) keeps the hot
/// path at one array index per increment and makes the manifest schema a
/// fixed, diffable vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Live VM executions (one per trace-store miss or store-less pass).
    VmRuns,
    /// Heap allocations the VM performed.
    VmAllocs,
    /// Allocation requests that triggered a garbage collection.
    VmGcTriggers,
    /// Minor (nursery) collections.
    GcMinorCollections,
    /// Major (full-heap) collections.
    GcMajorCollections,
    /// Bytes the collectors copied (evacuation traffic).
    GcBytesCopied,
    /// Bytes promoted from the nursery to the old generation.
    GcBytesPromoted,
    /// Bytes of dead memory reclaimed by sweeping (non-moving collectors).
    GcBytesSwept,
    /// Free lines recovered by mark-region reclamation.
    GcLinesReclaimed,
    /// Encoded bytes accepted into the trace store.
    StoreRecordedBytes,
    /// Events accepted into the trace store.
    StoreRecordedEvents,
    /// Trace captures dropped because the store was over budget.
    StoreCapturesDropped,
    /// Scenarios the trace store evicted (LRU) to make room.
    StoreEvictions,
    /// Heap bytes freed by trace-store evictions.
    StoreBytesEvicted,
    /// Captures the trace store wrote through to spill segment files.
    StoreSpills,
    /// Scenarios re-materialized from spill files instead of re-running
    /// the VM.
    StoreSpillLoads,
    /// Store acquires that coalesced onto an in-flight recording of the
    /// same scenario (single-flight dedupe).
    StoreCoalesced,
    /// Work packets executed by the packet scheduler's crews.
    SchedPackets,
    /// Worker threads successfully pinned to a CPU core.
    AffinityPinned,
    /// Affinity pin attempts that degraded to an unpinned no-op.
    AffinityFallbacks,
    /// `--jobs` requests clamped down to the machine's available parallelism.
    JobsClamped,
    /// Event batches produced by the SWAR batch trace decoder.
    ReplayBatches,
    /// Events the batch decoder fell back to the scalar path for (token
    /// with a flags change, multi-byte tail, or an unclassifiable window).
    ReplayScalarEvents,
    /// `(configuration, event)` cell updates performed by the grid
    /// simulation kernel.
    GridCellsSimulated,
    /// Sample windows committed by timeline instruments.
    TimelineWindows,
    /// Collection markers committed by timeline instruments.
    TimelineCollections,
    /// Timestamped span records captured for trace export.
    TraceSpans,
    /// Span records dropped because a shard hit its capture cap.
    TraceSpansDropped,
    /// Warnings emitted through [`Telemetry::warn`].
    Warnings,
}

impl Counter {
    /// Every counter, in manifest order.
    pub const ALL: [Counter; 29] = [
        Counter::VmRuns,
        Counter::VmAllocs,
        Counter::VmGcTriggers,
        Counter::GcMinorCollections,
        Counter::GcMajorCollections,
        Counter::GcBytesCopied,
        Counter::GcBytesPromoted,
        Counter::GcBytesSwept,
        Counter::GcLinesReclaimed,
        Counter::StoreRecordedBytes,
        Counter::StoreRecordedEvents,
        Counter::StoreCapturesDropped,
        Counter::StoreEvictions,
        Counter::StoreBytesEvicted,
        Counter::StoreSpills,
        Counter::StoreSpillLoads,
        Counter::StoreCoalesced,
        Counter::SchedPackets,
        Counter::AffinityPinned,
        Counter::AffinityFallbacks,
        Counter::JobsClamped,
        Counter::ReplayBatches,
        Counter::ReplayScalarEvents,
        Counter::GridCellsSimulated,
        Counter::TimelineWindows,
        Counter::TimelineCollections,
        Counter::TraceSpans,
        Counter::TraceSpansDropped,
        Counter::Warnings,
    ];

    /// Stable snake-case name used in the manifest.
    pub fn name(self) -> &'static str {
        match self {
            Counter::VmRuns => "vm_runs",
            Counter::VmAllocs => "vm_allocs",
            Counter::VmGcTriggers => "vm_gc_triggers",
            Counter::GcMinorCollections => "gc_minor_collections",
            Counter::GcMajorCollections => "gc_major_collections",
            Counter::GcBytesCopied => "gc_bytes_copied",
            Counter::GcBytesPromoted => "gc_bytes_promoted",
            Counter::GcBytesSwept => "gc_bytes_swept",
            Counter::GcLinesReclaimed => "gc_lines_reclaimed",
            Counter::StoreRecordedBytes => "store_recorded_bytes",
            Counter::StoreRecordedEvents => "store_recorded_events",
            Counter::StoreCapturesDropped => "store_captures_dropped",
            Counter::StoreEvictions => "store_evictions",
            Counter::StoreBytesEvicted => "store_bytes_evicted",
            Counter::StoreSpills => "store_spills",
            Counter::StoreSpillLoads => "store_spill_loads",
            Counter::StoreCoalesced => "store_coalesced",
            Counter::SchedPackets => "sched_packets",
            Counter::AffinityPinned => "affinity_pinned",
            Counter::AffinityFallbacks => "affinity_fallbacks",
            Counter::JobsClamped => "jobs_clamped",
            Counter::ReplayBatches => "replay_batches",
            Counter::ReplayScalarEvents => "replay_scalar_events",
            Counter::GridCellsSimulated => "grid_cells_simulated",
            Counter::TimelineWindows => "timeline_windows",
            Counter::TimelineCollections => "timeline_collections",
            Counter::TraceSpans => "trace_spans",
            Counter::TraceSpansDropped => "trace_spans_dropped",
            Counter::Warnings => "warnings",
        }
    }
}

const N_COUNTERS: usize = Counter::ALL.len();

/// Accumulated measurements for one named phase.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// Spans recorded.
    pub count: u64,
    /// Total wall time across spans, nanoseconds.
    pub wall_ns: u64,
    /// Total thread CPU time across spans, nanoseconds (0 when the span
    /// did not sample CPU time or the platform cannot report it).
    pub cpu_ns: u64,
    /// Per-span wall-time histogram; its [`PauseHist::count`] always
    /// equals `count`.
    pub hist: PauseHist,
}

impl PhaseStats {
    #[cfg_attr(cachegc_probes_off, allow(dead_code))]
    fn record(&mut self, wall_ns: u64, cpu_ns: u64) {
        self.count += 1;
        self.wall_ns += wall_ns;
        self.cpu_ns += cpu_ns;
        self.hist.record(wall_ns);
    }

    /// Add `other`'s accumulations into `self`.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.count += other.count;
        self.wall_ns += other.wall_ns;
        self.cpu_ns += other.cpu_ns;
        self.hist.merge(&other.hist);
    }
}

/// One timestamped span for trace export: a named interval on one
/// thread's timeline, offset from the owning registry's epoch.
///
/// Spans are only captured on shards attached to a registry built with
/// [`Telemetry::with_spans`]; otherwise every span probe is a
/// thread-local check and a branch, like the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (packet kind, phase name, `"idle"`, ...).
    pub name: &'static str,
    /// Category for trace viewers (`"packet"`, `"phase"`, `"sched"`, ...).
    pub cat: &'static str,
    /// Timeline row: index into [`Snapshot::threads`].
    pub tid: u64,
    /// Start offset from the registry's epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant markers like steals).
    pub dur_ns: u64,
}

/// Per-shard span capture cap: a runaway producer drops (and counts)
/// spans instead of exhausting memory.
const SPAN_CAP: usize = 1 << 20;

/// One thread's private accumulation buffer. Plain integers, no atomics:
/// only the owning thread writes, and the guard merges on drop.
#[derive(Debug)]
struct Shard {
    owner: Arc<Telemetry>,
    counters: [u64; N_COUNTERS],
    phases: BTreeMap<&'static str, PhaseStats>,
    tid: u64,
    spans_enabled: bool,
    spans: Vec<SpanRecord>,
    spans_dropped: u64,
}

impl Shard {
    fn fresh(owner: Arc<Telemetry>, tid: u64) -> Shard {
        let spans_enabled = owner.spans_enabled;
        Shard {
            owner,
            counters: [0; N_COUNTERS],
            phases: BTreeMap::new(),
            tid,
            spans_enabled,
            spans: Vec::new(),
            spans_dropped: 0,
        }
    }

    #[cfg_attr(cachegc_probes_off, allow(dead_code))]
    fn push_span(&mut self, name: &'static str, cat: &'static str, start_ns: u64, dur_ns: u64) {
        if !self.spans_enabled {
            return;
        }
        if self.spans.len() >= SPAN_CAP {
            self.spans_dropped += 1;
            return;
        }
        self.spans.push(SpanRecord {
            name,
            cat,
            tid: self.tid,
            start_ns,
            dur_ns,
        });
    }
}

thread_local! {
    static SHARD: RefCell<Option<Shard>> = const { RefCell::new(None) };
}

/// Merged totals, guarded by one mutex that is only taken at shard-merge,
/// engine-report, and snapshot time — never per event.
#[derive(Debug, Default)]
struct Totals {
    counters: [u64; N_COUNTERS],
    phases: BTreeMap<&'static str, PhaseStats>,
    engine: EngineTotals,
    spans: Vec<SpanRecord>,
}

impl Totals {
    fn merge_shard(&mut self, shard: &mut Shard) {
        for (a, b) in self.counters.iter_mut().zip(&shard.counters) {
            *a += b;
        }
        for (name, stats) in &shard.phases {
            self.phases.entry(name).or_default().merge(stats);
        }
        let spans = std::mem::take(&mut shard.spans);
        self.counters[Counter::TraceSpans as usize] += spans.len() as u64;
        self.counters[Counter::TraceSpansDropped as usize] += shard.spans_dropped;
        self.spans.extend(spans);
    }
}

/// A registry of counters, phase timers, and engine reports for one run.
///
/// Create one per run (`Arc<Telemetry>`), [`attach`](Telemetry::attach) it
/// on every thread that executes instrumented code, and
/// [`snapshot`](Telemetry::snapshot) at the end. Threads that never attach
/// contribute nothing and cost nothing.
#[derive(Debug)]
pub struct Telemetry {
    totals: Mutex<Totals>,
    threads: Mutex<Vec<String>>,
    epoch: Instant,
    spans_enabled: bool,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry {
            totals: Mutex::default(),
            threads: Mutex::default(),
            epoch: Instant::now(),
            spans_enabled: false,
        }
    }
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// An empty registry with timestamped span capture enabled: phase
    /// spans and the scheduler's packet/steal/idle/backpressure probes
    /// additionally record [`SpanRecord`]s for trace export.
    pub fn with_spans() -> Telemetry {
        Telemetry {
            spans_enabled: true,
            ..Telemetry::default()
        }
    }

    /// True if this registry captures span records.
    pub fn spans_enabled(&self) -> bool {
        self.spans_enabled
    }

    /// The instant all span timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Stable timeline-row id for a thread name. The same name always
    /// maps to the same id within one registry, so successive crews reuse
    /// their workers' rows in the exported trace.
    fn tid_for(&self, name: &str) -> u64 {
        let mut threads = self.threads.lock().expect("telemetry threads poisoned");
        if let Some(i) = threads.iter().position(|n| n == name) {
            i as u64
        } else {
            threads.push(name.to_string());
            (threads.len() - 1) as u64
        }
    }

    /// Install a fresh probe shard on the current thread, returning a
    /// guard that merges it into this registry when dropped.
    ///
    /// Attaches nest: the new shard shadows any previously attached one
    /// (even from a different registry — the test harness runs telemetry
    /// tests concurrently), and the guard restores it on drop. Guards must
    /// drop in reverse attach order, which scoping enforces naturally.
    pub fn attach(self: &Arc<Self>) -> ShardGuard {
        self.attach_named("main")
    }

    /// As [`attach`](Telemetry::attach), placing the shard's spans on the
    /// timeline row named `name` (e.g. `"worker-3"`).
    pub fn attach_named(self: &Arc<Self>, name: &str) -> ShardGuard {
        let tid = self.tid_for(name);
        let prev = SHARD.with(|s| s.replace(Some(Shard::fresh(Arc::clone(self), tid))));
        ShardGuard { prev }
    }

    /// Add `n` to a counter directly, without a thread-local shard. For
    /// cold paths only (the probe functions are the hot-path interface).
    pub fn count(&self, counter: Counter, n: u64) {
        self.lock().counters[counter as usize] += n;
    }

    /// Emit a one-line warning to stderr and count it.
    pub fn warn(&self, msg: &str) {
        eprintln!("warning: {msg}");
        self.count(Counter::Warnings, 1);
    }

    /// Fold one engine run's report into the totals.
    pub fn record_engine(&self, report: &EngineReport) {
        self.lock().engine.absorb(report);
    }

    /// A copy of everything merged so far. Shards still attached to live
    /// threads are not included — snapshot after joining workers and
    /// dropping guards.
    pub fn snapshot(&self) -> Snapshot {
        let threads = self
            .threads
            .lock()
            .expect("telemetry threads poisoned")
            .clone();
        let totals = self.lock();
        let mut spans = totals.spans.clone();
        spans.sort_by_key(|s| (s.start_ns, s.tid));
        Snapshot {
            counters: totals.counters,
            phases: totals.phases.iter().map(|(&k, v)| (k, v.clone())).collect(),
            engine: totals.engine.clone(),
            spans,
            threads,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Totals> {
        self.totals.lock().expect("telemetry totals poisoned")
    }
}

/// Restores the previously attached shard (if any) and merges the one it
/// shadowed into its registry.
#[derive(Debug)]
pub struct ShardGuard {
    prev: Option<Shard>,
}

impl Drop for ShardGuard {
    fn drop(&mut self) {
        let mine = SHARD.with(|s| s.replace(self.prev.take()));
        if let Some(mut shard) = mine {
            let owner = Arc::clone(&shard.owner);
            owner.lock().merge_shard(&mut shard);
        }
    }
}

/// A point-in-time copy of a [`Telemetry`]'s merged totals.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    counters: [u64; N_COUNTERS],
    /// Per-phase accumulations, sorted by phase name.
    pub phases: Vec<(&'static str, PhaseStats)>,
    /// Aggregated engine observability.
    pub engine: EngineTotals,
    /// Captured span records, sorted by start time (empty unless the
    /// registry was built with [`Telemetry::with_spans`]).
    pub spans: Vec<SpanRecord>,
    /// Thread names, indexed by [`SpanRecord::tid`].
    pub threads: Vec<String>,
}

impl Snapshot {
    /// A counter's merged value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Every counter with its merged value, in [`Counter::ALL`] order.
    pub fn counters(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c, self.counters[c as usize]))
    }

    /// A phase's accumulation, if any span was recorded.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }
}

/// The hot-path increment macro: `probe!(Counter::VmAllocs)` adds 1,
/// `probe!(Counter::GcBytesCopied, n)` adds `n`. Expands to a call into
/// [`probe::count`], which is a thread-local check when no shard is
/// attached and nothing at all under `--cfg cachegc_probes_off`.
#[macro_export]
macro_rules! probe {
    ($counter:expr) => {
        $crate::probe::count($counter, 1)
    };
    ($counter:expr, $n:expr) => {
        $crate::probe::count($counter, $n)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe;

    #[test]
    fn counters_merge_at_guard_drop() {
        let t = Arc::new(Telemetry::new());
        {
            let _g = t.attach();
            probe!(Counter::VmAllocs);
            probe!(Counter::VmAllocs, 4);
            probe!(Counter::GcBytesCopied, 100);
            // Nothing merged while the guard lives.
            assert_eq!(t.snapshot().counter(Counter::VmAllocs), 0);
        }
        let s = t.snapshot();
        assert_eq!(s.counter(Counter::VmAllocs), 5);
        assert_eq!(s.counter(Counter::GcBytesCopied), 100);
        assert_eq!(s.counter(Counter::VmRuns), 0);
    }

    #[test]
    fn probes_without_a_shard_are_dropped() {
        probe!(Counter::VmAllocs, 1000);
        let t = Arc::new(Telemetry::new());
        assert_eq!(t.snapshot().counter(Counter::VmAllocs), 0);
    }

    #[test]
    fn nested_attach_shadows_and_restores() {
        let outer = Arc::new(Telemetry::new());
        let inner = Arc::new(Telemetry::new());
        let g1 = outer.attach();
        probe!(Counter::VmRuns);
        {
            let _g2 = inner.attach();
            probe!(Counter::VmRuns, 10);
        }
        probe!(Counter::VmRuns);
        drop(g1);
        assert_eq!(outer.snapshot().counter(Counter::VmRuns), 2);
        assert_eq!(inner.snapshot().counter(Counter::VmRuns), 10);
    }

    #[test]
    fn phases_accumulate_wall_time_and_histogram() {
        let t = Arc::new(Telemetry::new());
        {
            let _g = t.attach();
            for _ in 0..3 {
                let span = probe::phase("unit_test_phase");
                std::hint::black_box((0..1000u64).sum::<u64>());
                drop(span);
            }
        }
        let s = t.snapshot();
        let p = s.phase("unit_test_phase").expect("phase recorded");
        assert_eq!(p.count, 3);
        assert!(p.wall_ns > 0);
        assert_eq!(p.hist.count(), 3, "histogram sum equals span count");
        assert!(s.phase("never_entered").is_none());
    }

    #[test]
    fn cpu_phase_reports_plausible_cpu_time() {
        let t = Arc::new(Telemetry::new());
        {
            let _g = t.attach();
            let span = probe::phase_cpu("unit_test_cpu_phase");
            std::hint::black_box((0..2_000_000u64).sum::<u64>());
            drop(span);
        }
        let s = t.snapshot();
        let p = s.phase("unit_test_cpu_phase").expect("phase recorded");
        assert_eq!(p.count, 1);
        // CPU time is best-effort (0 where /proc is unavailable), but
        // when reported it cannot exceed wall by more than clock fuzz.
        if p.cpu_ns > 0 {
            assert!(p.cpu_ns <= p.wall_ns.saturating_mul(2).max(1_000_000));
        }
    }

    #[test]
    fn parallel_shards_merge_without_loss() {
        let t = Arc::new(Telemetry::new());
        let threads = 4;
        let per_thread = 1000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let _g = t.attach();
                    for _ in 0..per_thread {
                        probe!(Counter::VmAllocs);
                    }
                });
            }
        });
        assert_eq!(
            t.snapshot().counter(Counter::VmAllocs),
            threads as u64 * per_thread
        );
    }

    #[test]
    fn direct_count_and_warn() {
        let t = Arc::new(Telemetry::new());
        t.count(Counter::StoreCapturesDropped, 2);
        t.warn("unit-test warning, ignore");
        let s = t.snapshot();
        assert_eq!(s.counter(Counter::StoreCapturesDropped), 2);
        assert_eq!(s.counter(Counter::Warnings), 1);
    }

    #[cfg(not(cachegc_probes_off))]
    #[test]
    fn spans_capture_only_when_enabled() {
        let plain = Arc::new(Telemetry::new());
        {
            let _g = plain.attach();
            probe::instant("steal", "sched");
            drop(probe::phase("unit_span_phase"));
        }
        let s = plain.snapshot();
        assert!(s.spans.is_empty());
        assert_eq!(s.counter(Counter::TraceSpans), 0);

        let traced = Arc::new(Telemetry::with_spans());
        assert!(traced.spans_enabled());
        {
            let _g = traced.attach_named("worker-0");
            let t0 = std::time::Instant::now();
            std::hint::black_box((0..1000u64).sum::<u64>());
            probe::span("vm_execute", "packet", t0);
            probe::instant("steal", "sched");
        }
        {
            let _g = traced.attach_named("worker-0");
            probe::instant("steal", "sched");
        }
        {
            let _g = traced.attach_named("main");
            drop(probe::phase("unit_span_phase"));
        }
        let s = traced.snapshot();
        assert_eq!(s.counter(Counter::TraceSpans), 4);
        assert_eq!(s.counter(Counter::TraceSpansDropped), 0);
        assert_eq!(s.spans.len(), 4);
        // Same thread name reuses its timeline row across attaches.
        assert_eq!(s.threads, ["worker-0", "main"]);
        let packet = s.spans.iter().find(|r| r.cat == "packet").unwrap();
        assert_eq!((packet.name, packet.tid), ("vm_execute", 0));
        assert!(packet.dur_ns > 0);
        let phase = s.spans.iter().find(|r| r.cat == "phase").unwrap();
        assert_eq!((phase.name, phase.tid), ("unit_span_phase", 1));
        assert!(s.spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn counter_names_are_unique_and_ordered() {
        let names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(Counter::ALL[0] as usize, 0);
    }
}
