//! Hot-path probe functions: write into the current thread's shard.
//!
//! Each function is a thread-local lookup plus a branch when a shard is
//! attached, and only the lookup when none is. Building with
//! `RUSTFLAGS="--cfg cachegc_probes_off"` compiles the bodies out, making
//! every probe (and the [`probe!`](crate::probe) macro) literally free.

use crate::Counter;
#[cfg(not(cachegc_probes_off))]
use crate::SHARD;
use std::time::Instant;

#[cfg(not(cachegc_probes_off))]
fn dur_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Add `n` to `counter` in the current thread's shard, if one is attached.
#[inline]
pub fn count(counter: Counter, n: u64) {
    #[cfg(not(cachegc_probes_off))]
    SHARD.with(|s| {
        if let Some(shard) = s.borrow_mut().as_mut() {
            shard.counters[counter as usize] += n;
        }
    });
    #[cfg(cachegc_probes_off)]
    let _ = (counter, n);
}

/// True if the current thread has a probe shard attached (telemetry is
/// live on this thread).
#[inline]
pub fn active() -> bool {
    #[cfg(not(cachegc_probes_off))]
    {
        SHARD.with(|s| s.borrow().is_some())
    }
    #[cfg(cachegc_probes_off)]
    {
        false
    }
}

/// True if the current thread's shard captures timestamped span records
/// (its registry was built with [`crate::Telemetry::with_spans`]). Check
/// before reading clocks for a span that would otherwise be discarded.
#[inline]
pub fn spans_active() -> bool {
    #[cfg(not(cachegc_probes_off))]
    {
        SHARD.with(|s| s.borrow().as_ref().is_some_and(|sh| sh.spans_enabled))
    }
    #[cfg(cachegc_probes_off)]
    {
        false
    }
}

/// Record a completed span that began at `start` and ends now, if the
/// current shard captures spans. `cat` groups spans in trace viewers.
#[inline]
pub fn span(name: &'static str, cat: &'static str, start: Instant) {
    #[cfg(not(cachegc_probes_off))]
    SHARD.with(|s| {
        if let Some(shard) = s.borrow_mut().as_mut() {
            if shard.spans_enabled {
                let start_ns = dur_ns(start.saturating_duration_since(shard.owner.epoch));
                shard.push_span(name, cat, start_ns, dur_ns(start.elapsed()));
            }
        }
    });
    #[cfg(cachegc_probes_off)]
    let _ = (name, cat, start);
}

/// Record an instantaneous marker (zero-duration span) at now, if the
/// current shard captures spans.
#[inline]
pub fn instant(name: &'static str, cat: &'static str) {
    #[cfg(not(cachegc_probes_off))]
    SHARD.with(|s| {
        if let Some(shard) = s.borrow_mut().as_mut() {
            if shard.spans_enabled {
                let start_ns = dur_ns(shard.owner.epoch.elapsed());
                shard.push_span(name, cat, start_ns, 0);
            }
        }
    });
    #[cfg(cachegc_probes_off)]
    let _ = (name, cat);
}

/// Start a wall-clock span of the named phase. The span records into the
/// current thread's shard when dropped; if no shard is attached at start,
/// the span is inert and never reads a clock.
#[inline]
pub fn phase(name: &'static str) -> PhaseSpan {
    PhaseSpan::start(name, false)
}

/// As [`phase`], additionally sampling the thread's CPU time (via
/// `/proc/thread-self/schedstat` on Linux; elsewhere CPU time reads as 0).
/// Sampling is two small file reads per span — use for coarse phases
/// (whole passes), not per-pause spans.
#[inline]
pub fn phase_cpu(name: &'static str) -> PhaseSpan {
    PhaseSpan::start(name, true)
}

/// An in-flight phase span; records on drop.
#[derive(Debug)]
pub struct PhaseSpan {
    #[cfg(not(cachegc_probes_off))]
    name: &'static str,
    #[cfg(not(cachegc_probes_off))]
    start: Option<Instant>,
    #[cfg(not(cachegc_probes_off))]
    cpu_start: Option<u64>,
}

impl PhaseSpan {
    #[cfg(not(cachegc_probes_off))]
    fn start(name: &'static str, sample_cpu: bool) -> PhaseSpan {
        if !active() {
            return PhaseSpan {
                name,
                start: None,
                cpu_start: None,
            };
        }
        PhaseSpan {
            name,
            cpu_start: if sample_cpu { thread_cpu_ns() } else { None },
            start: Some(Instant::now()),
        }
    }

    #[cfg(cachegc_probes_off)]
    fn start(_name: &'static str, _sample_cpu: bool) -> PhaseSpan {
        PhaseSpan {}
    }
}

#[cfg(not(cachegc_probes_off))]
impl Drop for PhaseSpan {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let cpu_ns = match (self.cpu_start, thread_cpu_ns()) {
            (Some(t0), Some(t1)) => t1.saturating_sub(t0),
            _ => 0,
        };
        SHARD.with(|s| {
            if let Some(shard) = s.borrow_mut().as_mut() {
                shard
                    .phases
                    .entry(self.name)
                    .or_default()
                    .record(wall_ns, cpu_ns);
                if shard.spans_enabled {
                    let start_ns = dur_ns(start.saturating_duration_since(shard.owner.epoch));
                    shard.push_span(self.name, "phase", start_ns, wall_ns);
                }
            }
        });
    }
}

/// Nanoseconds this thread has spent on-CPU, from the scheduler. Linux
/// only; `None` where the kernel interface is unavailable.
#[cfg(not(cachegc_probes_off))]
fn thread_cpu_ns() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
        text.split_whitespace().next()?.parse().ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;
    use std::sync::Arc;

    #[test]
    fn inert_span_outside_attach() {
        let span = phase("probe_unit_inert");
        drop(span);
        let t = Arc::new(Telemetry::new());
        assert!(t.snapshot().phase("probe_unit_inert").is_none());
        assert!(!active());
    }

    #[test]
    fn active_flag_tracks_attachment() {
        let t = Arc::new(Telemetry::new());
        assert!(!active());
        {
            let _g = t.attach();
            assert!(active());
        }
        assert!(!active());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn thread_cpu_time_is_monotonic() {
        // Kernels built without CONFIG_SCHEDSTATS (and some container
        // runtimes) expose no /proc/thread-self/schedstat; the probe
        // reports None there and gauges simply stay absent.
        let Some(a) = thread_cpu_ns() else { return };
        std::hint::black_box((0..1_000_000u64).sum::<u64>());
        let b = thread_cpu_ns().expect("schedstat stays readable once read");
        assert!(b >= a);
    }
}
