//! Instruction accounting for the simulated machine.
//!
//! The overhead formulas of §5–§6 need instruction counts: `I_prog` (the
//! program's instructions), `I_gc` (the collector's), and `ΔI_prog` (extra
//! program instructions induced by collection, e.g. hash-table rehashing in
//! a system that hashes on object addresses). The VM charges a calibrated
//! number of abstract machine instructions per bytecode operation.

use crate::event::Context;

/// Broad classes of charged instructions, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Ordinary program execution.
    Program,
    /// Garbage collector execution.
    Collector,
    /// Program work induced by collection (e.g. hash-table rehashing).
    GcInduced,
}

/// Instruction counters for one simulated run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    program: u64,
    collector: u64,
    gc_induced: u64,
}

impl Counters {
    /// Create zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild counters from previously reported parts — the inverse of
    /// ([`Counters::program`], [`Counters::collector`],
    /// [`Counters::gc_induced`]), used when deserializing a recorded
    /// run's stats (e.g. from a trace-store spill file).
    pub fn from_parts(program: u64, collector: u64, gc_induced: u64) -> Self {
        Counters {
            program,
            collector,
            gc_induced,
        }
    }

    /// Charge `n` instructions to `class`.
    #[inline]
    pub fn charge(&mut self, class: InstrClass, n: u64) {
        match class {
            InstrClass::Program => self.program += n,
            InstrClass::Collector => self.collector += n,
            InstrClass::GcInduced => self.gc_induced += n,
        }
    }

    /// Charge `n` instructions to whichever class matches a trace context.
    /// Mutator work is charged to [`InstrClass::Program`].
    #[inline]
    pub fn charge_ctx(&mut self, ctx: Context, n: u64) {
        match ctx {
            Context::Mutator => self.program += n,
            Context::Collector => self.collector += n,
        }
    }

    /// `I_prog`: instructions executed by the program (excluding GC-induced
    /// work, which the paper reports separately as `ΔI_prog`).
    pub fn program(&self) -> u64 {
        self.program
    }

    /// `I_gc`: instructions executed by the collector.
    pub fn collector(&self) -> u64 {
        self.collector
    }

    /// `ΔI_prog`: program instructions induced by collection.
    pub fn gc_induced(&self) -> u64 {
        self.gc_induced
    }

    /// All instructions, every class.
    pub fn total(&self) -> u64 {
        self.program + self.collector + self.gc_induced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_class() {
        let mut c = Counters::new();
        c.charge(InstrClass::Program, 10);
        c.charge(InstrClass::Collector, 5);
        c.charge(InstrClass::GcInduced, 2);
        c.charge_ctx(Context::Mutator, 3);
        c.charge_ctx(Context::Collector, 4);
        assert_eq!(c.program(), 13);
        assert_eq!(c.collector(), 9);
        assert_eq!(c.gc_induced(), 2);
        assert_eq!(c.total(), 24);
    }
}
