//! Trace event types.

/// Whether an access loads from or stores to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
}

/// Who performed an access: the running program or the garbage collector.
///
/// The paper's §6 overhead decomposition attributes misses either to the
/// program (`M_prog`) or to the collector (`M_gc`); attribution is carried on
/// every event so a single simulation pass can produce both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Context {
    /// The simulated program itself.
    Mutator,
    /// The garbage collector.
    Collector,
}

/// A single data reference: one word load or store at a byte address.
///
/// `alloc_init` marks stores that initialize freshly allocated dynamic
/// words. When such a store is the first touch of a new memory block, the
/// resulting miss is an *allocation miss* in the paper's sense (§7), which
/// the cache simulator and analyses classify separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address of the referenced word (word aligned).
    pub addr: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Mutator or collector.
    pub ctx: Context,
    /// True for stores that initialize newly allocated dynamic words.
    pub alloc_init: bool,
}

impl Access {
    /// A plain load at `addr`.
    #[inline]
    pub fn read(addr: u32, ctx: Context) -> Self {
        Access {
            addr,
            kind: AccessKind::Read,
            ctx,
            alloc_init: false,
        }
    }

    /// A plain store at `addr`.
    #[inline]
    pub fn write(addr: u32, ctx: Context) -> Self {
        Access {
            addr,
            kind: AccessKind::Write,
            ctx,
            alloc_init: false,
        }
    }

    /// An initializing store to a freshly allocated dynamic word.
    #[inline]
    pub fn alloc_write(addr: u32, ctx: Context) -> Self {
        Access {
            addr,
            kind: AccessKind::Write,
            ctx,
            alloc_init: true,
        }
    }

    /// True if this access is a load.
    #[inline]
    pub fn is_read(&self) -> bool {
        self.kind == AccessKind::Read
    }

    /// True if this access is a store.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.kind == AccessKind::Write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let r = Access::read(0x40, Context::Mutator);
        assert!(r.is_read() && !r.is_write());
        assert!(!r.alloc_init);
        let w = Access::write(0x44, Context::Collector);
        assert!(w.is_write());
        assert_eq!(w.ctx, Context::Collector);
        let a = Access::alloc_write(0x48, Context::Mutator);
        assert!(a.alloc_init && a.is_write());
    }
}
