//! Memory-reference trace infrastructure for the cachegc system.
//!
//! The simulated Scheme system ([`cachegc-vm`]) and the garbage collectors
//! ([`cachegc-gc`]) emit a stream of data-reference [`Access`] events — one
//! per load or store the simulated program performs — into a [`TraceSink`].
//! Cache simulators and behavioral analyzers are sinks; they consume the
//! stream online, so a multi-billion-reference run never needs to be stored.
//!
//! Time, throughout the system, is measured in *data references*, following
//! §7 of the paper ("references ... are the fundamental time unit of the
//! analysis"). Instruction counts, needed by the overhead formulas of §5–§6,
//! are kept separately in [`Counters`].
//!
//! # Example
//!
//! ```
//! use cachegc_trace::{Access, AccessKind, Context, RefCounter, TraceSink};
//!
//! let mut counter = RefCounter::new();
//! counter.access(Access::read(0x1000_0000, Context::Mutator));
//! counter.access(Access::write(0x1000_0004, Context::Mutator));
//! assert_eq!(counter.total(), 2);
//! assert_eq!(counter.reads(Context::Mutator), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod event;
mod recorded;
mod region;
mod sink;

pub use counters::{Counters, InstrClass};
pub use event::{Access, AccessKind, Context};
pub use recorded::{
    BatchDecodeStats, EventBatch, PayloadChunks, RecordBudget, RecordedTrace, Recorder, TraceImage,
    CHARGE_CHUNK_BYTES, DEFAULT_SEGMENT_BYTES, EVENT_BATCH,
};
pub use region::{Region, DYNAMIC_BASE, DYNAMIC_SECOND_BASE, STACK_BASE, STATIC_BASE, WORD_BYTES};
pub use sink::{Fanout, NullSink, RefCounter, TraceSink};
