//! Parallel fanout: shard a grid of sinks across worker threads.
//!
//! [`crate::Fanout`] drives every attached sink on the producing thread, so
//! a 40-cell cache grid costs 40 sequential simulations per access.
//! [`ParallelFanout`] keeps the same observable behavior — every sink sees
//! the full access stream, in order — but partitions the sinks round-robin
//! across worker threads. The producer buffers accesses into fixed-size
//! chunks and broadcasts each full chunk to every worker over a bounded
//! channel, so the hot VM loop does no allocation and no synchronization
//! beyond one channel send per chunk per worker.
//!
//! # Determinism
//!
//! Each sink is owned by exactly one worker and receives chunks in the
//! order the producer sent them, which is stream order. Sinks never
//! interact (each cache simulates its own geometry independently), so every
//! sink processes exactly the sequence of accesses it would have seen under
//! sequential [`crate::Fanout`] — per-sink results are bit-identical. The
//! property tests in the workspace root enforce this.
//!
//! # Steady-state allocation freedom
//!
//! Chunks travel as `Arc<Vec<Access>>`. The last worker to finish a chunk
//! reclaims the buffer (`Arc::try_unwrap`) and sends it back to the
//! producer on a recycle channel, so after warm-up the producer reuses a
//! small pool of buffers instead of allocating one per chunk.

use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::event::Access;
use crate::sink::TraceSink;

/// Default events buffered before a chunk is broadcast to the workers.
///
/// 4096 events ≈ 48 KB per chunk: large enough to amortize channel
/// synchronization to well under a nanosecond per event, small enough to
/// stay resident in L1/L2 while each worker replays it.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

/// Chunks that may be in flight per worker before the producer blocks.
/// Bounds memory and applies backpressure if a worker falls behind.
const CHANNEL_DEPTH: usize = 8;

/// A [`TraceSink`] that broadcasts the stream to sinks sharded across
/// worker threads. Drop-in replacement for [`crate::Fanout`] when the
/// attached sinks are independent (a cache grid).
pub struct ParallelFanout<S> {
    buf: Vec<Access>,
    chunk_events: usize,
    total_sinks: usize,
    txs: Vec<SyncSender<Arc<Vec<Access>>>>,
    recycle_rx: Receiver<Vec<Access>>,
    handles: Vec<JoinHandle<Vec<S>>>,
}

impl<S: TraceSink + Send + 'static> ParallelFanout<S> {
    /// Shard `sinks` across `jobs` worker threads with the default chunk
    /// size. `jobs` is clamped to at least 1; workers beyond the number of
    /// sinks idle harmlessly.
    pub fn new(sinks: Vec<S>, jobs: usize) -> Self {
        Self::with_chunk(sinks, jobs, DEFAULT_CHUNK_EVENTS)
    }

    /// As [`ParallelFanout::new`] with an explicit chunk size (events per
    /// broadcast). Exposed for tests; the default is right for production.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_events` is zero.
    pub fn with_chunk(sinks: Vec<S>, jobs: usize, chunk_events: usize) -> Self {
        assert!(chunk_events > 0, "chunk size must be positive");
        let jobs = jobs.max(1).min(sinks.len().max(1));
        let total_sinks = sinks.len();

        // Round-robin assignment: sink i lives on worker i % jobs.
        let mut shards: Vec<Vec<S>> = (0..jobs).map(|_| Vec::new()).collect();
        for (i, sink) in sinks.into_iter().enumerate() {
            shards[i % jobs].push(sink);
        }

        let (recycle_tx, recycle_rx) = channel::<Vec<Access>>();
        let mut txs = Vec::with_capacity(jobs);
        let mut handles = Vec::with_capacity(jobs);
        for mut shard in shards {
            let (tx, rx) = sync_channel::<Arc<Vec<Access>>>(CHANNEL_DEPTH);
            let recycle: Sender<Vec<Access>> = recycle_tx.clone();
            txs.push(tx);
            handles.push(std::thread::spawn(move || {
                while let Ok(chunk) = rx.recv() {
                    // Sink-major replay: one sink's tag/valid arrays stay
                    // hot while it consumes the whole chunk.
                    for sink in &mut shard {
                        for &access in chunk.iter() {
                            sink.access(access);
                        }
                    }
                    // Last owner reclaims the buffer for the producer.
                    if let Ok(mut buf) = Arc::try_unwrap(chunk) {
                        buf.clear();
                        let _ = recycle.send(buf);
                    }
                }
                shard
            }));
        }

        ParallelFanout {
            buf: Vec::with_capacity(chunk_events),
            chunk_events,
            total_sinks,
            txs,
            recycle_rx,
            handles,
        }
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.total_sinks
    }

    /// True if no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.total_sinks == 0
    }

    /// Number of worker threads.
    pub fn jobs(&self) -> usize {
        self.txs.len()
    }

    /// Broadcast any buffered events to the workers.
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let next = self
            .recycle_rx
            .try_recv()
            .unwrap_or_else(|_| Vec::with_capacity(self.chunk_events));
        let chunk = Arc::new(std::mem::replace(&mut self.buf, next));
        for tx in &self.txs {
            // A worker can only be gone if it panicked; surface that at
            // join time in `into_sinks` rather than here.
            let _ = tx.send(Arc::clone(&chunk));
        }
    }

    /// Flush, stop the workers, and return the sinks in their original
    /// order (as passed to [`ParallelFanout::new`]).
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker thread.
    pub fn into_sinks(mut self) -> Vec<S> {
        self.flush();
        self.txs.clear(); // close the channels; workers drain and exit
        let jobs = self.handles.len();
        let mut shards: Vec<std::vec::IntoIter<S>> = self
            .handles
            .drain(..)
            .map(|h| {
                h.join()
                    .expect("parallel fanout worker panicked")
                    .into_iter()
            })
            .collect();
        (0..self.total_sinks)
            .map(|i| shards[i % jobs].next().expect("shard sizes consistent"))
            .collect()
    }
}

impl<S: TraceSink + Send + 'static> TraceSink for ParallelFanout<S> {
    #[inline]
    fn access(&mut self, access: Access) {
        self.buf.push(access);
        if self.buf.len() >= self.chunk_events {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Context;
    use crate::sink::{Fanout, RefCounter};

    fn stream(n: u32) -> impl Iterator<Item = Access> {
        (0..n).map(|i| {
            let addr = 0x1000_0000 + (i % 977) * 4;
            if i % 3 == 0 {
                Access::write(addr, Context::Mutator)
            } else {
                Access::read(addr, Context::Collector)
            }
        })
    }

    #[test]
    fn matches_sequential_fanout_across_chunk_boundaries() {
        // Stream lengths around the chunk size: shorter, exact, longer.
        for n in [0u32, 1, 7, 63, 64, 65, 128, 1000] {
            let mut seq = Fanout::new(vec![RefCounter::new(); 5]);
            let mut par = ParallelFanout::with_chunk(vec![RefCounter::new(); 5], 3, 64);
            for a in stream(n) {
                seq.access(a);
                par.access(a);
            }
            let seq = seq.into_sinks();
            let par = par.into_sinks();
            assert_eq!(seq, par, "n = {n}");
        }
    }

    #[test]
    fn order_is_preserved() {
        // Counters are order-insensitive, so check ordering via distinct
        // sinks: each position must get back the sink that went in there.
        #[derive(Debug, PartialEq)]
        struct Tagged(usize, u64);
        impl TraceSink for Tagged {
            fn access(&mut self, _: Access) {
                self.1 += 1;
            }
        }
        let sinks: Vec<Tagged> = (0..10).map(|i| Tagged(i, 0)).collect();
        let mut par = ParallelFanout::with_chunk(sinks, 4, 16);
        for a in stream(100) {
            par.access(a);
        }
        let out = par.into_sinks();
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.0, i, "sink order preserved");
            assert_eq!(t.1, 100, "every sink saw every event");
        }
    }

    #[test]
    fn more_jobs_than_sinks_is_fine() {
        let mut par = ParallelFanout::new(vec![RefCounter::new()], 16);
        assert_eq!(par.jobs(), 1, "jobs clamped to sink count");
        for a in stream(10) {
            par.access(a);
        }
        assert_eq!(par.into_sinks()[0].total(), 10);
    }

    #[test]
    fn empty_grid_and_empty_stream() {
        let par: ParallelFanout<RefCounter> = ParallelFanout::new(vec![], 4);
        assert!(par.is_empty());
        assert_eq!(par.into_sinks().len(), 0);

        let par = ParallelFanout::new(vec![RefCounter::new(); 3], 2);
        let out = par.into_sinks(); // no events at all
        assert!(out.iter().all(|c| c.total() == 0));
    }
}
